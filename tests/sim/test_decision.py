"""Tests for the route-selection decision process."""

from repro.net.route import Route
from repro.sim import bgp_prefers, overall_best, select_best


def bgp_route(**kwargs):
    base = dict(network=0x0A000000, length=8, protocol="bgp", ad=20,
                local_pref=100, metric=2, med=0, router_id=1,
                bgp_internal=False)
    base.update(kwargs)
    return Route(**base)


class TestBgpPrefers:
    def test_local_pref_dominates(self):
        hi = bgp_route(local_pref=200, metric=9)
        lo = bgp_route(local_pref=100, metric=1)
        assert bgp_prefers(hi, lo)
        assert not bgp_prefers(lo, hi)

    def test_as_path_length_second(self):
        short = bgp_route(metric=1, med=9)
        long_ = bgp_route(metric=3, med=0)
        assert bgp_prefers(short, long_)

    def test_med_always_mode(self):
        low = bgp_route(med=1)
        high = bgp_route(med=7)
        assert bgp_prefers(low, high, "always")

    def test_med_same_as_mode_only_compares_same_neighbor(self):
        a = bgp_route(med=9, as_path=(65001, 65002))
        b = bgp_route(med=1, as_path=(65003, 65002), router_id=9)
        # Different next-hop AS: MED ignored, falls to router id (1 < 9).
        assert bgp_prefers(a, b, "same-as")
        c = bgp_route(med=9, as_path=(65001, 65002))
        d = bgp_route(med=1, as_path=(65001, 65004), router_id=9)
        # Same next-hop AS: MED compared.
        assert bgp_prefers(d, c, "same-as")

    def test_med_ignore_mode(self):
        a = bgp_route(med=9)
        b = bgp_route(med=1, router_id=9)
        assert bgp_prefers(a, b, "ignore")

    def test_ebgp_over_ibgp(self):
        ext = bgp_route(bgp_internal=False, router_id=9)
        internal = bgp_route(bgp_internal=True, router_id=1)
        assert bgp_prefers(ext, internal)

    def test_router_id_final_tiebreak(self):
        a = bgp_route(router_id=1)
        b = bgp_route(router_id=2)
        assert bgp_prefers(a, b)
        assert not bgp_prefers(b, a)


class TestSelectBest:
    def test_single_best(self):
        routes = [bgp_route(local_pref=100, router_id=2),
                  bgp_route(local_pref=300, router_id=3),
                  bgp_route(local_pref=200, router_id=4)]
        best = select_best(routes)
        assert len(best) == 1
        assert best[0].local_pref == 300

    def test_empty(self):
        assert select_best([]) == []

    def test_multipath_keeps_rid_ties(self):
        routes = [bgp_route(router_id=1), bgp_route(router_id=2),
                  bgp_route(router_id=3, metric=9)]
        best = select_best(routes, multipath=True)
        assert [r.router_id for r in best] == [1, 2]

    def test_multipath_excludes_worse_local_pref(self):
        routes = [bgp_route(router_id=1, local_pref=200),
                  bgp_route(router_id=2, local_pref=100)]
        best = select_best(routes, multipath=True)
        assert len(best) == 1

    def test_ospf_lowest_cost(self):
        routes = [Route(network=0, length=0, protocol="ospf", ad=110,
                        metric=m, router_id=m) for m in (4, 2, 7)]
        best = select_best(routes)
        assert best[0].metric == 2

    def test_same_as_med_selection(self):
        routes = [bgp_route(med=5, as_path=(1, 9), router_id=1),
                  bgp_route(med=2, as_path=(1, 8), router_id=2)]
        best = select_best(routes, med_mode="same-as")
        assert best[0].med == 2


class TestOverallBest:
    def test_lowest_ad_wins(self):
        static = [Route(network=0, length=0, protocol="static", ad=1)]
        ospf = [Route(network=0, length=0, protocol="ospf", ad=110)]
        bgp = [bgp_route()]
        assert overall_best([ospf, static, bgp]) is static

    def test_skips_empty_groups(self):
        bgp = [bgp_route()]
        assert overall_best([[], bgp, []]) is bgp

    def test_all_empty(self):
        assert overall_best([[], []]) == []
