"""Tests for concrete environment objects."""

from repro.net import ip as iplib
from repro.sim import Environment, ExternalAnnouncement


class TestExternalAnnouncement:
    def test_make_normalizes_prefix(self):
        ann = ExternalAnnouncement.make("P", "10.1.2.3/16")
        assert ann.network == iplib.parse_ip("10.1.0.0")
        assert ann.length == 16

    def test_make_builds_as_path_of_requested_length(self):
        ann = ExternalAnnouncement.make("P", "8.0.0.0/8", path_length=4)
        assert len(ann.as_path) == 4
        assert len(set(ann.as_path)) == 4

    def test_make_minimum_path_length_is_one(self):
        ann = ExternalAnnouncement.make("P", "8.0.0.0/8", path_length=0)
        assert len(ann.as_path) == 1

    def test_communities_frozen(self):
        ann = ExternalAnnouncement.make("P", "8.0.0.0/8",
                                        communities=("65001:1",))
        assert ann.communities == frozenset({"65001:1"})


class TestEnvironment:
    def test_empty(self):
        env = Environment.empty()
        assert env.announcements == ()
        assert not env.link_failed("A", "B")

    def test_failed_links_are_order_insensitive(self):
        env = Environment.of(failed_links=[("B", "A")])
        assert env.link_failed("A", "B")
        assert env.link_failed("B", "A")
        assert not env.link_failed("A", "C")

    def test_announcements_from_filters_by_peer(self):
        a1 = ExternalAnnouncement.make("P1", "8.0.0.0/8")
        a2 = ExternalAnnouncement.make("P2", "9.0.0.0/8")
        env = Environment.of([a1, a2])
        assert env.announcements_from("P1") == [a1]
        assert env.announcements_from("P3") == []

    def test_hashable_and_comparable(self):
        e1 = Environment.of([ExternalAnnouncement.make("P", "8.0.0.0/8")])
        e2 = Environment.of([ExternalAnnouncement.make("P", "8.0.0.0/8")])
        assert e1 == e2
        assert hash(e1) == hash(e2)
