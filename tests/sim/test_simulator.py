"""Control-plane simulator tests, including the paper's §2.1 example."""


from repro.net import (
    AclRule,
    NetworkBuilder,
    PrefixListEntry,
    RouteMapClause,
)
from repro.net import ip as iplib
from repro.sim import (
    DataPlane,
    Environment,
    ExternalAnnouncement,
    Packet,
    simulate,
)


def ospf_triangle():
    """Three routers in a triangle, all OSPF, one host subnet each."""
    b = NetworkBuilder()
    for name in ("R1", "R2", "R3"):
        b.device(name).enable_ospf()
    b.link("R1", "R2")
    b.link("R1", "R3")
    b.link("R2", "R3")
    for i, name in enumerate(("R1", "R2", "R3"), start=1):
        b.device(name).interface(f"host{i}", f"10.{i}.0.1/24")
        b.device(name).ospf_network("10.0.0.0/8")
    return b


class TestOspf:
    def test_converges_and_full_reachability(self):
        result = simulate(ospf_triangle().build())
        assert result.converged
        dp = DataPlane(result)
        for src in ("R1", "R2", "R3"):
            for dst_subnet in ("10.1.0.9", "10.2.0.9", "10.3.0.9"):
                assert dp.reachable(src, Packet.to(dst_subnet)), \
                    f"{src} -> {dst_subnet}"

    def test_shortest_path_respects_costs(self):
        b = NetworkBuilder()
        for name in ("A", "B", "C"):
            b.device(name).enable_ospf()
        b.link("A", "B", ospf_cost=10)
        b.link("A", "C", ospf_cost=1)
        b.link("C", "B", ospf_cost=1)
        b.device("B").interface("host", "10.9.0.1/24")
        for name in ("A", "B", "C"):
            b.device(name).ospf_network("10.0.0.0/8")
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("A", Packet.to("10.9.0.5"))
        assert trace.path == ("A", "C", "B")

    def test_link_failure_reroutes(self):
        net = ospf_triangle().build()
        env = Environment.of(failed_links=[("R1", "R3")])
        dp = DataPlane(simulate(net, env))
        (trace,) = dp.traces("R3", Packet.to("10.1.0.5"))
        assert trace.path == ("R3", "R2", "R1")
        assert trace.delivered

    def test_partition_black_holes(self):
        b = NetworkBuilder()
        b.device("A").enable_ospf()
        b.device("B").enable_ospf()
        b.link("A", "B")
        b.device("B").interface("host", "10.9.0.1/24")
        for name in ("A", "B"):
            b.device(name).ospf_network("10.0.0.0/8")
        env = Environment.of(failed_links=[("A", "B")])
        dp = DataPlane(simulate(b.build(), env))
        (trace,) = dp.traces("A", Packet.to("10.9.0.5"))
        assert trace.disposition == "no-route"

    def test_ecmp_multipath_produces_branches(self):
        b = NetworkBuilder()
        for name in ("S", "L", "R", "D"):
            b.device(name).enable_ospf(multipath=True)
        b.link("S", "L")
        b.link("S", "R")
        b.link("L", "D")
        b.link("R", "D")
        b.device("D").interface("host", "10.9.0.1/24")
        for name in ("S", "L", "R", "D"):
            b.device(name).ospf_network("10.0.0.0/8")
        dp = DataPlane(simulate(b.build()))
        traces = dp.traces("S", Packet.to("10.9.0.5"))
        paths = {t.path for t in traces}
        assert paths == {("S", "L", "D"), ("S", "R", "D")}
        assert all(t.delivered for t in traces)


class TestStaticRoutes:
    def test_null0_discards(self):
        b = NetworkBuilder()
        b.device("A").static_route("172.16.0.0/16", drop=True)
        b.device("A").interface("e0", "10.0.0.1/24")
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("A", Packet.to("172.16.1.1"))
        assert trace.disposition == "null-routed"

    def test_next_hop_static_forwards(self):
        b = NetworkBuilder()
        b.device("A")
        b.device("B").interface("host", "172.16.0.1/16")
        b.link("A", "B", subnet="10.0.0.0/30")
        b.device("A").static_route("172.16.0.0/16", next_hop="10.0.0.2")
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("A", Packet.to("172.16.5.5"))
        assert trace.path == ("A", "B")
        assert trace.delivered

    def test_unresolvable_next_hop_is_inactive(self):
        b = NetworkBuilder()
        b.device("A").interface("e0", "10.0.0.1/24")
        b.device("A").static_route("172.16.0.0/16", next_hop="192.0.2.1")
        result = simulate(b.build())
        assert result.fib_lookup("A", iplib.parse_ip("172.16.0.1")) == []

    def test_static_beats_ospf_by_ad(self):
        b = ospf_triangle()
        b.device("R3").static_route("10.1.0.0/24", drop=True)
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("R3", Packet.to("10.1.0.5"))
        assert trace.disposition == "null-routed"


def ebgp_pair():
    b = NetworkBuilder()
    b.device("R1").enable_bgp(65001)
    b.device("R2").enable_bgp(65002)
    b.link("R1", "R2", subnet="10.0.0.0/30")
    b.device("R1").bgp_neighbor("10.0.0.2", remote_as=65002)
    b.device("R2").bgp_neighbor("10.0.0.1", remote_as=65001)
    return b


class TestBgp:
    def test_network_statement_propagates(self):
        b = ebgp_pair()
        b.device("R2").interface("host", "10.9.0.1/24")
        b.device("R2").bgp_network("10.9.0.0/24")
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("R1", Packet.to("10.9.0.5"))
        assert trace.path == ("R1", "R2")
        assert trace.delivered

    def test_external_announcement_reaches_every_router(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.device("R2").enable_bgp(65001)
        b.link("R1", "R2")
        b.ibgp_session("R1", "R2")
        b.external_peer("R1", asn=65100, name="N1")
        env = Environment.of([ExternalAnnouncement.make("N1", "8.8.8.0/24")])
        dp = DataPlane(simulate(b.build(), env))
        (trace,) = dp.traces("R2", Packet.to("8.8.8.8"))
        assert trace.disposition == "exited"
        assert trace.exit_peer == "N1"

    def test_ebgp_loop_prevention_rejects_own_asn(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.link("R1", "R1x") if False else None
        b.external_peer("R1", asn=65100, name="N1")
        env = Environment.of([ExternalAnnouncement(
            peer="N1", network=iplib.parse_ip("8.8.8.0"), length=24,
            as_path=(65100, 65001))])
        result = simulate(b.build(), env)
        assert result.fib_lookup("R1", iplib.parse_ip("8.8.8.8")) == []

    def test_ibgp_routes_not_reexported_to_ibgp(self):
        # Chain A - B - C all iBGP pairwise sessions A-B and B-C only:
        # C must NOT learn A's external route through B.
        b = NetworkBuilder()
        for name in ("A", "B", "C"):
            b.device(name).enable_bgp(65001)
        b.link("A", "B")
        b.link("B", "C")
        b.ibgp_session("A", "B")
        b.ibgp_session("B", "C")
        b.external_peer("A", asn=65100, name="N1")
        env = Environment.of([ExternalAnnouncement.make("N1", "8.8.8.0/24")])
        result = simulate(b.build(), env)
        assert result.fib_lookup("B", iplib.parse_ip("8.8.8.8")) != []
        assert result.fib_lookup("C", iplib.parse_ip("8.8.8.8")) == []

    def test_route_reflector_reflects_to_clients(self):
        b = NetworkBuilder()
        for name in ("A", "B", "C"):
            b.device(name).enable_bgp(65001)
        b.link("A", "B")
        b.link("B", "C")
        b.ibgp_session("A", "B")
        b.ibgp_session("B", "C")
        # Mark both of B's iBGP peers as RR clients.
        for nbr in b.device("B").config.bgp.neighbors:
            nbr.route_reflector_client = True
        b.external_peer("A", asn=65100, name="N1")
        env = Environment.of([ExternalAnnouncement.make("N1", "8.8.8.0/24")])
        result = simulate(b.build(), env)
        assert result.fib_lookup("C", iplib.parse_ip("8.8.8.8")) != []

    def test_shorter_as_path_preferred(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.external_peer("R1", asn=65100, name="N1")
        b.external_peer("R1", asn=65200, name="N2")
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.8.8.0/24", path_length=3),
            ExternalAnnouncement.make("N2", "8.8.8.0/24", path_length=1),
        ])
        dp = DataPlane(simulate(b.build(), env))
        (trace,) = dp.traces("R1", Packet.to("8.8.8.8"))
        assert trace.exit_peer == "N2"

    def test_local_pref_via_route_map_overrides_path_length(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.route_map("PREF_N1", [RouteMapClause(seq=10, action="permit",
                                                set_local_pref=200)])
        b.external_peer("R1", asn=65100, name="N1", route_map_in="PREF_N1")
        b.external_peer("R1", asn=65200, name="N2")
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.8.8.0/24", path_length=5),
            ExternalAnnouncement.make("N2", "8.8.8.0/24", path_length=1),
        ])
        dp = DataPlane(simulate(b.build(), env))
        (trace,) = dp.traces("R1", Packet.to("8.8.8.8"))
        assert trace.exit_peer == "N1"

    def test_prefix_list_filter_blocks_import(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.prefix_list("NO_MARTIANS", [
            PrefixListEntry("deny", iplib.parse_ip("192.168.0.0"), 16,
                            ge=16, le=32),
            PrefixListEntry("permit", 0, 0, le=32),
        ])
        r1.route_map("IMP", [RouteMapClause(
            seq=10, action="permit", match_prefix_list="NO_MARTIANS")])
        b.external_peer("R1", asn=65100, name="N1", route_map_in="IMP")
        env = Environment.of([
            ExternalAnnouncement.make("N1", "192.168.4.0/24"),
            ExternalAnnouncement.make("N1", "8.8.8.0/24"),
        ])
        result = simulate(b.build(), env)
        assert result.fib_lookup("R1", iplib.parse_ip("192.168.4.1")) == []
        assert result.fib_lookup("R1", iplib.parse_ip("8.8.8.8")) != []

    def test_med_breaks_ties_in_always_mode(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.external_peer("R1", asn=65100, name="N1")
        b.external_peer("R1", asn=65100, name="N2")
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.8.8.0/24", med=50),
            ExternalAnnouncement.make("N2", "8.8.8.0/24", med=10),
        ])
        dp = DataPlane(simulate(b.build(), env))
        (trace,) = dp.traces("R1", Packet.to("8.8.8.8"))
        assert trace.exit_peer == "N2"

    def test_aggregate_activated_by_covered_route(self):
        b = ebgp_pair()
        r2 = b.device("R2")
        r2.interface("host", "10.9.1.1/24")
        r2.bgp_network("10.9.1.0/24")
        r2.config.bgp.aggregates.append((iplib.parse_ip("10.9.0.0"), 16))
        result = simulate(b.build())
        # R1 must see the /16 aggregate (R2 exports its best per prefix).
        assert result.fib_lookup("R1", iplib.parse_ip("10.9.200.1")) != []


class TestRedistribution:
    def test_bgp_into_ospf_gives_igp_routers_external_reach(self):
        # Paper Figure 2 shape: R3 is OSPF-only; R1 redistributes BGP.
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.enable_ospf()
        r1.redistribute("ospf", "bgp", metric=20)
        r3 = b.device("R3")
        r3.enable_ospf()
        b.link("R1", "R3")
        r1.ospf_network("10.0.0.0/8")
        r3.ospf_network("10.0.0.0/8")
        b.external_peer("R1", asn=65100, name="N1")
        env = Environment.of([ExternalAnnouncement.make("N1", "8.8.8.0/24")])
        dp = DataPlane(simulate(b.build(), env))
        (trace,) = dp.traces("R3", Packet.to("8.8.8.8"))
        assert trace.disposition == "exited"
        assert trace.path == ("R3", "R1")

    def test_connected_into_bgp_announces_local_subnets(self):
        # A local subnet sits in the routing table as *connected*, so it
        # takes "redistribute connected" (not ospf) to announce it.
        b = ebgp_pair()
        r2 = b.device("R2")
        r2.interface("host", "10.9.0.1/24")
        r2.redistribute("bgp", "connected")
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("R1", Packet.to("10.9.0.5"))
        assert trace.delivered

    def test_ospf_learned_routes_redistribute_into_bgp(self):
        # R3's subnet is OSPF-learned at R2, which redistributes it.
        b = ebgp_pair()
        r2 = b.device("R2")
        r2.enable_ospf()
        r2.redistribute("bgp", "ospf")
        r3 = b.device("R3")
        r3.enable_ospf()
        r3.interface("host", "10.9.0.1/24")
        b.link("R2", "R3")
        r2.ospf_network("10.0.0.0/8")
        r3.ospf_network("10.0.0.0/8")
        dp = DataPlane(simulate(b.build()))
        (trace,) = dp.traces("R1", Packet.to("10.9.0.5"))
        assert trace.delivered
        assert trace.path == ("R1", "R2", "R3")

    def test_own_subnet_not_redistributed_as_ospf(self):
        # The regression behind the encoder's ghost-route fix: a router's
        # own OSPF-enabled subnet is connected, not OSPF, in its table.
        b = ebgp_pair()
        r2 = b.device("R2")
        r2.enable_ospf()
        r2.interface("host", "10.9.0.1/24")
        r2.ospf_network("10.9.0.0/24")
        r2.redistribute("bgp", "ospf")
        result = simulate(b.build())
        assert result.fib_lookup("R1", iplib.parse_ip("10.9.0.5")) == []

    def test_static_into_bgp(self):
        b = ebgp_pair()
        r2 = b.device("R2")
        r2.static_route("172.16.0.0/16", drop=True)
        r2.redistribute("bgp", "static")
        result = simulate(b.build())
        assert result.fib_lookup("R1", iplib.parse_ip("172.16.1.1")) != []


class TestAcls:
    def test_ingress_acl_drops(self):
        b = ospf_triangle()
        r1 = b.device("R1")
        r1.acl("BLOCK3", [
            AclRule("deny", dst_network=iplib.parse_ip("10.1.0.0"),
                    dst_length=24),
            AclRule("permit"),
        ])
        # Apply on R1's interface toward R3.
        net = b.build()
        edge = net.edge_between("R3", "R1")
        net.device("R1").interfaces[edge.target_iface].acl_in = "BLOCK3"
        dp = DataPlane(simulate(net))
        (trace,) = dp.traces("R3", Packet.to("10.1.0.5"))
        assert trace.disposition == "dropped-acl"
        # Control plane is unaffected: R2 still reaches R1's subnet.
        assert dp.reachable("R2", Packet.to("10.1.0.5"))


class TestPaperSection21:
    """The motivating example: interference of paths through N1, N2, N3."""

    def build(self):
        b = NetworkBuilder()
        for name in ("R1", "R2"):
            dev = b.device(name)
            dev.enable_bgp(65001)
            dev.enable_ospf()
            dev.redistribute("ospf", "bgp", metric=20)
        r3 = b.device("R3")
        r3.enable_ospf()
        b.link("R1", "R2", ospf_cost=1)
        b.link("R1", "R3", ospf_cost=1)
        b.link("R2", "R3", ospf_cost=10)   # R3 prefers exiting via R1
        for name in ("R1", "R2", "R3"):
            b.device(name).ospf_network("10.0.0.0/8")
        b.ibgp_session("R1", "R2")
        r1, r2 = b.device("R1"), b.device("R2")
        # Communities tag which external neighbor a route came through.
        for dev, prefs in ((r1, {"n1": 110, "n2": 120, "n3": 100}),
                           (r2, {"n1": 110, "n2": 120, "n3": 130})):
            for tag in ("n1", "n2", "n3"):
                dev.community_list(f"is_{tag}", [f"65001:{tag}"])
            dev.route_map("IBGP_IN", [
                RouteMapClause(seq=10 * i, action="permit",
                               match_community_list=f"is_{tag}",
                               set_local_pref=prefs[tag])
                for i, tag in enumerate(("n1", "n2", "n3"), start=1)
            ] + [RouteMapClause(seq=100, action="permit")])
        r1.route_map("FROM_N1", [RouteMapClause(
            seq=10, action="permit", set_local_pref=110,
            add_communities=("65001:n1",))])
        r2.route_map("FROM_N2", [RouteMapClause(
            seq=10, action="permit", set_local_pref=120,
            add_communities=("65001:n2",))])
        r2.route_map("FROM_N3", [RouteMapClause(
            seq=10, action="permit", set_local_pref=130,
            add_communities=("65001:n3",))])
        # Attach the iBGP import policy to the existing iBGP sessions.
        for dev in (r1, r2):
            for nbr in dev.config.bgp.neighbors:
                if nbr.remote_as == 65001:
                    nbr.route_map_in = "IBGP_IN"
        b.external_peer("R1", asn=65101, name="N1", route_map_in="FROM_N1")
        b.external_peer("R2", asn=65102, name="N2", route_map_in="FROM_N2")
        b.external_peer("R2", asn=65103, name="N3", route_map_in="FROM_N3")
        return b.build()

    def announce(self, *peers):
        return Environment.of([
            ExternalAnnouncement.make(p, "8.8.8.0/24") for p in peers
        ])

    def exit_of(self, net, env):
        dp = DataPlane(simulate(net, env))
        traces = dp.traces("R3", Packet.to("8.8.8.8"))
        assert len(traces) == 1
        return traces[0].exit_peer

    def test_only_n1_announcing_uses_n1(self):
        net = self.build()
        assert self.exit_of(net, self.announce("N1")) == "N1"

    def test_n2_interference_diverts_to_n2(self):
        net = self.build()
        assert self.exit_of(net, self.announce("N1", "N2")) == "N2"

    def test_n3_counter_interference_restores_n1(self):
        net = self.build()
        assert self.exit_of(net, self.announce("N1", "N2", "N3")) == "N1"
