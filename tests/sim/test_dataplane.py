"""Data-plane tracing: dispositions, ECMP branching, ACLs, recursion."""


from repro.net import AclRule, NetworkBuilder
from repro.net import ip as iplib
from repro.net.policy import Acl
from repro.sim import (
    DELIVERED,
    DROPPED_ACL,
    DataPlane,
    Environment,
    ExternalAnnouncement,
    LOOP,
    NO_ROUTE,
    NULL_ROUTED,
    Packet,
    Trace,
    simulate,
)


class TestPacket:
    def test_to_parses_dotted_quad(self):
        packet = Packet.to("10.1.2.3", protocol=6, dst_port=443)
        assert packet.dst_ip == iplib.parse_ip("10.1.2.3")
        assert packet.protocol == 6
        assert packet.dst_port == 443

    def test_trace_properties(self):
        trace = Trace(path=("A", "B", "C"), disposition=DELIVERED)
        assert trace.delivered
        assert trace.hops == 2
        assert not Trace(path=("A",), disposition=NO_ROUTE).delivered


def two_hop():
    b = NetworkBuilder()
    for name in ("A", "B"):
        dev = b.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
    b.link("A", "B")
    b.device("B").interface("host", "10.9.0.1/24")
    return b


class TestDispositions:
    def test_delivered_at_owned_address(self):
        dataplane = DataPlane(simulate(two_hop().build()))
        # Destination is B's own interface address.
        (trace,) = dataplane.traces("A", Packet.to("10.9.0.1"))
        assert trace.delivered
        assert trace.path == ("A", "B")

    def test_delivered_to_subnet_host(self):
        dataplane = DataPlane(simulate(two_hop().build()))
        (trace,) = dataplane.traces("A", Packet.to("10.9.0.200"))
        assert trace.delivered

    def test_no_route(self):
        dataplane = DataPlane(simulate(two_hop().build()))
        (trace,) = dataplane.traces("A", Packet.to("172.16.0.1"))
        assert trace.disposition == NO_ROUTE

    def test_null_routed(self):
        b = two_hop()
        b.device("A").static_route("172.16.0.0/16", drop=True)
        dataplane = DataPlane(simulate(b.build()))
        (trace,) = dataplane.traces("A", Packet.to("172.16.0.1"))
        assert trace.disposition == NULL_ROUTED

    def test_loop_detected(self):
        b = NetworkBuilder()
        b.device("A")
        b.device("B")
        b.link("A", "B", subnet="10.0.0.0/30")
        b.device("A").static_route("172.16.0.0/16", next_hop="10.0.0.2")
        b.device("B").static_route("172.16.0.0/16", next_hop="10.0.0.1")
        dataplane = DataPlane(simulate(b.build()))
        (trace,) = dataplane.traces("A", Packet.to("172.16.1.1"))
        assert trace.disposition == LOOP

    def test_exit_via_external_peer(self):
        b = NetworkBuilder()
        b.device("R").enable_bgp(65001)
        b.external_peer("R", asn=65100, name="N1")
        env = Environment.of([ExternalAnnouncement.make("N1",
                                                        "8.8.0.0/16")])
        dataplane = DataPlane(simulate(b.build(), env))
        (trace,) = dataplane.traces("R", Packet.to("8.8.8.8"))
        assert trace.disposition == "exited"
        assert trace.exit_peer == "N1"


class TestAclSemantics:
    def make_acl(self):
        return Acl("FILTER", (
            AclRule("deny", dst_network=iplib.parse_ip("10.9.0.0"),
                    dst_length=24, protocol=6, dst_port_low=22,
                    dst_port_high=22),
            AclRule("permit"),
        ))

    def test_egress_acl_applies(self):
        b = two_hop()
        net = b.build()
        dev_a = net.device("A")
        edge = net.edge_between("A", "B")
        dev_a.acls["FILTER"] = self.make_acl()
        dev_a.interfaces[edge.source_iface].acl_out = "FILTER"
        dataplane = DataPlane(simulate(net))
        ssh = Packet.to("10.9.0.5", protocol=6, dst_port=22)
        web = Packet.to("10.9.0.5", protocol=6, dst_port=443)
        (t1,) = dataplane.traces("A", ssh)
        (t2,) = dataplane.traces("A", web)
        assert t1.disposition == DROPPED_ACL
        assert t2.delivered

    def test_missing_acl_reference_denies(self):
        b = two_hop()
        net = b.build()
        edge = net.edge_between("A", "B")
        net.device("A").interfaces[edge.source_iface].acl_out = "GHOST"
        dataplane = DataPlane(simulate(net))
        (trace,) = dataplane.traces("A", Packet.to("10.9.0.5"))
        assert trace.disposition == DROPPED_ACL

    def test_acl_does_not_block_control_plane(self):
        # The route still propagates; only the data plane drops.
        b = two_hop()
        net = b.build()
        dev_a = net.device("A")
        edge = net.edge_between("A", "B")
        dev_a.acls["NONE"] = Acl("NONE", (AclRule("deny"),))
        dev_a.interfaces[edge.source_iface].acl_out = "NONE"
        result = simulate(net)
        assert result.fib_lookup("A", iplib.parse_ip("10.9.0.5")) != []


class TestRecursiveNextHop:
    def build_line(self, mesh_through_middle: bool):
        """A -- M -- B with a multihop iBGP session A<->B over OSPF."""
        b = NetworkBuilder()
        for name in ("A", "M", "B"):
            dev = b.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
        for name in ("A", "B") + (("M",) if mesh_through_middle else ()):
            b.device(name).enable_bgp(65001)
        b.link("A", "M")
        b.link("M", "B")
        probe = b.build()
        addr = {}
        for name in ("A", "M", "B"):
            dev = probe.device(name)
            addr[name] = next(i.address for i in dev.interfaces.values()
                              if i.address)
        b.device("A").bgp_neighbor(iplib.format_ip(addr["B"]),
                                   remote_as=65001)
        b.device("B").bgp_neighbor(iplib.format_ip(addr["A"]),
                                   remote_as=65001)
        if mesh_through_middle:
            for end in ("A", "B"):
                b.device("M").bgp_neighbor(iplib.format_ip(addr[end]),
                                           remote_as=65001)
                b.device(end).bgp_neighbor(iplib.format_ip(addr["M"]),
                                           remote_as=65001)
        b.external_peer("B", asn=65100, name="EXT")
        return b.build()

    def test_transit_without_full_mesh_blackholes(self):
        # The classic iBGP underlay hole: A resolves its remote next hop
        # through the IGP and hands the packet to M, but M (no BGP) has
        # no route for the destination.
        net = self.build_line(mesh_through_middle=False)
        env = Environment.of([ExternalAnnouncement.make("EXT",
                                                        "8.8.0.0/16")])
        dataplane = DataPlane(simulate(net, env))
        (trace,) = dataplane.traces("A", Packet.to("8.8.8.8"))
        assert trace.disposition == NO_ROUTE
        assert trace.path == ("A", "M")

    def test_full_mesh_delivers_through_transit(self):
        net = self.build_line(mesh_through_middle=True)
        env = Environment.of([ExternalAnnouncement.make("EXT",
                                                        "8.8.0.0/16")])
        dataplane = DataPlane(simulate(net, env))
        (trace,) = dataplane.traces("A", Packet.to("8.8.8.8"))
        assert trace.disposition == "exited"
        assert trace.path == ("A", "M", "B")


class TestReachableHelpers:
    def test_reachable_any_vs_all_paths(self):
        b = NetworkBuilder()
        for name in ("S", "L", "R", "D"):
            dev = b.device(name)
            dev.enable_ospf(multipath=True)
            dev.ospf_network("10.0.0.0/8")
        b.link("S", "L")
        b.link("S", "R")
        b.link("L", "D")
        b.link("R", "D")
        b.device("D").interface("host", "10.9.0.1/24")
        net = b.build()
        # Poison one branch with an ACL.
        dev_l = net.device("L")
        edge = net.edge_between("S", "L")
        dev_l.acls["BLK"] = Acl("BLK", (AclRule("deny"),))
        dev_l.interfaces[edge.target_iface].acl_in = "BLK"
        dataplane = DataPlane(simulate(net))
        packet = Packet.to("10.9.0.5")
        assert dataplane.reachable("S", packet)
        assert not dataplane.reachable_all_paths("S", packet)
