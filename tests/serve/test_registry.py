"""Snapshot registry: identity, tenancy, caching, persistence."""

import pytest

from repro.core import BatchQuery, Verifier, properties as P
from repro.lang import write_config
from repro.net import NetworkBuilder
from repro.serve import SnapshotRegistry, TTLLRUCache
from repro.serve.schemas import ApiError


def build_texts(host_prefix="10.9.0.1/24"):
    builder = NetworkBuilder()
    for name in ("R1", "R2", "R3"):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
    builder.link("R1", "R2")
    builder.link("R2", "R3")
    builder.link("R1", "R3")
    builder.device("R3").interface("host", host_prefix)
    network = builder.build()
    return {f"{name}.cfg": write_config(network.device(name))
            for name in network.router_names()}


@pytest.fixture()
def texts():
    return build_texts()


@pytest.fixture()
def registry():
    return SnapshotRegistry(cache=TTLLRUCache())


def reach(sources="all", label=None):
    return BatchQuery(
        prop=P.Reachability(sources=sources,
                            dest_prefix_text="10.9.0.0/24"),
        label=label)


class TestIngest:
    def test_snapshot_id_is_content_derived(self, registry, texts):
        a = registry.ingest("t1", texts, name="a")
        b = registry.ingest("t1", dict(texts), name="b")
        assert a.snapshot_id == b.snapshot_id
        assert len(a.snapshot_id) == 12

    def test_different_content_different_id(self, registry, texts):
        a = registry.ingest("t1", texts, name="a")
        b = registry.ingest("t1", build_texts("10.8.0.1/24"), name="b")
        assert a.snapshot_id != b.snapshot_id

    def test_name_defaults_to_snapshot_id(self, registry, texts):
        snap = registry.ingest("t1", texts)
        assert snap.name == snap.snapshot_id

    def test_duplicate_name_conflicts(self, registry, texts):
        registry.ingest("t1", texts, name="prod")
        with pytest.raises(ApiError) as err:
            registry.ingest("t1", texts, name="prod")
        assert err.value.status == 409

    def test_unparsable_config_is_client_error(self, registry):
        with pytest.raises(ApiError) as err:
            registry.ingest("t1", {"r.cfg": "hostname R1\n  ???"})
        assert err.value.status == 400

    def test_unsafe_filenames_rejected(self, registry, texts):
        for bad in ("../evil.cfg", "a/b.cfg", ".hidden"):
            with pytest.raises(ApiError) as err:
                registry.ingest("t1", {bad: "hostname X"})
            assert err.value.status == 400

    def test_bad_tenant_rejected(self, registry, texts):
        with pytest.raises(ApiError):
            registry.ingest("no/slash", texts)


class TestTenancy:
    def test_same_name_isolated_per_tenant(self, registry, texts):
        registry.ingest("t1", texts, name="prod")
        registry.ingest("t2", build_texts("10.8.0.1/24"), name="prod")
        a = registry.resolve("t1", "prod")
        b = registry.resolve("t2", "prod")
        assert a.snapshot_id != b.snapshot_id
        assert [s.name for s in registry.list("t1")] == ["prod"]

    def test_resolve_never_crosses_tenants(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        with pytest.raises(ApiError) as err:
            registry.resolve("t2", snap.snapshot_id)
        assert err.value.status == 404

    def test_cache_keys_carry_tenant_scope(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        registry.verify(snap, [reach()])
        assert all(key.startswith("t1/") for key in registry.cache.keys())

    def test_delete_drops_derived_state(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        registry.verify(snap, [reach()])
        registry.delete(snap)
        assert not any(key.startswith(snap.scope)
                       for key in registry.cache.keys())
        with pytest.raises(ApiError):
            registry.resolve("t1", "prod")


class TestVerify:
    def test_warm_matches_fresh_solver(self, registry, texts):
        """The tentpole contract: warm-path verdicts are bit-identical
        to a fresh Verifier solve that never saw any cache."""
        snap = registry.ingest("t1", texts, name="prod")
        cold = [reach(label="q1"), reach(sources=["R1"], label="q2")]
        registry.verify(snap, cold)
        # Verdict keys are semantic (labels don't count), so the warm
        # batch needs *different* sources in the same (prefix, k)
        # group: it must reuse the group encoding, not replay verdicts.
        warm = [reach(sources=["R3"], label="q3"),
                reach(sources=["R2"], label="q4")]
        results, stats = registry.verify(snap, warm)
        assert stats["hits"] >= 1
        assert stats["verdicts_replayed"] == 0
        assert all(r.encode_shared_seconds == 0.0 for r in results)

        from repro.net.loader import network_from_texts
        fresh = Verifier(network_from_texts(texts),
                         options=registry.options,
                         preflight=False).verify_batch(warm)
        assert [r.holds for r in results] == [r.holds for r in fresh]

    def test_identical_queries_replay_verdicts(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        first, _ = registry.verify(snap, [reach(label="q")])
        second, stats = registry.verify(snap, [reach(label="q")])
        assert not first[0].cached
        assert second[0].cached
        assert second[0].holds == first[0].holds
        assert stats["verdicts_replayed"] == 1

    def test_query_counters_accumulate(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        registry.verify(snap, [reach(label="q")])
        registry.verify(snap, [reach(label="q")])
        assert snap.queries_run == 2
        assert snap.replayed == 1


class TestRefresh:
    def test_refresh_is_differential(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        queries = [reach(label="q1"),
                   BatchQuery(prop=P.Reachability(
                       sources="all", dest_prefix_text="10.8.0.0/24"),
                       label="q2")]
        registry.verify(snap, queries)
        # Move R3's host interface: only R3's canonical form changes.
        snap, changes = registry.refresh(
            snap, build_texts("10.9.0.2/24"))
        assert changes["changed_devices"] == ["R3"]
        results, stats = registry.verify(snap, queries)
        assert all(r.holds is not None for r in results)

    def test_refresh_during_verify_never_poisons_new_scope(
            self, registry, texts, monkeypatch):
        """A refresh landing mid-verify must not let encodings built
        from the pre-refresh network be cached under the post-refresh
        scope (they would serve stale verdicts to warm requests)."""
        snap = registry.ingest("t1", texts, name="prod")
        old_scope = snap.scope
        new_texts = build_texts("10.8.0.1/24")
        real_init = Verifier.__init__
        raced = []

        def racing_init(self, network, **kwargs):
            # Interleave a refresh between verify()'s network fetch
            # and its use of the snapshot's scope.
            if not raced:
                raced.append(True)
                registry.refresh(snap, new_texts)
            real_init(self, network, **kwargs)

        monkeypatch.setattr(Verifier, "__init__", racing_init)
        results, _ = registry.verify(snap, [reach()])
        assert results[0].holds is not None
        assert snap.scope != old_scope
        assert not any(key.startswith(snap.scope + "enc/")
                       for key in registry.cache.keys())

    def test_refresh_rescopes_cache(self, registry, texts):
        snap = registry.ingest("t1", texts, name="prod")
        registry.verify(snap, [reach()])
        old_scope = snap.scope
        new_texts = build_texts("10.8.0.1/24")
        snap, _ = registry.refresh(snap, new_texts)
        assert snap.scope != old_scope
        assert not any(key.startswith(old_scope)
                       for key in registry.cache.keys())


class TestPersistence:
    def test_snapshots_survive_restart(self, tmp_path, texts):
        state = str(tmp_path / "serve-state")
        first = SnapshotRegistry(cache=TTLLRUCache(), state_dir=state)
        snap = first.ingest("t1", texts, name="prod")
        first.verify(snap, [reach(label="q")])

        second = SnapshotRegistry(cache=TTLLRUCache(), state_dir=state)
        restored = second.resolve("t1", "prod")
        assert restored.snapshot_id == snap.snapshot_id
        assert restored.texts == texts
        # Verdict cache was persisted: the same query replays.
        results, stats = second.verify(restored, [reach(label="q")])
        assert results[0].cached
        assert stats["verdicts_replayed"] == 1

    def test_delete_removes_persisted_state(self, tmp_path, texts):
        state = tmp_path / "serve-state"
        registry = SnapshotRegistry(cache=TTLLRUCache(),
                                    state_dir=str(state))
        snap = registry.ingest("t1", texts, name="prod")
        assert (state / "tenants" / "t1" / "prod" / "meta.json").exists()
        registry.delete(snap)
        assert not (state / "tenants" / "t1" / "prod").exists()
        fresh = SnapshotRegistry(cache=TTLLRUCache(),
                                 state_dir=str(state))
        with pytest.raises(ApiError):
            fresh.resolve("t1", "prod")
