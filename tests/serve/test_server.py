"""HTTP surface of the daemon: routing, errors, concurrency, metrics.

The server under test is a real ``ThreadingHTTPServer`` bound to an
ephemeral port with requests made through ``urllib`` — the same code
path production traffic takes, minus only the CLI wrapper.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import Verifier
from repro.net.loader import network_from_texts
from repro.obs.ledger import RunLedger
from repro.obs.promexport import parse_exposition
from repro.serve import SnapshotRegistry, TTLLRUCache, make_server

from tests.serve.test_registry import build_texts


@pytest.fixture()
def start_server(tmp_path):
    started = []

    def start(**kwargs):
        registry = SnapshotRegistry(cache=TTLLRUCache())
        srv = make_server("127.0.0.1", 0, registry,
                          ledger_path=str(tmp_path / "ledger.sqlite"),
                          **kwargs)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        started.append((srv, thread))
        return srv

    yield start
    for srv, thread in started:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


@pytest.fixture()
def server(start_server):
    return start_server()


def call(server, method, path, body=None, tenant="acme", raw=None):
    port = server.server_address[1]
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None)
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"X-Repro-Tenant": tenant})
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), err.headers


def reach_spec(sources=None, label=None):
    return {"property": "reachability", "sources": sources,
            "dest_prefix": "10.9.0.0/24", "label": label}


class TestLifecycle:
    def test_healthz(self, server):
        status, doc, _ = call(server, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert "cache" in doc

    def test_ingest_show_delete(self, server):
        status, doc, _ = call(server, "POST", "/v1/snapshots",
                              {"configs": build_texts(), "name": "prod"})
        assert status == 201
        sid = doc["snapshot"]["snapshot_id"]
        assert doc["snapshot"]["routers"] == 3

        for ref in ("prod", sid):
            status, doc, _ = call(server, "GET", f"/v1/snapshots/{ref}")
            assert status == 200
            assert doc["snapshot"]["snapshot_id"] == sid

        status, doc, _ = call(server, "DELETE", "/v1/snapshots/prod")
        assert status == 200
        status, _, _ = call(server, "GET", "/v1/snapshots/prod")
        assert status == 404

    def test_ingest_from_directory(self, start_server, tmp_path):
        configs = tmp_path / "configs"
        configs.mkdir()
        for name, text in build_texts().items():
            (configs / name).write_text(text)
        server = start_server(local_dir_root=str(tmp_path))
        # Absolute path under the root and root-relative both work.
        for ref, body_dir in (("fromdir", str(configs)),
                              ("fromrel", "configs")):
            status, doc, _ = call(server, "POST", "/v1/snapshots",
                                  {"directory": body_dir, "name": ref})
            assert status == 201
            assert doc["snapshot"]["files"] == 3

    def test_directory_ingest_disabled_by_default(self, server, tmp_path):
        status, doc, _ = call(server, "POST", "/v1/snapshots",
                              {"directory": str(tmp_path),
                               "name": "fromdir"})
        assert status == 403
        assert "--allow-local-dirs" in doc["error"]

    def test_directory_escape_rejected(self, start_server, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        (tmp_path / "secret.cfg").write_text("hostname LEAK")
        server = start_server(local_dir_root=str(root))
        for escape in (str(tmp_path), "../", "/etc"):
            status, doc, _ = call(server, "POST", "/v1/snapshots",
                                  {"directory": escape, "name": "evil"})
            assert status == 403
            assert "outside the allowed root" in doc["error"]

    def test_tenant_listing_is_isolated(self, server):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"}, tenant="t1")
        status, doc, _ = call(server, "GET", "/v1/snapshots",
                              tenant="t2")
        assert status == 200 and doc["snapshots"] == []
        status, doc, _ = call(server, "GET", "/v1/snapshots",
                              tenant="t1")
        assert [s["name"] for s in doc["snapshots"]] == ["prod"]


class TestVerifyEndpoints:
    def test_verify_and_run_id_header(self, server):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"})
        status, doc, headers = call(server, "POST",
                                    "/v1/snapshots/prod/verify",
                                    reach_spec())
        assert status == 200
        assert doc["result"]["holds"] is True
        assert doc["run_id"] == headers["X-Repro-Run-Id"]

        status, second, headers = call(server, "POST",
                                       "/v1/snapshots/prod/verify",
                                       reach_spec())
        assert second["result"]["cached"] is True
        assert second["run_id"] != doc["run_id"]

    def test_batch_warm_encoding(self, server):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"})
        cold = {"queries": [reach_spec(label="a")]}
        call(server, "POST", "/v1/snapshots/prod/verify-batch", cold)
        warm = {"queries": [reach_spec(sources=["R1"], label="b"),
                            reach_spec(sources=["R2"], label="c")]}
        status, doc, _ = call(server, "POST",
                              "/v1/snapshots/prod/verify-batch", warm)
        assert status == 200
        assert doc["stats"]["hits"] >= 1
        assert doc["stats"]["verdicts_replayed"] == 0
        assert all(r["encode_shared_seconds"] == 0.0
                   for r in doc["results"])

    def test_refresh_roundtrip(self, server):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"})
        status, doc, _ = call(server, "POST",
                              "/v1/snapshots/prod/refresh",
                              {"configs": build_texts("10.9.0.2/24")})
        assert status == 200
        assert doc["changes"]["changed_devices"] == ["R3"]
        assert doc["snapshot"]["refreshes"] == 1

    def test_verify_recorded_in_ledger(self, server, tmp_path):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"})
        _, doc, _ = call(server, "POST", "/v1/snapshots/prod/verify",
                         reach_spec())
        with RunLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            runs = ledger.runs()
        assert [r["command"] for r in runs] == ["serve.verify"]
        assert runs[0]["run_id"] == doc["run_id"]
        assert runs[0]["extra"]["tenant"] == "acme"

    def test_concurrent_verifies_match_fresh_solves(self, server):
        texts = build_texts()
        call(server, "POST", "/v1/snapshots",
             {"configs": texts, "name": "prod"})
        sources = [["R1"], ["R2"], ["R3"], None]
        outcomes = {}
        errors = []

        def worker(index, source):
            try:
                status, doc, _ = call(
                    server, "POST", "/v1/snapshots/prod/verify",
                    reach_spec(sources=source, label=f"q{index}"))
                outcomes[index] = (status, doc["result"]["holds"])
            except Exception as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i, source))
                   for i, source in enumerate(sources)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert all(status == 200 for status, _ in outcomes.values())

        verifier = Verifier(network_from_texts(texts), preflight=False)
        from tests.serve.test_registry import reach
        fresh = verifier.verify_batch(
            [reach(sources=source or "all") for source in sources])
        assert ([holds for _, holds in
                 (outcomes[i] for i in range(len(sources)))]
                == [r.holds for r in fresh])


class TestErrors:
    def test_malformed_json_is_400(self, server):
        status, doc, _ = call(server, "POST", "/v1/snapshots",
                              raw=b"{not json")
        assert status == 400
        assert "malformed JSON" in doc["error"]

    def test_missing_body_is_400(self, server):
        status, _, _ = call(server, "POST", "/v1/snapshots",
                            raw=b"")
        assert status == 400

    def test_keepalive_survives_error_with_unread_body(self, server):
        # resolve() 404s before the handler reads the POST body; the
        # server must drain it or the bytes get parsed as the next
        # request on the persistent connection.
        import http.client

        port = server.server_address[1]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            body = json.dumps(reach_spec()).encode()
            for _ in range(2):  # two bad requests back to back
                conn.request("POST", "/v1/snapshots/ghost/verify",
                             body=body,
                             headers={"X-Repro-Tenant": "acme"})
                resp = conn.getresponse()
                assert resp.status == 404
                resp.read()
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read())["status"] == "ok"
        finally:
            conn.close()

    def test_unknown_snapshot_is_404(self, server):
        status, doc, _ = call(server, "POST",
                              "/v1/snapshots/ghost/verify",
                              reach_spec())
        assert status == 404
        assert "ghost" in doc["error"]

    def test_unknown_route_is_404(self, server):
        status, _, _ = call(server, "GET", "/v1/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _, _ = call(server, "DELETE", "/healthz")
        assert status == 405

    def test_invalid_tenant_is_400(self, server):
        status, doc, _ = call(server, "GET", "/v1/snapshots",
                              tenant="bad tenant!")
        assert status == 400
        assert "tenant" in doc["error"]

    def test_unknown_property_is_400(self, server):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"})
        status, doc, _ = call(server, "POST",
                              "/v1/snapshots/prod/verify",
                              {"property": "teleportation"})
        assert status == 400
        assert "teleportation" in doc["error"]

    def test_ingest_requires_exactly_one_source(self, server):
        status, _, _ = call(server, "POST", "/v1/snapshots", {})
        assert status == 400
        status, _, _ = call(server, "POST", "/v1/snapshots",
                            {"configs": {"a.cfg": "hostname A"},
                             "directory": "/tmp"})
        assert status == 400


class TestMetrics:
    def test_exposition_parses_and_counts(self, server):
        call(server, "POST", "/v1/snapshots",
             {"configs": build_texts(), "name": "prod"})
        call(server, "POST", "/v1/snapshots/prod/verify", reach_spec())
        call(server, "POST", "/v1/snapshots/prod/verify", reach_spec())
        port = server.server_address[1]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30) as resp:
            text = resp.read().decode()
        families = parse_exposition(text)
        assert "serve_cache_hit_total" in families
        assert "serve_snapshots_ingested_total" in families
