"""TTL + LRU cache semantics (injectable clock, no sleeping)."""

import pytest

from repro.serve import TTLLRUCache


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


def make(clock, max_bytes=1000, ttl=10.0):
    return TTLLRUCache(max_bytes=max_bytes, ttl_seconds=ttl, clock=clock)


class TestBasics:
    def test_get_put_roundtrip(self, clock):
        cache = make(clock)
        assert cache.get("k") is None
        assert cache.put("k", "v", 10)
        assert cache.get("k") == "v"
        assert cache.hits == 1 and cache.misses == 1

    def test_bad_budgets_rejected(self):
        with pytest.raises(ValueError):
            TTLLRUCache(max_bytes=0)
        with pytest.raises(ValueError):
            TTLLRUCache(ttl_seconds=0)

    def test_replace_same_key_reaccounts_bytes(self, clock):
        cache = make(clock)
        cache.put("k", "old", 600)
        cache.put("k", "new", 100)
        assert cache.get("k") == "new"
        assert cache.total_bytes == 100
        assert len(cache) == 1


class TestTTL:
    def test_entry_expires_after_ttl(self, clock):
        cache = make(clock, ttl=10.0)
        cache.put("k", "v", 1)
        clock.advance(9.9)
        assert cache.get("k") == "v"
        clock.advance(10.1)
        assert cache.get("k") is None
        assert cache.evicted_ttl == 1

    def test_get_refreshes_ttl(self, clock):
        cache = make(clock, ttl=10.0)
        cache.put("k", "v", 1)
        for _ in range(5):
            clock.advance(8.0)
            assert cache.get("k") == "v"

    def test_contains_respects_ttl_without_refreshing(self, clock):
        cache = make(clock, ttl=10.0)
        cache.put("k", "v", 1)
        assert "k" in cache
        clock.advance(11.0)
        assert "k" not in cache


class TestLRU:
    def test_least_recent_evicted_first(self, clock):
        cache = make(clock, max_bytes=300)
        cache.put("a", 1, 100)
        cache.put("b", 2, 100)
        cache.put("c", 3, 100)
        cache.get("a")  # refresh: b is now least recent
        cache.put("d", 4, 100)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.get("d") == 4
        assert cache.evicted_lru == 1

    def test_large_insert_evicts_many(self, clock):
        cache = make(clock, max_bytes=300)
        for key in "abc":
            cache.put(key, key, 100)
        cache.put("big", "B", 250)
        assert len(cache) == 1
        assert cache.get("big") == "B"
        assert cache.evicted_lru == 3

    def test_oversized_entry_refused(self, clock):
        cache = make(clock, max_bytes=100)
        assert not cache.put("huge", "x", 101)
        assert cache.get("huge") is None
        assert cache.rejected == 1

    def test_oversized_replacement_drops_stale_value(self, clock):
        cache = make(clock, max_bytes=100)
        cache.put("k", "small", 10)
        assert not cache.put("k", "huge", 500)
        # The stale small value must not survive under the key.
        assert cache.get("k") is None


class TestScopes:
    def test_evict_scope_drops_only_prefix(self, clock):
        cache = make(clock)
        cache.put("t1/s1/net", 1, 10)
        cache.put("t1/s1/enc/a", 2, 10)
        cache.put("t1/s2/net", 3, 10)
        cache.put("t2/s1/net", 4, 10)
        assert cache.evict_scope("t1/s1/") == 2
        assert cache.get("t1/s1/net") is None
        assert cache.get("t1/s2/net") == 3
        assert cache.get("t2/s1/net") == 4
        assert cache.evicted_scope == 2

    def test_stats_shape(self, clock):
        cache = make(clock)
        cache.put("k", "v", 10)
        cache.get("k")
        cache.get("nope")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == 10
        assert stats["hits"] == 1
        assert stats["misses"] == 1
