"""Differential verification: cache, differ, report, CLI.

The load-bearing test is ``test_diff_matches_full_verification``: on a
pods-2 fat-tree with a single rack renumber, the diff must (a) produce
verdicts bit-identical to fresh full verification of both trees,
(b) re-solve only the queries whose dependency slice the edit touched,
and (c) surface the reachability flip with a counterexample.
"""

import json

import pytest

from repro.cli import main
from repro.core import BatchQuery, properties as P
from repro.core.engine import BatchEngine
from repro.core.verifier import Verifier
from repro.diff import (
    VerdictCache,
    diff_networks,
    diff_trees,
    render_text,
    to_json,
)
from repro.gen import build_fattree
from repro.lang.writer import write_config
from repro.net import load_network


def _write_tree(network, directory, edit=False):
    directory.mkdir(parents=True, exist_ok=True)
    for name, dev in network.devices.items():
        text = write_config(dev)
        if edit and name == "tor_0_0":
            # Renumber tor_0_0's rack: interface address and the BGP
            # announcement both move from 10.0.0.0/24 to 10.250.0.0/24.
            text = text.replace("10.0.0.", "10.250.0.")
        (directory / f"{name}.cfg").write_text(text)


@pytest.fixture(scope="module")
def trees(tmp_path_factory):
    tree = build_fattree(2)
    base = tmp_path_factory.mktemp("trees")
    _write_tree(tree.network, base / "old")
    _write_tree(tree.network, base / "new", edit=True)
    return tree, base / "old", base / "new"


def _queries(tree):
    queries = []
    for tor in tree.tors:
        subnet = tree.tor_subnet(tor)
        queries.append(BatchQuery(
            prop=P.Reachability(sources="all", dest_prefix_text=subnet),
            label=f"reach-{tor}"))
        queries.append(BatchQuery(
            prop=P.NoForwardingLoops(dest_prefix_text=subnet),
            label=f"loops-{tor}"))
    return queries


# ----------------------------------------------------------------------
# VerdictCache
# ----------------------------------------------------------------------

def test_cache_roundtrip(tmp_path):
    path = tmp_path / "sub" / "cache.json"
    cache = VerdictCache(str(path))
    cache.put("k1", {"holds": True, "message": "ok"})
    cache.put("k2", {"holds": False, "message": "broken"})
    assert cache.dirty
    cache.save()
    assert not cache.dirty
    loaded = VerdictCache.load(str(path))
    assert len(loaded) == 2
    assert loaded.get("k1") == {"holds": True, "message": "ok"}
    assert loaded.get("k2")["holds"] is False


def test_cache_never_stores_unknown_verdicts(tmp_path):
    cache = VerdictCache()
    cache.put("k", {"holds": None, "message": "budget exhausted"})
    assert "k" not in cache and not cache.dirty


def test_cache_missing_or_corrupt_file_is_cold(tmp_path):
    assert len(VerdictCache.load(str(tmp_path / "absent.json"))) == 0
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert len(VerdictCache.load(str(bad))) == 0
    # Wrong version or malformed records degrade to a cold cache too.
    bad.write_text(json.dumps({"version": 999, "verdicts": {"k": {}}}))
    assert len(VerdictCache.load(str(bad))) == 0
    bad.write_text(json.dumps({
        "version": 1,
        "verdicts": {"ok": {"holds": True, "message": ""},
                     "bad": {"holds": "yes"}}}))
    loaded = VerdictCache.load(str(bad))
    assert "ok" in loaded and "bad" not in loaded


def test_cache_save_requires_a_path():
    with pytest.raises(ValueError):
        VerdictCache().save()


def test_cache_concurrent_puts_and_saves(tmp_path):
    """One cache is shared by the serve daemon's request threads:
    put() mutating while save() dumps must not corrupt or crash."""
    import threading

    path = tmp_path / "cache.json"
    cache = VerdictCache(str(path))
    errors = []

    def writer(worker):
        try:
            for i in range(400):
                cache.put(f"w{worker}-{i}", {"holds": True, "message": ""})
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    def saver():
        try:
            for _ in range(40):
                cache.save()
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
    threads += [threading.Thread(target=saver) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    cache.save()
    loaded = VerdictCache.load(str(path))
    assert len(loaded) == 3 * 400


# ----------------------------------------------------------------------
# Differ soundness on a pods-2 fat-tree
# ----------------------------------------------------------------------

def test_diff_matches_full_verification(trees):
    tree, old_dir, new_dir = trees
    queries = _queries(tree)
    cache = VerdictCache()
    report = diff_trees(str(old_dir), str(new_dir), queries, cache=cache)

    # (a) verdicts identical to a fresh full verification of each tree
    old_fresh = Verifier(load_network(str(old_dir))).verify_batch(queries)
    new_fresh = Verifier(load_network(str(new_dir))).verify_batch(queries)
    for q, fo, fn in zip(report.queries, old_fresh, new_fresh):
        assert q.old.holds == fo.holds, q.name
        assert q.new.holds == fn.holds, q.name

    # (b) only tor_0_0's queries (the edited rack) are re-verified
    assert set(report.reverified()) == {"reach-tor_0_0", "loops-tor_0_0"}
    assert set(report.replayed()) == {"reach-tor_1_0", "loops-tor_1_0"}
    assert report.changed_devices == ["tor_0_0"]

    # (c) the flip is a new violation with a counterexample, exit 1
    (flip,) = report.new_violations
    assert flip.name == "reach-tor_0_0"
    assert flip.new.counterexample is not None
    assert not flip.new.cached
    assert report.exit_code == 1

    # rendering includes the flip marker and the replay accounting
    text = render_text(report)
    assert "!! reach-tor_0_0" in text
    assert "2 replayed" in text and "2 re-verified" in text
    payload = to_json(report)
    assert payload["schema_version"] == 1
    assert payload["new_violations"] == ["reach-tor_0_0"]
    assert payload["exit_code"] == 1


def test_diff_identical_trees_replays_everything(trees):
    tree, old_dir, _ = trees
    queries = _queries(tree)
    cache = VerdictCache()
    report = diff_trees(str(old_dir), str(old_dir), queries, cache=cache)
    assert report.exit_code == 0
    assert not report.flips
    assert not report.changed_devices
    # Same tree on both sides: every NEW verdict replays the OLD solve.
    assert set(report.replayed()) == {q.name() for q in queries}


def test_diff_warm_cache_replays_both_sides(trees):
    tree, old_dir, new_dir = trees
    queries = _queries(tree)
    cache = VerdictCache()
    diff_trees(str(old_dir), str(new_dir), queries, cache=cache)
    report = diff_trees(str(old_dir), str(new_dir), queries, cache=cache)
    assert not report.reverified()
    assert report.exit_code == 1          # verdicts unchanged, replayed


def test_diff_unreadable_tree_raises(trees, tmp_path):
    from repro.diff import DiffError

    _, old_dir, _ = trees
    with pytest.raises(DiffError):
        diff_trees(str(old_dir), str(tmp_path / "missing"), [
            BatchQuery(prop=P.NoForwardingLoops())])


def test_diff_networks_added_removed_devices(trees):
    tree, _, _ = trees
    small = build_fattree(2, with_backbone=False).network
    report = diff_networks(tree.network, small,
                           [BatchQuery(prop=P.NoForwardingLoops())])
    # Backbone-less rebuild changes the cores (peer sessions vanish).
    assert set(report.changed_devices) == set(tree.cores)


# ----------------------------------------------------------------------
# Engine-level cache replay
# ----------------------------------------------------------------------

def test_engine_replays_cached_verdicts_identically(trees):
    tree, _, _ = trees
    queries = _queries(tree)
    cache = VerdictCache()
    fresh = BatchEngine(tree.network, verdict_cache=cache).run(queries)
    assert all(not r.cached for r in fresh)
    replayed = BatchEngine(tree.network, verdict_cache=cache).run(queries)
    assert all(r.cached for r in replayed)
    for a, b in zip(fresh, replayed):
        assert (a.holds, a.message) == (b.holds, b.message)
        assert a.property_name == b.property_name


def test_engine_without_cache_unchanged(trees):
    tree, _, _ = trees
    queries = _queries(tree)
    results = BatchEngine(tree.network).run(queries)
    assert all(not r.cached for r in results)
    assert all(r.holds is True for r in results)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_diff_text_and_cache_file(trees, tmp_path, capsys):
    _, old_dir, new_dir = trees
    cache_path = tmp_path / "verdicts.json"
    code = main(["diff", str(old_dir), str(new_dir),
                 "--property", "reachability",
                 "--dest-prefix", "10.1.0.0/24",
                 "--cache", str(cache_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 replayed" in out
    assert cache_path.exists()
    # Second run replays from the saved cache file.
    code = main(["diff", str(old_dir), str(new_dir),
                 "--property", "reachability",
                 "--dest-prefix", "10.1.0.0/24",
                 "--cache", str(cache_path)])
    out = capsys.readouterr().out
    assert code == 0 and "0 re-verified" in out


def test_cli_diff_json_flip_exit_code(trees, capsys):
    _, old_dir, new_dir = trees
    code = main(["diff", str(old_dir), str(new_dir),
                 "--property", "reachability",
                 "--dest-prefix", "10.0.0.0/24", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["exit_code"] == 1
    assert payload["new_violations"] == ["Reachability"]
    assert "counterexample" in payload["queries"][0]


def test_cli_diff_bad_tree_exits_2(trees, tmp_path, capsys):
    _, old_dir, _ = trees
    code = main(["diff", str(old_dir), str(tmp_path / "nope"),
                 "--property", "loops"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_cli_diff_needs_queries(trees):
    _, old_dir, new_dir = trees
    with pytest.raises(SystemExit):
        main(["diff", str(old_dir), str(new_dir)])


def test_cli_diff_cone_stats(trees, capsys):
    _, old_dir, new_dir = trees
    code = main(["diff", str(old_dir), str(new_dir),
                 "--property", "reachability",
                 "--dest-prefix", "10.1.0.0/24", "--cone-stats"])
    out = capsys.readouterr().out
    assert code == 0
    assert "dependency cones (NEW tree):" in out
    assert "fragments on" in out
    # JSON mode carries the per-query stats (and omits the key without
    # the flag: checked by the schema assertions in the tests above).
    code = main(["diff", str(old_dir), str(new_dir),
                 "--property", "reachability",
                 "--dest-prefix", "10.1.0.0/24",
                 "--cone-stats", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    (stat,) = payload["cone_stats"]
    assert stat["name"] == "Reachability"
    assert stat["cacheable"] and stat["bounded"]
    assert 0 < stat["devices"] <= 10
    assert stat["fragments"] > 0
