"""End-to-end solver tests: SAT/UNSAT answers, models, assumptions."""

import itertools

import pytest

from repro.smt import (
    SAT,
    UNKNOWN,
    UNSAT,
    Solver,
    and_,
    at_most_k,
    bool_var,
    bv_add,
    bv_ite,
    bv_val,
    bv_var,
    eq,
    exactly_k,
    iff,
    implies,
    ite,
    ne,
    not_,
    or_,
    ugt,
    ule,
    ult,
)


def fresh_vars(prefix, n):
    return [bool_var(f"{prefix}{i}") for i in range(n)]


class TestBooleanSolving:
    def test_simple_sat_with_model(self):
        a, b = bool_var("sv_a"), bool_var("sv_b")
        s = Solver()
        s.add(or_(a, b), not_(a))
        assert s.check() is SAT
        m = s.model()
        assert m.value("sv_a") is False
        assert m.value("sv_b") is True

    def test_simple_unsat(self):
        a = bool_var("sv_a")
        s = Solver()
        s.add(a, not_(a))
        assert s.check() is UNSAT

    def test_empty_solver_is_sat(self):
        assert Solver().check() is SAT

    def test_asserting_true_is_noop(self):
        s = Solver()
        s.add(iff(bool_var("sv_a"), bool_var("sv_a")))
        assert s.check() is SAT

    def test_asserting_false_is_unsat(self):
        a = bool_var("sv_a")
        s = Solver()
        s.add(and_(a, not_(a)))
        assert s.check() is UNSAT

    def test_chained_implications_propagate(self):
        xs = fresh_vars("chain", 30)
        s = Solver()
        s.add(xs[0])
        for left, right in zip(xs, xs[1:]):
            s.add(implies(left, right))
        assert s.check() is SAT
        m = s.model()
        assert all(m.value(f"chain{i}") for i in range(30))

    def test_model_eval_on_compound_terms(self):
        a, b = bool_var("sv_a"), bool_var("sv_b")
        s = Solver()
        s.add(a, not_(b))
        assert s.check() is SAT
        m = s.model()
        assert m.eval(and_(a, not_(b))) is True
        assert m.eval(or_(b, not_(a))) is False
        assert m.eval(ite(a, bv_val(7, 4), bv_val(3, 4))) == 7

    def test_pigeonhole_unsat(self):
        # 6 pigeons, 5 holes: classic resolution-hard UNSAT instance.
        s = Solver()
        holes = 5
        p = [[bool_var(f"ph_{i}_{j}") for j in range(holes)]
             for i in range(holes + 1)]
        for row in p:
            s.add(or_(*row))
        for j in range(holes):
            for r1, r2 in itertools.combinations(range(holes + 1), 2):
                s.add(or_(not_(p[r1][j]), not_(p[r2][j])))
        assert s.check() is UNSAT
        assert s.stats["conflicts"] > 0

    def test_conflict_budget_yields_unknown(self):
        s = Solver(conflict_budget=1)
        holes = 6
        p = [[bool_var(f"phb_{i}_{j}") for j in range(holes)]
             for i in range(holes + 1)]
        for row in p:
            s.add(or_(*row))
        for j in range(holes):
            for r1, r2 in itertools.combinations(range(holes + 1), 2):
                s.add(or_(not_(p[r1][j]), not_(p[r2][j])))
        assert s.check() is UNKNOWN

    def test_random_3sat_agreement_with_bruteforce(self):
        import random
        rng = random.Random(7)
        n = 8
        names = [f"r3_{i}" for i in range(n)]
        vs = [bool_var(nm) for nm in names]
        for trial in range(25):
            clauses = []
            for _ in range(rng.randint(1, 30)):
                lits = rng.sample(range(n), 3)
                signs = [rng.random() < 0.5 for _ in range(3)]
                clauses.append(list(zip(lits, signs)))
            brute_sat = any(
                all(
                    any((assignment >> v) & 1 == (0 if neg else 1)
                        for v, neg in clause)
                    for clause in clauses
                )
                for assignment in range(1 << n)
            )
            s = Solver()
            for clause in clauses:
                s.add(or_(*[not_(vs[v]) if neg else vs[v]
                            for v, neg in clause]))
            assert (s.check() is SAT) == brute_sat, f"trial {trial}"


class TestAssumptions:
    def test_assumptions_do_not_persist(self):
        a, b = bool_var("as_a"), bool_var("as_b")
        s = Solver()
        s.add(implies(a, b))
        assert s.check([a, not_(b)]) is UNSAT
        assert s.check([a]) is SAT
        assert s.model().value("as_b") is True
        assert s.check() is SAT

    def test_assumption_over_compound_term(self):
        a, b = bool_var("as_a"), bool_var("as_b")
        s = Solver()
        s.add(or_(a, b))
        assert s.check([and_(not_(a), not_(b))]) is UNSAT

    def test_contradictory_assumptions(self):
        a = bool_var("as_a")
        s = Solver()
        s.add(or_(a, not_(a)))
        assert s.check([a, not_(a)]) is UNSAT

    def test_assumption_on_bv_comparison(self):
        x = bv_var("as_x", 8)
        s = Solver()
        s.add(ult(x, bv_val(10, 8)))
        assert s.check([ugt(x, bv_val(20, 8))]) is UNSAT
        assert s.check([ugt(x, bv_val(5, 8))]) is SAT
        assert 5 < s.model().value("as_x") < 10


class TestIncremental:
    def test_add_after_check(self):
        a, b = bool_var("in_a"), bool_var("in_b")
        s = Solver()
        s.add(or_(a, b))
        assert s.check() is SAT
        s.add(not_(a))
        assert s.check() is SAT
        assert s.model().value("in_b") is True
        s.add(not_(b))
        assert s.check() is UNSAT

    def test_unsat_is_sticky(self):
        a = bool_var("in_a")
        s = Solver()
        s.add(a, not_(a))
        assert s.check() is UNSAT
        s.add(or_(a, not_(a)))
        assert s.check() is UNSAT


class TestBitVectorSolving:
    def test_addition_model(self):
        x, y = bv_var("bvs_x", 8), bv_var("bvs_y", 8)
        s = Solver()
        s.add(eq(bv_add(x, y), bv_val(10, 8)), ult(x, y),
              ugt(x, bv_val(3, 8)))
        assert s.check() is SAT
        m = s.model()
        assert (m.value("bvs_x") + m.value("bvs_y")) % 256 == 10
        assert 3 < m.value("bvs_x") < m.value("bvs_y")

    def test_addition_wraps_modulo(self):
        x = bv_var("bvs_x", 8)
        s = Solver()
        s.add(eq(bv_add(x, bv_val(1, 8)), bv_val(0, 8)))
        assert s.check() is SAT
        assert s.model().value("bvs_x") == 255

    def test_comparison_unsat_window(self):
        x = bv_var("bvs_x", 8)
        s = Solver()
        s.add(ult(x, bv_val(5, 8)), ugt(x, bv_val(5, 8)))
        assert s.check() is UNSAT

    def test_ne_forces_difference(self):
        x, y = bv_var("bvs_x", 4), bv_var("bvs_y", 4)
        s = Solver()
        s.add(ne(x, y), ule(x, bv_val(0, 4)), ule(y, bv_val(1, 4)))
        assert s.check() is SAT
        m = s.model()
        assert m.value("bvs_x") == 0
        assert m.value("bvs_y") == 1

    def test_ite_selection(self):
        c = bool_var("bvs_c")
        x, y = bv_var("bvs_x", 8), bv_var("bvs_y", 8)
        z = bv_ite(c, x, y)
        s = Solver()
        s.add(eq(z, bv_val(42, 8)), not_(c), eq(x, bv_val(1, 8)))
        assert s.check() is SAT
        assert s.model().value("bvs_y") == 42

    def test_wide_vector(self):
        ip = bv_var("bvs_ip", 32)
        s = Solver()
        lo = bv_val(0xC0A80000, 32)
        hi = bv_val(0xC0A80000 + (1 << 16), 32)
        s.add(ule(lo, ip), ult(ip, hi))
        assert s.check() is SAT
        assert (s.model().value("bvs_ip") >> 16) == 0xC0A8


class TestCardinality:
    @pytest.mark.parametrize("n,k", [(1, 0), (4, 2), (6, 3), (9, 1), (5, 5)])
    def test_exactly_k_models(self, n, k):
        bits = fresh_vars(f"card{n}_{k}_", n)
        s = Solver()
        s.add(exactly_k(bits, k))
        assert s.check() is SAT
        m = s.model()
        total = sum(1 for i in range(n)
                    if m.value(f"card{n}_{k}_{i}"))
        assert total == k

    def test_at_most_k_rejects_overflow(self):
        bits = fresh_vars("amk_", 4)
        s = Solver()
        s.add(at_most_k(bits, 1), bits[0], bits[2])
        assert s.check() is UNSAT

    def test_exactly_zero(self):
        bits = fresh_vars("xz_", 3)
        s = Solver()
        s.add(exactly_k(bits, 0))
        assert s.check() is SAT
        m = s.model()
        assert not any(m.value(f"xz_{i}") for i in range(3))


class TestSolverIntrospection:
    def test_rejects_non_boolean_assertion(self):
        s = Solver()
        with pytest.raises(TypeError):
            s.add(bv_val(1, 4))

    def test_stats_and_counts_populated(self):
        a, b = bool_var("si_a"), bool_var("si_b")
        s = Solver()
        s.add(or_(a, b), iff(a, b))
        assert s.check() is SAT
        assert s.num_variables >= 2
        assert s.num_clauses >= 1
        stats = s.stats
        assert stats["vars"] == s.num_variables
        assert s.last_check_seconds >= 0.0

    def test_assertions_are_recorded(self):
        a = bool_var("si_a")
        s = Solver()
        s.add(a)
        assert s.assertions() == [a]
