"""Portfolio racing: determinism under skew, facade/verifier integration.

The contract under test (see ``repro/smt/sat/portfolio.py``): for a
fixed seed set, the verdict and — for SAT — the reported model are a
function of the seed set alone, never of which worker happens to finish
first.  The ``_TEST_DELAYS`` hook skews worker start times arbitrarily
to prove it.
"""

import random

import pytest

from repro.smt import SAT, Solver, UNKNOWN, UNSAT, bool_var, not_, or_
from repro.smt.sat import portfolio as pf
from repro.smt.sat.portfolio import (
    PortfolioConfig,
    PortfolioError,
    default_configs,
    race,
)


@pytest.fixture(autouse=True)
def clear_delays():
    pf._TEST_DELAYS.clear()
    yield
    pf._TEST_DELAYS.clear()


def random_cnf(seed, n=60, ratio=4.0):
    rng = random.Random(seed)
    return [[v if rng.random() < 0.5 else -v
             for v in rng.sample(range(1, n + 1), 3)]
            for _ in range(int(n * ratio))]


def pigeonhole(n):
    import itertools
    clauses = []

    def var(i, j):
        return i * n + j + 1

    for i in range(n + 1):
        clauses.append([var(i, j) for j in range(n)])
    for j in range(n):
        for a, b in itertools.combinations(range(n + 1), 2):
            clauses.append([-var(a, j), -var(b, j)])
    return clauses, (n + 1) * n


class TestDefaultConfigs:
    def test_seed_zero_is_vanilla(self):
        configs = default_configs(4)
        assert configs[0] == PortfolioConfig(seed=0)
        assert [c.seed for c in configs] == [0, 1, 2, 3]

    def test_diversified_beyond_base_variants(self):
        configs = default_configs(10)
        assert len({c.seed for c in configs}) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_configs(0)


class TestRaceDeterminism:
    # Two configs with provably different models on (a or b): the
    # vanilla config decides var 1 false (phase "false") forcing b; the
    # phase-"true" config decides var 1 true.  The canonical winner is
    # always seed 0, whatever the finish order.
    CONFIGS = [PortfolioConfig(seed=0),
               PortfolioConfig(seed=1, phase_init="true")]

    def _race(self):
        return race([[1, 2]], 2, configs=self.CONFIGS, timeout=60)

    def test_sat_model_ignores_finish_order(self):
        baseline = self._race()
        assert baseline.outcome is True
        assert baseline.winner.seed == 0
        assert baseline.model == [False, True]
        # Now skew hard: seed 0 sleeps while seed 1 reports instantly
        # with its different model; the race must still wait for and
        # prefer seed 0.
        pf._TEST_DELAYS.update({0: 0.5})
        skewed = self._race()
        assert skewed.outcome is True
        assert skewed.winner.seed == 0
        assert skewed.model == baseline.model

    def test_unsat_verdict_ignores_finish_order(self):
        clauses, num_vars = pigeonhole(4)
        for delays in ({}, {0: 0.4}, {1: 0.4}):
            pf._TEST_DELAYS.clear()
            pf._TEST_DELAYS.update(delays)
            result = race(clauses, num_vars,
                          configs=default_configs(2), timeout=60)
            assert result.outcome is False
            assert result.model is None

    def test_higher_seed_sat_wins_only_if_lower_seeds_blank(self):
        # With a conflict budget of 0 conflicts allowed... instead force
        # the decision via distinct outcomes: every config solves this
        # instantly, so the lowest seed must win even when delayed.
        configs = default_configs(3)
        pf._TEST_DELAYS.update({0: 0.3, 1: 0.15})
        result = race([[1, 2], [-1, 2]], 2, configs=configs, timeout=60)
        assert result.outcome is True
        assert result.winner.seed == 0

    def test_unknown_when_all_budgets_exhausted(self):
        clauses, num_vars = pigeonhole(7)
        result = race(clauses, num_vars, conflict_budget=20,
                      configs=default_configs(2), timeout=60)
        assert result.outcome is None
        assert result.model is None
        assert set(result.worker_outcomes) == {0, 1}

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ValueError):
            race([[1]], 1,
                 configs=[PortfolioConfig(seed=3), PortfolioConfig(seed=3)])


class TestFacadeIntegration:
    def test_portfolio_model_valid_and_deterministic(self):
        def build(portfolio):
            s = Solver(portfolio=portfolio)
            a, b, c = (bool_var(f"pfm_{x}") for x in "abc")
            s.add(or_(a, b, c))
            s.add(not_(a))
            s.add(or_(not_(b), c))
            return s

        serial, raced = build(1), build(3)
        assert serial.check() is SAT and raced.check() is SAT
        # The raced model must satisfy every assertion (it may be a
        # different satisfying assignment than the serial one: workers
        # search the parent's already-simplified CNF).
        model = raced.model()
        for term in raced.assertions():
            assert model.eval(term) is True
        # Determinism: skewing the finish order must not change the
        # reported model (canonical winner = lowest verdict seed).
        pf._TEST_DELAYS.update({0: 0.4})
        skewed = build(3)
        assert skewed.check() is SAT
        assert skewed.model().env() == model.env()

    def test_portfolio_unsat_and_reuse(self):
        s = Solver(portfolio=2)
        a = bool_var("pfu_a")
        s.add(a)
        assert s.check() is SAT
        assert s.model().value("pfu_a") is True
        s.add(not_(a))
        assert s.check() is UNSAT

    def test_portfolio_unknown_on_budget(self):
        import itertools
        s = Solver(conflict_budget=10, portfolio=2)
        holes = [[bool_var(f"pfb_{p}_{h}") for h in range(5)]
                 for p in range(6)]
        for pigeon in holes:
            s.add(or_(*pigeon))
        for h in range(5):
            for p1, p2 in itertools.combinations(range(6), 2):
                s.add(or_(not_(holes[p1][h]), not_(holes[p2][h])))
        assert s.check() is UNKNOWN

    def test_portfolio_assumptions(self):
        s = Solver(portfolio=2)
        a, b = bool_var("pfa_a"), bool_var("pfa_b")
        s.add(or_(a, b))
        assert s.check([not_(a)]) is SAT
        assert s.model().value("pfa_b") is True
        assert s.check([not_(a), not_(b)]) is UNSAT
        assert s.check() is SAT

    def test_rejects_bad_portfolio(self):
        with pytest.raises(ValueError):
            Solver(portfolio=0)

    def test_fallback_warns_counts_and_still_answers(self, monkeypatch):
        from repro import obs
        import repro.smt.solver as facade_mod

        def broken_race(*args, **kwargs):
            raise PortfolioError("forced by test")

        monkeypatch.setattr(facade_mod, "race", broken_race)
        s = Solver(portfolio=2)
        a = bool_var("pff_a")
        s.add(a)
        tracer = obs.Tracer()
        with obs.use(tracer):
            with pytest.warns(RuntimeWarning,
                              match="portfolio solving unavailable"):
                outcome = s.check()
        assert outcome is SAT
        assert s.model().value("pff_a") is True
        assert tracer.metrics.counter("sat.portfolio_fallback").value == 1


class TestVerifierIntegration:
    def test_verify_with_portfolio_matches_serial(self):
        from repro import NetworkBuilder, Verifier
        from repro.core import properties as P
        from repro.core.encoder import EncoderOptions

        b = NetworkBuilder()
        for name in ("R1", "R2", "R3"):
            b.device(name).enable_ospf()
            b.device(name).ospf_network("10.0.0.0/8")
        b.link("R1", "R2")
        b.link("R2", "R3")
        b.device("R3").interface("host", "10.9.0.1/24")
        network = b.build()
        prop = P.Reachability(sources="all", dest_prefix_text="10.9.0.0/24")

        serial = Verifier(network).verify(prop)
        raced = Verifier(network, options=EncoderOptions(
            portfolio=2)).verify(prop)
        assert raced.holds is serial.holds is True

        # A violated property must carry a counterexample either way.
        broken = P.Reachability(sources=["R1"],
                                dest_prefix_text="172.20.0.0/16")
        serial_v = Verifier(network).verify(broken)
        raced_v = Verifier(network, options=EncoderOptions(
            portfolio=2)).verify(broken)
        assert raced_v.holds is serial_v.holds is False
        assert raced_v.counterexample is not None
