"""Tests for the exact linear-arithmetic helper used by load balancing."""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import LinExpr, solve_linear_system


def var(name):
    return LinExpr.var(name)


def const(v):
    return LinExpr.constant(v)


class TestLinExpr:
    def test_arithmetic(self):
        e = var("a") + var("b") * 2 - const(3)
        assert e.coeffs == {"a": Fraction(1), "b": Fraction(2)}
        assert e.const == Fraction(-3)

    def test_evaluate(self):
        e = var("a") * Fraction(1, 2) + const(1)
        assert e.evaluate({"a": Fraction(4)}) == Fraction(3)

    def test_variables_skips_cancelled(self):
        e = var("a") - var("a") + var("b")
        assert e.variables() == ["b"]


class TestSolveLinearSystem:
    def test_unique_solution(self):
        # a + b = 3, a - b = 1  =>  a = 2, b = 1
        env = solve_linear_system([
            (var("a") + var("b"), const(3)),
            (var("a") - var("b"), const(1)),
        ])
        assert env == {"a": Fraction(2), "b": Fraction(1)}

    def test_inconsistent_system(self):
        env = solve_linear_system([
            (var("a"), const(1)),
            (var("a"), const(2)),
        ])
        assert env is None

    def test_underdetermined_fixes_free_vars_to_zero(self):
        env = solve_linear_system([
            (var("a") + var("b"), const(5)),
        ])
        assert env["a"] + env["b"] == 5

    def test_flow_conservation_shape(self):
        # A tiny ECMP split: total = out1 + out2, out1 = out2 = x.
        env = solve_linear_system([
            (var("total"), const(1)),
            (var("out1"), var("x")),
            (var("out2"), var("x")),
            (var("out1") + var("out2"), var("total")),
        ])
        assert env["out1"] == Fraction(1, 2)
        assert env["out2"] == Fraction(1, 2)

    def test_empty_system(self):
        assert solve_linear_system([]) == {}

    def test_redundant_equations_ok(self):
        env = solve_linear_system([
            (var("a"), const(4)),
            (var("a") * 2, const(8)),
        ])
        assert env == {"a": Fraction(4)}


@settings(max_examples=60, deadline=None)
@given(
    solution=st.dictionaries(
        st.sampled_from(["p", "q", "r"]),
        st.fractions(min_value=-10, max_value=10),
        min_size=1, max_size=3,
    ),
)
def test_roundtrip_solvable_systems(solution):
    """Systems constructed from a known solution are solved exactly."""
    names = sorted(solution)
    equations = []
    # One pinning equation per variable plus one redundant sum.
    for name in names:
        equations.append((var(name), const(solution[name])))
    total = sum((var(n) for n in names), const(0))
    expected = sum(solution.values())
    equations.append((total, const(expected)))
    env = solve_linear_system(equations)
    assert env is not None
    for name in names:
        assert env[name] == solution[name]
