"""Unit tests for the term language: construction, simplification, sorts."""

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    and_,
    bit,
    bool_var,
    bv_add,
    bv_ite,
    bv_val,
    bv_var,
    eq,
    iff,
    implies,
    ite,
    ne,
    not_,
    or_,
    uge,
    ugt,
    ule,
    ult,
    xor,
)
from repro.smt.terms import Context, bv_sort


class TestHashConsing:
    def test_identical_terms_are_same_object(self):
        a = bool_var("hc_a")
        assert bool_var("hc_a") is a
        assert and_(a, bool_var("hc_b")) is and_(a, bool_var("hc_b"))

    def test_and_is_order_insensitive(self):
        a, b = bool_var("hc_a"), bool_var("hc_b")
        assert and_(a, b) is and_(b, a)

    def test_bv_constants_interned_modulo_width(self):
        assert bv_val(256 + 5, 8) is bv_val(5, 8)
        assert bv_val(5, 8) is not bv_val(5, 16)

    def test_separate_contexts_do_not_mix(self):
        ctx = Context()
        foreign = bool_var("hc_x", ctx)
        local = bool_var("hc_y")
        with pytest.raises(ValueError):
            and_(foreign, local)


class TestBooleanSimplification:
    def test_and_units(self):
        a = bool_var("bs_a")
        assert and_() is TRUE
        assert and_(a) is a
        assert and_(a, TRUE) is a
        assert and_(a, FALSE) is FALSE

    def test_or_units(self):
        a = bool_var("bs_a")
        assert or_() is FALSE
        assert or_(a) is a
        assert or_(a, FALSE) is a
        assert or_(a, TRUE) is TRUE

    def test_complement_collapses(self):
        a = bool_var("bs_a")
        assert and_(a, not_(a)) is FALSE
        assert or_(a, not_(a)) is TRUE

    def test_flattening_and_dedup(self):
        a, b, c = bool_var("bs_a"), bool_var("bs_b"), bool_var("bs_c")
        assert and_(and_(a, b), c) is and_(a, b, c)
        assert or_(a, or_(a, b)) is or_(a, b)

    def test_double_negation(self):
        a = bool_var("bs_a")
        assert not_(not_(a)) is a
        assert not_(TRUE) is FALSE

    def test_iff_folding(self):
        a, b = bool_var("bs_a"), bool_var("bs_b")
        assert iff(a, a) is TRUE
        assert iff(a, not_(a)) is FALSE
        assert iff(a, TRUE) is a
        assert iff(FALSE, b) is not_(b)
        assert iff(a, b) is iff(b, a)

    def test_xor_is_negated_iff(self):
        a, b = bool_var("bs_a"), bool_var("bs_b")
        assert xor(a, b) is not_(iff(a, b))

    def test_implies_expands_to_or(self):
        a, b = bool_var("bs_a"), bool_var("bs_b")
        assert implies(a, b) is or_(not_(a), b)
        assert implies(TRUE, b) is b
        assert implies(FALSE, b) is TRUE

    def test_ite_folding(self):
        a, b, c = bool_var("bs_a"), bool_var("bs_b"), bool_var("bs_c")
        assert ite(TRUE, a, b) is a
        assert ite(FALSE, a, b) is b
        assert ite(c, a, a) is a
        assert ite(c, TRUE, FALSE) is c
        assert ite(c, FALSE, TRUE) is not_(c)
        assert ite(c, TRUE, b) is or_(c, b)
        assert ite(c, b, FALSE) is and_(c, b)


class TestBitVectors:
    def test_width_property(self):
        x = bv_var("tv_x", 12)
        assert x.width == 12
        assert x.sort == bv_sort(12)
        with pytest.raises(TypeError):
            bool_var("tv_a").width

    def test_add_constant_folding(self):
        assert bv_add(bv_val(200, 8), bv_val(100, 8)) is bv_val(44, 8)
        x = bv_var("tv_x", 8)
        assert bv_add(x, bv_val(0, 8)) is x

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeError):
            bv_add(bv_var("tv_x", 8), bv_var("tv_y", 16))
        with pytest.raises(TypeError):
            eq(bv_var("tv_x", 8), bv_var("tv_y", 16))

    def test_eq_folding(self):
        x = bv_var("tv_x", 8)
        assert eq(x, x) is TRUE
        assert eq(bv_val(3, 8), bv_val(3, 8)) is TRUE
        assert eq(bv_val(3, 8), bv_val(4, 8)) is FALSE
        assert ne(bv_val(3, 8), bv_val(4, 8)) is TRUE

    def test_comparison_folding(self):
        x = bv_var("tv_x", 8)
        assert ule(bv_val(0, 8), x) is TRUE
        assert ule(x, bv_val(255, 8)) is TRUE
        assert ule(x, x) is TRUE
        assert ult(x, x) is FALSE
        assert ult(x, bv_val(0, 8)) is FALSE
        assert ult(bv_val(2, 8), bv_val(9, 8)) is TRUE
        assert uge(bv_val(9, 8), bv_val(2, 8)) is TRUE
        assert ugt(bv_val(2, 8), bv_val(9, 8)) is FALSE

    def test_bit_extraction(self):
        assert bit(bv_val(0b101, 4), 0) is TRUE
        assert bit(bv_val(0b101, 4), 1) is FALSE
        assert bit(bv_val(0b101, 4), 2) is TRUE
        with pytest.raises(IndexError):
            bit(bv_val(0, 4), 4)

    def test_bit_pushes_through_ite(self):
        c = bool_var("tv_c")
        t = bv_ite(c, bv_val(1, 4), bv_val(0, 4))
        assert bit(t, 0) is c

    def test_ite_requires_matching_sorts(self):
        c = bool_var("tv_c")
        with pytest.raises(TypeError):
            ite(c, bv_val(1, 4), bv_val(1, 8))

    def test_bool_ops_reject_bitvectors(self):
        with pytest.raises(TypeError):
            and_(bv_val(1, 4), TRUE)
        with pytest.raises(TypeError):
            not_(bv_val(1, 4))

    def test_operator_sugar(self):
        x, y = bv_var("tv_x", 8), bv_var("tv_y", 8)
        assert (x + y) is bv_add(x, y)
        assert (x <= y) is ule(x, y)
        assert (x < y) is ult(x, y)
        a, b = bool_var("tv_a"), bool_var("tv_b")
        assert (a & b) is and_(a, b)
        assert (a | b) is or_(a, b)
        assert (~a) is not_(a)
