"""Differential suite: flat-arena SatSolver vs the list-based reference.

The arena solver promises *op-for-op* fidelity to
:class:`repro.smt.sat.reference.ReferenceSatSolver` — same decisions,
same conflicts, same learned clauses, same models — so every counter in
``stats()`` must match exactly, not just the verdict.  These tests pit
the two implementations against each other over three CNF sources of
increasing realism: raw random/crafted CNFs, Tseitin-transformed term
formulas, and real fat-tree / cloud network verification encodings.
"""

import itertools
import random

import pytest

from repro.smt import (
    Solver,
    and_,
    bool_var,
    bv_val,
    bv_var,
    eq,
    implies,
    not_,
    or_,
    ule,
    xor,
)
from repro.smt.sat import ReferenceSatSolver, SatSolver


def solve_both(clauses, num_vars, preprocess, budget=None):
    """Run both solvers on one CNF; assert full behavioral identity.

    Returns the (shared) outcome so callers can assert SAT/UNSAT-ness.
    """
    runs = []
    for cls in (SatSolver, ReferenceSatSolver):
        solver = cls()
        solver.preprocess_enabled = preprocess
        solver.ensure_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        outcome = solver.solve(conflict_budget=budget)
        runs.append((outcome, solver))
    (out_a, arena), (out_b, reference) = runs
    assert out_a == out_b
    assert arena.stats() == reference.stats()
    if out_a:
        models = [[s.model_value(v) for v in range(1, num_vars + 1)]
                  for _, s in runs]
        assert models[0] == models[1]
    return out_a


def random_cnf(rng, n, ratio=4.26, width=3):
    clauses = []
    for _ in range(int(n * ratio)):
        lits = rng.sample(range(1, n + 1), width)
        clauses.append([lit if rng.random() < 0.5 else -lit
                        for lit in lits])
    return clauses


def facade_cnf(solver: Solver):
    """Extract the raw CNF a facade solver would hand its CDCL core."""
    return [list(c) for c in solver._cnf.clauses], solver._cnf.num_vars


class TestRawCnf:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("preprocess", [False, True])
    def test_random_3sat(self, seed, preprocess):
        rng = random.Random(seed)
        solve_both(random_cnf(rng, 100), 100, preprocess, budget=20000)

    @pytest.mark.parametrize("preprocess", [False, True])
    def test_pigeonhole_unsat(self, preprocess):
        n = 6
        clauses = []

        def var(i, j):
            return i * n + j + 1

        for i in range(n + 1):
            clauses.append([var(i, j) for j in range(n)])
        for j in range(n):
            for a, b in itertools.combinations(range(n + 1), 2):
                clauses.append([-var(a, j), -var(b, j)])
        assert solve_both(clauses, (n + 1) * n, preprocess) is False

    def test_budget_exhaustion_identical(self):
        rng = random.Random(99)
        clauses = random_cnf(rng, 140, ratio=4.3)
        # A budget small enough to likely abort mid-search on both.
        solve_both(clauses, 140, True, budget=50)


class TestTseitinTerms:
    def _extract(self, terms):
        facade = Solver()
        facade.add(*terms)
        return facade_cnf(facade)

    @pytest.mark.parametrize("preprocess", [False, True])
    def test_boolean_circuit(self, preprocess):
        a, b, c, d = (bool_var(f"diff_bc_{x}") for x in "abcd")
        terms = [
            implies(and_(a, b), or_(c, d)),
            xor(a, c),
            or_(not_(b), xor(b, d)),
            not_(and_(a, b, c, d)),
        ]
        clauses, num_vars = self._extract(terms)
        assert solve_both(clauses, num_vars, preprocess) is True

    @pytest.mark.parametrize("preprocess", [False, True])
    def test_bitvector_arithmetic(self, preprocess):
        x = bv_var("diff_bv_x", 8)
        y = bv_var("diff_bv_y", 8)
        terms = [ule(x, y), eq(y, bv_val(17, 8)), not_(eq(x, y))]
        clauses, num_vars = self._extract(terms)
        assert solve_both(clauses, num_vars, preprocess) is True

    @pytest.mark.parametrize("preprocess", [False, True])
    def test_bitvector_unsat(self, preprocess):
        x = bv_var("diff_bu_x", 6)
        terms = [ule(bv_val(40, 6), x), ule(x, bv_val(10, 6))]
        clauses, num_vars = self._extract(terms)
        assert solve_both(clauses, num_vars, preprocess) is False

    @pytest.mark.parametrize("seed", range(3))
    def test_random_term_soup(self, seed):
        rng = random.Random(seed)
        atoms = [bool_var(f"diff_soup{seed}_{i}") for i in range(10)]

        def build(depth):
            if depth == 0:
                atom = rng.choice(atoms)
                return not_(atom) if rng.random() < 0.5 else atom
            op = rng.choice([and_, or_, xor, implies])
            if op in (xor, implies):
                return op(build(depth - 1), build(depth - 1))
            return op(*[build(depth - 1)
                        for _ in range(rng.randint(2, 3))])

        terms = [build(4) for _ in range(4)]
        clauses, num_vars = self._extract(terms)
        solve_both(clauses, num_vars, True)


class TestNetworkEncodings:
    def _property_cnf(self, network, prop, dst_prefix=None):
        """The exact CNF a Verifier check would discharge: network
        constraints, property instrumentation, negated property."""
        from repro.core.encoder import EncoderOptions, NetworkEncoder

        encoder = NetworkEncoder(network, EncoderOptions())
        enc = encoder.encode(dst_prefix=dst_prefix)
        facade = Solver()
        facade.add(*enc.constraints, label="network")
        mark = enc.checkpoint()
        prop_term = prop.encode(enc)
        facade.add(*enc.constraints_since(mark), label="instrumentation")
        facade.add(not_(prop_term), label="property")
        return facade_cnf(facade)

    @pytest.mark.parametrize("preprocess", [False, True])
    def test_fattree_reachability(self, preprocess):
        from repro.core import properties as P
        from repro.gen import build_fattree
        from repro.net import ip as iplib

        tree = build_fattree(2)
        subnet = tree.tor_subnet(tree.tors[0])
        prop = P.Reachability(sources="all", dest_prefix_text=subnet)
        clauses, num_vars = self._property_cnf(
            tree.network, prop, dst_prefix=iplib.parse_prefix(subnet))
        assert solve_both(clauses, num_vars, preprocess) is False

    @pytest.mark.parametrize("index", [0, 120])
    def test_cloud_blackhole_check(self, index):
        """One seeded-bug network (index 0: hijack) and one clean one
        (index 120); the CNFs differ in satisfiability, both must agree
        across solvers."""
        from repro.core import properties as P
        from repro.gen.cloud import build_cloud_network

        cloud = build_cloud_network(index)
        prefix = cloud.management_prefixes[0]
        prop = P.NoBlackHoles(dest_prefix_text=prefix)
        clauses, num_vars = self._property_cnf(cloud.network, prop)
        solve_both(clauses, num_vars, True, budget=50000)
