"""White-box tests for the CDCL core: heap order, clause management,
learning, restarts, and DIMACS-level behaviours."""

import random

import pytest

from repro.smt.sat.solver import SatSolver, _VarOrder


class TestVarOrder:
    def test_push_pop_max_order(self):
        activity = [0.5, 3.0, 1.0, 2.0]
        order = _VarOrder(activity)
        for var in range(4):
            order.grow(var)
            order.push(var)
        popped = [order.pop() for _ in range(4)]
        assert popped == [1, 3, 2, 0]
        assert not order

    def test_no_duplicates(self):
        order = _VarOrder([1.0])
        order.grow(0)
        order.push(0)
        order.push(0)
        assert order.pop() == 0
        assert not order

    def test_bump_reorders_in_place(self):
        activity = [1.0, 2.0, 3.0]
        order = _VarOrder(activity)
        for var in range(3):
            order.grow(var)
            order.push(var)
        activity[0] = 10.0
        order.bump(0)
        assert order.pop() == 0

    def test_randomized_against_sort(self):
        rng = random.Random(11)
        activity = [rng.random() for _ in range(50)]
        order = _VarOrder(activity)
        for var in range(50):
            order.grow(var)
            order.push(var)
        popped = [order.pop() for _ in range(50)]
        expected = sorted(range(50), key=lambda v: -activity[v])
        assert popped == expected


class TestSatSolverDimacs:
    def solve(self, clauses, assumptions=()):
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        return solver, solver.solve(assumptions)

    def test_empty_formula_is_sat(self):
        _, result = self.solve([])
        assert result is True

    def test_unit_propagation_chain(self):
        solver, result = self.solve([[1], [-1, 2], [-2, 3]])
        assert result is True
        assert solver.model_value(1) and solver.model_value(2) \
            and solver.model_value(3)

    def test_empty_clause_unsat(self):
        _, result = self.solve([[1], []])
        assert result is False

    def test_conflicting_units(self):
        _, result = self.solve([[1], [-1]])
        assert result is False

    def test_tautology_ignored(self):
        solver, result = self.solve([[1, -1], [2]])
        assert result is True
        assert solver.model_value(2)

    def test_duplicate_literals_collapsed(self):
        solver, result = self.solve([[3, 3, 3]])
        assert result is True
        assert solver.model_value(3)

    def test_binary_clause_conflict_detection(self):
        # Forces the binary implication path to raise the conflict.
        _, result = self.solve([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        assert result is False

    def test_assumptions_dont_stick(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]) is True
        assert solver.model_value(2)
        assert solver.solve([-2]) is True
        assert solver.model_value(1)
        assert solver.solve([-1, -2]) is False
        assert solver.solve() is True

    def test_incremental_addition_after_solve(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve() is True
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is False

    def test_conflict_budget(self):
        # A small pigeonhole instance with a 1-conflict budget.
        import itertools

        solver = SatSolver()
        n = 5
        def var(i, j):
            return i * n + j + 1
        for i in range(n + 1):
            solver.add_clause([var(i, j) for j in range(n)])
        for j in range(n):
            for a, b in itertools.combinations(range(n + 1), 2):
                solver.add_clause([-var(a, j), -var(b, j)])
        assert solver.solve(conflict_budget=1) is None
        assert solver.solve() is False

    def test_learned_clause_reduction_triggers(self):
        # A hard random 3-SAT instance near the phase transition, sized
        # so the clause database gets reduced at least once.
        rng = random.Random(3)
        n = 120
        solver = SatSolver()
        for _ in range(int(n * 4.26)):
            lits = rng.sample(range(1, n + 1), 3)
            solver.add_clause([l if rng.random() < 0.5 else -l
                               for l in lits])
        outcome = solver.solve()
        assert outcome in (True, False)
        # Verify the model if SAT.
        if outcome:
            assert all(isinstance(solver.model_value(v), bool)
                       for v in range(1, n + 1))

    def test_restarts_happen_on_hard_instances(self):
        import itertools

        solver = SatSolver()
        n = 7
        def var(i, j):
            return i * n + j + 1
        for i in range(n + 1):
            solver.add_clause([var(i, j) for j in range(n)])
        for j in range(n):
            for a, b in itertools.combinations(range(n + 1), 2):
                solver.add_clause([-var(a, j), -var(b, j)])
        assert solver.solve() is False
        assert solver.conflicts > 100

    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances_match_bruteforce(self, seed):
        rng = random.Random(seed)
        n = 9
        clauses = []
        for _ in range(rng.randint(5, 40)):
            k = rng.randint(1, 3)
            lits = rng.sample(range(1, n + 1), k)
            clauses.append([l if rng.random() < 0.5 else -l
                            for l in lits])
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        got = solver.solve()
        brute = any(
            all(any((assignment >> (abs(l) - 1)) & 1 == (1 if l > 0 else 0)
                    for l in clause)
                for clause in clauses)
            for assignment in range(1 << n)
        )
        assert got == brute
        if got:
            # The reported model must satisfy every clause.
            for clause in clauses:
                assert any(solver.model_value(abs(l)) == (l > 0)
                           for l in clause)
