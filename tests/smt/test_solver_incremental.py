"""Incremental-solving contract of the Solver facade.

The batch verification engine leans on three behaviors that the lazy
load-balancing loop only partially exercised: clause loading is exactly
once per clause across checks, assumption-based checks leave the solver
reusable, and models from assumption-based checks satisfy both the
assertions and the assumptions.
"""

import pytest

from repro.smt import (
    SAT,
    UNKNOWN,
    UNSAT,
    Solver,
    and_,
    bool_var,
    bv_val,
    bv_var,
    eq,
    evaluate,
    implies,
    not_,
    or_,
    ule,
)


class TestIncrementalAdd:
    def test_add_after_sat_check_then_recheck(self):
        a, b = bool_var("inc_a"), bool_var("inc_b")
        s = Solver()
        s.add(or_(a, b))
        assert s.check() is SAT
        s.add(not_(a))
        assert s.check() is SAT
        assert s.model().value("inc_b") is True
        s.add(not_(b))
        assert s.check() is UNSAT

    def test_clauses_loaded_exactly_once(self):
        a, b, c = (bool_var(f"inc1_{i}") for i in "abc")
        s = Solver()
        s.add(or_(a, b))
        assert s.check() is SAT
        loaded_after_first = s._num_clauses_loaded
        assert loaded_after_first == len(s._cnf.clauses)
        sat_clauses_after_first = s._sat.stats()["live_clauses"]
        # Re-checking without new assertions must not reload anything.
        assert s.check() is SAT
        assert s._num_clauses_loaded == loaded_after_first
        assert s._sat.stats()["live_clauses"] == sat_clauses_after_first
        # New assertions load only the delta.
        s.add(or_(b, c))
        assert s.check() is SAT
        assert s._num_clauses_loaded == len(s._cnf.clauses)
        assert s._num_clauses_loaded > loaded_after_first

    def test_unsat_under_assumptions_does_not_poison_solver(self):
        a = bool_var("inc2_a")
        s = Solver()
        s.add(or_(a, not_(a)))
        assert s.check([a, not_(a)]) is UNSAT
        assert s.check() is SAT
        s.add(a)
        assert s.check() is SAT


class TestAssumptionReuse:
    def test_assumption_check_then_unconstrained_check(self):
        a, b = bool_var("asm_a"), bool_var("asm_b")
        s = Solver()
        s.add(implies(a, b))
        assert s.check([a]) is SAT
        assert s.model().value("asm_b") is True
        # The assumption must not persist.
        assert s.check() is SAT
        assert s.check([not_(b)]) is SAT
        assert s.model().value("asm_a") in (False, None)
        # And the solver still accepts assertions after assumption checks.
        s.add(a)
        assert s.check() is SAT
        assert s.model().value("asm_b") is True

    def test_assumption_literals_cached_across_checks(self):
        a, b = bool_var("asm2_a"), bool_var("asm2_b")
        s = Solver()
        s.add(or_(a, b))
        guard = and_(a, not_(b))
        assert s.check([guard]) is SAT
        clauses_after_first = len(s._cnf.clauses)
        lit = s._assumption_lit_cache[guard.tid]
        assert s.check([guard]) is SAT
        # Second use of the same assumption term re-uses the literal and
        # emits no further clauses.
        assert s._assumption_lit_cache[guard.tid] == lit
        assert len(s._cnf.clauses) == clauses_after_first

    def test_model_from_assumption_check_is_consistent(self):
        x = bv_var("asm_x", 8)
        y = bv_var("asm_y", 8)
        s = Solver()
        s.add(eq(y, bv_val(7, 8)))
        assumption = ule(x, y)
        assert s.check([assumption]) is SAT
        env = s.model().env()
        assert evaluate(assumption, env) is True
        assert evaluate(eq(y, bv_val(7, 8)), env) is True
        # Conflicting assumption on the next call, then drop it again.
        assert s.check([not_(ule(x, y)), ule(x, bv_val(3, 8))]) is UNSAT
        assert s.check() is SAT

    def test_opposite_polarity_assumptions_across_checks(self):
        a, b = bool_var("asm3_a"), bool_var("asm3_b")
        s = Solver()
        s.add(or_(a, b))
        term = and_(a, b)
        assert s.check([term]) is SAT
        env = s.model().env()
        assert env["asm3_a"] is True and env["asm3_b"] is True
        assert s.check([not_(term), not_(b)]) is SAT
        env = s.model().env()
        assert env["asm3_a"] is True
        assert env.get("asm3_b", False) is False


class TestUnknownTruthiness:
    def test_bool_unknown_raises(self):
        with pytest.raises(TypeError):
            bool(UNKNOWN)

    def test_bool_sat_unsat_still_work(self):
        assert bool(SAT) is True
        assert bool(UNSAT) is False

    def test_budget_exhausted_check_cannot_be_used_as_truth(self):
        import itertools
        # A small pigeonhole-flavored instance with a 1-conflict budget.
        holes = [[bool_var(f"ph_{p}_{h}") for h in range(3)]
                 for p in range(4)]
        s = Solver(conflict_budget=1)
        for pigeon in holes:
            s.add(or_(*pigeon))
        for h in range(3):
            for p1, p2 in itertools.combinations(range(4), 2):
                s.add(or_(not_(holes[p1][h]), not_(holes[p2][h])))
        outcome = s.check()
        assert outcome is UNKNOWN
        with pytest.raises(TypeError):
            bool(outcome)
