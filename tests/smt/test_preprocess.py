"""CNF preprocessing: the correctness contract with incremental solving.

Covers the frozen-variable protocol (assumptions over frozen vars keep
working across repeated ``solve()`` calls with clauses added between),
``model_value()`` on eliminated and pure-erased variables (answered by
the reconstruction stack), UNSAT-under-assumptions after elimination,
and randomized differentials against a non-preprocessing twin — over
generated CNF and over real (small fat-tree / OSPF fixture) queries."""

import random

from repro.core import EncoderOptions, Verifier, properties as P
from repro.gen import build_fattree
from repro.smt import SAT, Solver, UNSAT, bool_var
from repro.smt.sat.preprocess import PreprocessConfig
from repro.smt.sat.solver import SatSolver
from repro.smt.terms import and_, not_, or_

from tests.core.test_verifier import diamond, ospf_chain


def _satisfies(solver: SatSolver, clause) -> bool:
    return any(solver.model_value(abs(lit)) == (lit > 0)
               for lit in clause)


def _random_cnf(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        lits = rng.sample(range(1, num_vars + 1), width)
        clauses.append([lit if rng.random() < 0.5 else -lit
                        for lit in lits])
    return clauses


class TestFrozenProtocol:
    def test_assumptions_over_frozen_vars_across_solves(self):
        """Frozen assumption vars survive elimination; clauses added
        between solves extend the simplified instance soundly."""
        solver = SatSolver()
        solver.preprocess_enabled = True
        for a, b in zip(range(1, 6), range(2, 7)):
            solver.add_clause([-a, b])       # chain v1 -> ... -> v6
        solver.freeze(1)
        solver.freeze(6)
        assert solver.simplify(force=True)
        stats = solver.stats()
        assert stats["pp_runs"] == 1
        assert stats["pp_eliminated_vars"] > 0
        # _eliminated holds internal (dimacs - 1) indices.
        assert 0 not in solver._eliminated
        assert 5 not in solver._eliminated

        assert solver.solve([1]) is True
        assert solver.model_value(6) is True   # chain propagated
        # Grow the instance between solves: v6 -> v7.
        solver.add_clause([-6, 7])
        assert solver.solve([1]) is True
        assert solver.model_value(7) is True
        assert solver.solve([-6]) is True
        assert solver.model_value(1) is False

    def test_unsat_under_assumptions_after_elimination(self):
        solver = SatSolver()
        solver.preprocess_enabled = True
        for a, b in zip(range(1, 8), range(2, 9)):
            solver.add_clause([-a, b])
        solver.freeze(1)
        solver.freeze(8)
        assert solver.simplify(force=True)
        assert solver.solve([1, -8]) is False  # chain forces v8
        # The solver stays usable after the assumption conflict.
        assert solver.solve([1]) is True
        assert solver.solve([-8]) is True

    def test_assuming_an_eliminated_var_restores_it(self):
        solver = SatSolver()
        solver.preprocess_enabled = True
        # A cycle, so no variable is pure and BVE does the removing.
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, 1])
        assert solver.simplify(force=True)
        assert solver.stats()["pp_eliminated_vars"] > 0
        # No freeze: v2 was eliminated, yet assuming it must work.
        assert solver.solve([2]) is True
        assert solver.model_value(3) is True
        assert solver.stats()["pp_restored_vars"] > 0


class TestReconstructedModels:
    def test_model_value_on_eliminated_and_pure_vars(self):
        solver = SatSolver()
        solver.preprocess_enabled = True
        clauses = [[1, 2], [-2, 3], [3, 4], [-4, -1],
                   [5, 1], [5, 2]]          # v5 occurs only positively
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.simplify(force=True)
        stats = solver.stats()
        assert stats["pp_eliminated_vars"] + stats["pp_pure_literals"] > 0
        assert solver.solve() is True
        for clause in clauses:
            assert _satisfies(solver, clause), clause

    def test_restore_then_reeliminate_uses_newest_entry(self):
        """``_restore`` leaves a variable's old reconstruction entries
        on the stack; after the variable comes back via ``add_clause``
        and a later simplify re-eliminates it, model extension must
        answer from the newest entry.  Regression: the stale older
        entry was replayed last and overwrote the correct value,
        yielding a model that violated asserted clauses."""
        solver = SatSolver()
        solver.preprocess_enabled = True
        solver.add_clause([1, 2])
        assert solver.simplify(force=True)   # pure-eliminates v1
        assert 0 in solver._eliminated
        solver.add_clause([1, 4])            # restores v1
        assert 0 not in solver._eliminated
        solver.add_clause([2])
        assert solver.simplify(force=True)   # re-eliminates v1
        assert 0 in solver._eliminated
        solver.add_clause([-4])
        assert solver.solve() is True
        # (1 v 4) with v4 forced False leaves only v1 to satisfy it.
        assert solver.model_value(4) is False
        assert solver.model_value(1) is True
        for clause in ([1, 2], [1, 4], [2], [-4]):
            assert _satisfies(solver, clause), clause

    def test_model_survives_clause_adds_after_sat(self):
        """The model snapshot answers for the *last* SAT solve even
        if later add_clause calls restore eliminated variables."""
        solver = SatSolver()
        solver.preprocess_enabled = True
        clauses = [[1, 2], [-1, 3], [-2, 3]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.simplify(force=True)
        assert solver.solve() is True
        values = {v: solver.model_value(v) for v in (1, 2, 3)}
        solver.add_clause([3, 1])            # may trigger restores
        assert values == {v: solver.model_value(v) for v in (1, 2, 3)}


class TestRandomizedDifferential:
    def test_forced_simplify_matches_twin(self):
        rng = random.Random(20260805)
        for trial in range(60):
            num_vars = rng.randint(6, 14)
            clauses = _random_cnf(rng, num_vars, rng.randint(10, 50))
            frozen = rng.sample(range(1, num_vars + 1),
                                rng.randint(0, 3))
            pp, twin = SatSolver(), SatSolver()
            pp.preprocess_enabled = True
            for clause in clauses:
                pp.add_clause(clause)
                twin.add_clause(clause)
            for var in frozen:
                pp.freeze(var)
            pp.simplify(force=True)
            verdict = pp.solve()
            assert verdict == twin.solve(), (trial, clauses)
            if verdict:
                for clause in clauses:
                    assert _satisfies(pp, clause), (trial, clause)

    def test_incremental_phases_match_twin(self):
        rng = random.Random(77)
        for trial in range(30):
            num_vars = rng.randint(8, 12)
            pp, twin = SatSolver(), SatSolver()
            pp.preprocess_enabled = True
            for phase in range(3):
                for clause in _random_cnf(rng, num_vars,
                                          rng.randint(8, 20)):
                    pp.add_clause(clause)
                    twin.add_clause(clause)
                if phase == 0:
                    pp.simplify(force=True)
                assumed = [var if rng.random() < 0.5 else -var
                           for var in rng.sample(range(1, num_vars + 1),
                                                 rng.randint(0, 2))]
                assert pp.solve(assumed) == twin.solve(assumed), \
                    (trial, phase)

    def test_facade_terms_differential(self):
        """Random term-level instances: same verdict, and the
        preprocessed model satisfies every asserted term."""
        rng = random.Random(11)
        for trial in range(25):
            num_vars = rng.randint(5, 9)
            names = [bool_var(f"b{i}") for i in range(num_vars)]
            terms = []
            for _ in range(rng.randint(6, 18)):
                lits = [name if rng.random() < 0.5 else not_(name)
                        for name in rng.sample(names, rng.randint(1, 3))]
                terms.append(or_(*lits))
            if rng.random() < 0.5:
                terms.append(and_(*rng.sample(names, 2)))
            pp = Solver(preprocess=True)
            twin = Solver(preprocess=False)
            pp.add(*terms)
            twin.add(*terms)
            pp.run_preprocess()              # force the gated pipeline
            verdict = pp.check()
            assert verdict is twin.check(), trial
            if verdict is SAT:
                model = pp.model()
                for term in terms:
                    assert model.eval(term) is True, (trial, term)
            else:
                assert verdict is UNSAT


class TestNetworkDifferential:
    def _verify_both(self, network, prop):
        on = Verifier(network,
                      options=EncoderOptions(preprocess=True))
        off = Verifier(network,
                       options=EncoderOptions(preprocess=False))
        return on.verify(prop), off.verify(prop)

    def test_ospf_chain_queries(self):
        builder, _ = ospf_chain(4)
        network = builder.build()
        for prop in (P.Reachability(sources="all",
                                    dest_prefix_text="10.9.0.0/24"),
                     P.Reachability(sources=["R1"],
                                    dest_prefix_text="172.20.0.0/16")):
            on, off = self._verify_both(network, prop)
            assert on.holds == off.holds

    def test_diamond_queries(self):
        network = diamond().build()
        for prop in (P.Reachability(sources="all",
                                    dest_prefix_text="10.9.0.0/24"),
                     P.NoForwardingLoops()):
            on, off = self._verify_both(network, prop)
            assert on.holds == off.holds

    def test_cloud_network_queries(self):
        """A generated cloud network — index 0 carries a seeded
        management-hijack, so one verdict is a genuine violation."""
        from repro.gen.cloud import build_cloud_network

        cloud = build_cloud_network(0)
        for prefix in cloud.management_prefixes[:2]:
            prop = P.Reachability(sources="all",
                                  dest_prefix_text=prefix)
            on, off = self._verify_both(cloud.network, prop)
            assert on.holds == off.holds

    def test_fattree_query_exercises_pipeline(self):
        """At 2 pods the encoding clears the min-clause gate, so the
        preprocessed run actually simplifies — and must agree."""
        tree = build_fattree(2)
        prop = P.Reachability(
            sources="all",
            dest_prefix_text=tree.tor_subnet(tree.tors[0]))
        on, off = self._verify_both(tree.network, prop)
        assert on.holds is True and off.holds is True


class TestConfigKnobs:
    def test_techniques_can_be_disabled(self):
        config = PreprocessConfig(subsumption=False,
                                  self_subsumption=False,
                                  pure_literals=False,
                                  var_elimination=False)
        solver = SatSolver()
        solver.preprocess_enabled = True
        solver.preprocess_config = config
        clauses = [[1, 2], [1, 2, 3], [4, 1], [-4, 2]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.simplify(force=True)
        stats = solver.stats()
        assert stats["pp_runs"] == 1
        assert stats["pp_subsumed"] == 0
        assert stats["pp_eliminated_vars"] == 0
        assert stats["pp_pure_literals"] == 0
        assert solver.solve() is True

    def test_gate_skips_small_instances(self):
        solver = SatSolver()
        solver.preprocess_enabled = True
        solver.add_clause([1, 2])
        assert solver.simplify() is True     # gated: no run recorded
        assert solver.stats()["pp_runs"] == 0
