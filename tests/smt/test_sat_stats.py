"""CDCL stats surface: the stats() snapshot, monotonicity across
checks, and the periodic progress hook behind budget diagnostics."""

import itertools
import random

from repro.smt import SAT, Solver, UNKNOWN, UNSAT, bv_val, bv_var, eq
from repro.smt.sat.solver import SatSolver

STAT_KEYS = {"conflicts", "decisions", "propagations", "restarts",
             "learned", "learned_deleted",
             # Preprocessing surface (see smt/sat/preprocess.py).
             "live_clauses", "eliminated", "pp_runs", "pp_units",
             "pp_pure_literals", "pp_subsumed", "pp_strengthened",
             "pp_eliminated_vars", "pp_resolvents", "pp_removed_clauses",
             "pp_restored_vars", "inprocess_runs", "inprocess_removed"}


def _pigeonhole(solver: SatSolver, n: int) -> None:
    def var(i, j):
        return i * n + j + 1

    for i in range(n + 1):
        solver.add_clause([var(i, j) for j in range(n)])
    for j in range(n):
        for a, b in itertools.combinations(range(n + 1), 2):
            solver.add_clause([-var(a, j), -var(b, j)])


def test_stats_keys_and_initial_zero():
    solver = SatSolver()
    stats = solver.stats()
    assert set(stats) == STAT_KEYS
    assert all(v == 0 for v in stats.values())


def test_stats_monotone_across_checks():
    """Cumulative counters never decrease over repeated solves."""
    rng = random.Random(7)
    n = 60
    solver = SatSolver()
    previous = solver.stats()
    for round_ in range(3):
        for _ in range(40):
            lits = rng.sample(range(1, n + 1), 3)
            solver.add_clause([lit if rng.random() < 0.5 else -lit
                               for lit in lits])
        assert solver.solve() in (True, False)
        current = solver.stats()
        for key in ("conflicts", "decisions", "propagations",
                    "restarts", "learned_deleted"):
            assert current[key] >= previous[key], key
        previous = current


def test_deletion_and_restart_counts_surface():
    solver = SatSolver()
    _pigeonhole(solver, 7)
    assert solver.solve() is False
    stats = solver.stats()
    assert stats["conflicts"] > 100
    assert stats["learned"] >= 0
    assert stats["learned_deleted"] >= 0


def test_progress_hook_fires_and_snapshots_grow():
    solver = SatSolver()
    _pigeonhole(solver, 7)
    samples = []
    solver.progress_interval = 50
    solver.progress_hook = samples.append
    assert solver.solve() is False
    assert len(samples) >= 2
    for sample in samples:
        assert set(sample) == STAT_KEYS
    conflicts = [s["conflicts"] for s in samples]
    assert conflicts == sorted(conflicts)
    assert all(c % 50 == 0 for c in conflicts)


def test_facade_stats_expose_sat_counters():
    solver = Solver()
    x = bv_var("x", 8)
    solver.add(eq(x, bv_val(3, 8)))
    assert solver.check() is SAT
    stats = solver.stats
    assert stats["vars"] > 0 and stats["clauses"] > 0
    assert STAT_KEYS <= set(stats)


def test_facade_progress_feeds_budget_diagnostics():
    from repro.smt.terms import and_, bool_var, not_, or_

    solver = Solver(conflict_budget=60, progress_interval=25)
    # Pigeonhole via the term language: 5 pigeons, 4 holes.
    holes = 4
    bits = [[bool_var(f"p{i}_{j}") for j in range(holes)]
            for i in range(holes + 1)]
    for row in bits:
        solver.add(or_(*row))
    for j in range(holes):
        for a in range(holes + 1):
            for b in range(a + 1, holes + 1):
                solver.add(not_(and_(bits[a][j], bits[b][j])))
    outcome = solver.check()
    if outcome is UNKNOWN:
        assert solver.last_check_progress, "samples collected"
        last = solver.last_check_progress[-1]
        assert last["budget_left"] >= 0
    else:
        assert outcome is UNSAT


def test_progress_interval_zero_disables_sampling():
    solver = SatSolver()
    _pigeonhole(solver, 6)
    fired = []
    solver.progress_interval = 0
    solver.progress_hook = fired.append
    assert solver.solve() is False
    assert fired == []


def test_stats_monotone_across_simplify_solve_cycles():
    """Interleaved simplify()/solve() cycles must keep every cumulative
    counter monotone — in particular learned_deleted, which also absorbs
    learnt clauses dropped by preprocessing and root simplification, not
    just DB reduction."""
    rng = random.Random(13)
    n = 80
    solver = SatSolver()
    solver.preprocess_enabled = True
    cumulative = ("conflicts", "decisions", "propagations", "restarts",
                  "learned_deleted", "pp_runs", "pp_units",
                  "pp_pure_literals", "pp_subsumed", "pp_strengthened",
                  "pp_eliminated_vars", "pp_resolvents",
                  "pp_removed_clauses", "pp_restored_vars",
                  "inprocess_runs", "inprocess_removed")
    previous = solver.stats()
    cycles_run = 0
    for cycle in range(4):
        for _ in range(120):
            lits = rng.sample(range(1, n + 1), 3)
            solver.add_clause([lit if rng.random() < 0.5 else -lit
                               for lit in lits])
        still_sat = solver.simplify(force=True)
        mid = solver.stats()
        for key in cumulative:
            assert mid[key] >= previous[key], f"{key} shrank in simplify"
        outcome = solver.solve()
        assert outcome in (True, False)
        current = solver.stats()
        for key in cumulative:
            assert current[key] >= mid[key], f"{key} shrank in solve"
        previous = current
        cycles_run += 1
        if not still_sat or not outcome:
            break  # formula went UNSAT; counters stay frozen from here
    assert cycles_run >= 2, "formula went UNSAT too early to exercise cycles"


def test_learned_deleted_counts_preprocess_drops():
    """A learnt clause discarded because preprocessing eliminated one of
    its variables must show up in learned_deleted."""
    rng = random.Random(5)
    n = 60
    solver = SatSolver()
    solver.preprocess_enabled = True
    for _ in range(240):
        lits = rng.sample(range(1, n + 1), 3)
        solver.add_clause([lit if rng.random() < 0.5 else -lit
                           for lit in lits])
    # Accumulate learnts without preprocessing having run yet.
    first = solver.solve(conflict_budget=400)
    stats_before = solver.stats()
    if first is not None and stats_before["learned"] > 0:
        solver.simplify(force=True)
        stats_after = solver.stats()
        dropped = stats_before["learned"] - stats_after["learned"]
        assert (stats_after["learned_deleted"]
                >= stats_before["learned_deleted"] + max(0, dropped) - 0)
        assert (stats_after["learned_deleted"]
                >= stats_before["learned_deleted"])
