"""Property-based tests for the sequential-counter cardinality encodings."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import (
    at_least_k,
    at_most_k,
    bool_var,
    evaluate,
    exactly_k,
)


@settings(max_examples=200, deadline=None)
@given(values=st.lists(st.booleans(), min_size=0, max_size=9),
       k=st.integers(-1, 10))
def test_cardinality_matches_popcount(values, k):
    names = [f"cp_{i}" for i in range(len(values))]
    bits = [bool_var(n) for n in names]
    env = dict(zip(names, values))
    count = sum(values)
    assert evaluate(at_most_k(bits, k), env) is (count <= k)
    assert evaluate(at_least_k(bits, k), env) is (count >= k)
    assert evaluate(exactly_k(bits, k), env) is (count == k)


def test_duplicate_bits_count_twice():
    """Cardinality counts term occurrences, not distinct variables — the
    caller must deduplicate (regression for the parallel-link failure-bit
    bug, where one shared bit listed twice could never be set under
    at-most-1)."""
    from repro.smt import Solver, SAT, UNSAT, at_most_k, bool_var

    bit = bool_var("dup_bit")
    solver = Solver()
    solver.add(at_most_k([bit, bit], 1), bit)
    assert solver.check() is UNSAT
    solver2 = Solver()
    solver2.add(at_most_k([bit, bit], 2), bit)
    assert solver2.check() is SAT
