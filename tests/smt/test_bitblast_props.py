"""Property-based tests: the CNF pipeline agrees with direct evaluation.

Strategy: generate random terms over a small pool of variables, pick a random
concrete assignment, assert that the term's evaluator value can be realized
by the solver (force each variable to its concrete value, then check the term
evaluates consistently through SAT), and dually that asserting the term
produces models under which the evaluator says True.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import (
    SAT,
    Solver,
    UNSAT,
    and_,
    bit,
    bool_var,
    bv_add,
    bv_ite,
    bv_val,
    bv_var,
    eq,
    evaluate,
    iff,
    ite,
    not_,
    or_,
    ule,
    ult,
)

WIDTH = 6
BOOL_NAMES = ["pb_a", "pb_b", "pb_c"]
BV_NAMES = ["pb_x", "pb_y", "pb_z"]


def bool_leaves():
    return st.sampled_from(
        [bool_var(n) for n in BOOL_NAMES]
    )


def bv_terms(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([bv_var(n, WIDTH) for n in BV_NAMES]),
            st.integers(0, (1 << WIDTH) - 1).map(
                lambda v: bv_val(v, WIDTH)),
        )
    sub = bv_terms(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, sub).map(lambda t: bv_add(*t)),
        st.tuples(bool_terms(depth - 1), sub, sub).map(
            lambda t: bv_ite(*t)),
    )


def bool_terms(depth):
    if depth == 0:
        return st.one_of(bool_leaves(),
                         st.just(bool_var("pb_a")))
    sub = bool_terms(depth - 1)
    bvsub = bv_terms(depth - 1)
    return st.one_of(
        sub,
        sub.map(not_),
        st.tuples(sub, sub).map(lambda t: and_(*t)),
        st.tuples(sub, sub).map(lambda t: or_(*t)),
        st.tuples(sub, sub).map(lambda t: iff(*t)),
        st.tuples(sub, sub, sub).map(lambda t: ite(*t)),
        st.tuples(bvsub, bvsub).map(lambda t: eq(*t)),
        st.tuples(bvsub, bvsub).map(lambda t: ule(*t)),
        st.tuples(bvsub, bvsub).map(lambda t: ult(*t)),
        st.tuples(bvsub, st.integers(0, WIDTH - 1)).map(
            lambda t: bit(*t)),
    )


def env_strategy():
    return st.fixed_dictionaries({
        **{n: st.booleans() for n in BOOL_NAMES},
        **{n: st.integers(0, (1 << WIDTH) - 1) for n in BV_NAMES},
    })


def pin_env(solver, env):
    for name in BOOL_NAMES:
        v = bool_var(name)
        solver.add(v if env[name] else not_(v))
    for name in BV_NAMES:
        solver.add(eq(bv_var(name, WIDTH), bv_val(env[name], WIDTH)))


@settings(max_examples=120, deadline=None)
@given(term=bool_terms(3), env=env_strategy())
def test_pinned_solver_agrees_with_evaluator(term, env):
    expected = evaluate(term, env)
    s = Solver()
    pin_env(s, env)
    s.add(term if expected else not_(term))
    assert s.check() is SAT
    # And the opposite polarity must be impossible under the same pins.
    s2 = Solver()
    pin_env(s2, env)
    s2.add(not_(term) if expected else term)
    assert s2.check() is UNSAT


@settings(max_examples=80, deadline=None)
@given(term=bool_terms(3))
def test_models_satisfy_asserted_terms(term):
    s = Solver()
    s.add(term)
    result = s.check()
    if result is SAT:
        env = s.model().env()
        assert evaluate(term, env) is True
    else:
        # UNSAT claims no assignment works; spot-check the all-zero env.
        assert evaluate(term, {}) is False


@settings(max_examples=80, deadline=None)
@given(a=st.integers(0, (1 << WIDTH) - 1),
       b=st.integers(0, (1 << WIDTH) - 1))
def test_addition_semantics_exact(a, b):
    x, y = bv_var("pb_x", WIDTH), bv_var("pb_y", WIDTH)
    total = (a + b) % (1 << WIDTH)
    s = Solver()
    s.add(eq(x, bv_val(a, WIDTH)), eq(y, bv_val(b, WIDTH)),
          eq(bv_add(x, y), bv_val(total, WIDTH)))
    assert s.check() is SAT
    s2 = Solver()
    s2.add(eq(x, bv_val(a, WIDTH)), eq(y, bv_val(b, WIDTH)),
           not_(eq(bv_add(x, y), bv_val(total, WIDTH))))
    assert s2.check() is UNSAT


@settings(max_examples=80, deadline=None)
@given(a=st.integers(0, (1 << WIDTH) - 1),
       b=st.integers(0, (1 << WIDTH) - 1))
def test_comparison_semantics_exact(a, b):
    x, y = bv_var("pb_x", WIDTH), bv_var("pb_y", WIDTH)
    s = Solver()
    s.add(eq(x, bv_val(a, WIDTH)), eq(y, bv_val(b, WIDTH)))
    assert s.check([ule(x, y)]) is (SAT if a <= b else UNSAT)
    assert s.check([ult(x, y)]) is (SAT if a < b else UNSAT)
