"""Solver-vs-brute-force equivalence on random small formulas.

Stronger than the pinned-evaluator properties: asserts the *decision*
(SAT/UNSAT) matches exhaustive enumeration, exercising conflict analysis
and learning on genuinely unsatisfiable instances.
"""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import (
    SAT,
    Solver,
    UNSAT,
    and_,
    bool_var,
    bv_val,
    bv_var,
    eq,
    evaluate,
    iff,
    ite,
    not_,
    or_,
    ule,
)

NAMES = ["bf_a", "bf_b", "bf_c", "bf_d"]
BV_NAME = "bf_x"
WIDTH = 3


def term_strategy(depth):
    leaves = st.sampled_from([bool_var(n) for n in NAMES])
    if depth == 0:
        return leaves
    sub = term_strategy(depth - 1)
    bv = st.one_of(
        st.just(bv_var(BV_NAME, WIDTH)),
        st.integers(0, 7).map(lambda v: bv_val(v, WIDTH)),
    )
    return st.one_of(
        leaves,
        sub.map(not_),
        st.tuples(sub, sub).map(lambda t: and_(*t)),
        st.tuples(sub, sub).map(lambda t: or_(*t)),
        st.tuples(sub, sub).map(lambda t: iff(*t)),
        st.tuples(sub, sub, sub).map(lambda t: ite(*t)),
        st.tuples(bv, bv).map(lambda t: eq(*t)),
        st.tuples(bv, bv).map(lambda t: ule(*t)),
    )


def brute_force_satisfiable(terms) -> bool:
    for bools in itertools.product([False, True], repeat=len(NAMES)):
        for x in range(1 << WIDTH):
            env = dict(zip(NAMES, bools))
            env[BV_NAME] = x
            if all(evaluate(t, env) for t in terms):
                return True
    return False


@settings(max_examples=60, deadline=None)
@given(terms=st.lists(term_strategy(2), min_size=1, max_size=6))
def test_solver_decision_matches_bruteforce(terms):
    solver = Solver()
    solver.add(*terms)
    expected = brute_force_satisfiable(terms)
    outcome = solver.check()
    assert (outcome is SAT) == expected
    if outcome is SAT:
        env = solver.model().env()
        assert all(evaluate(t, env) for t in terms)


@settings(max_examples=40, deadline=None)
@given(terms=st.lists(term_strategy(2), min_size=1, max_size=4),
       extra=term_strategy(2))
def test_assumption_equals_assertion(terms, extra):
    """check(assumptions=[t]) must agree with a fresh solver asserting t."""
    base = Solver()
    base.add(*terms)
    assumed = base.check([extra])
    fresh = Solver()
    fresh.add(*terms)
    fresh.add(extra)
    asserted = fresh.check()
    assert assumed is asserted
    # And the assumption must not have stuck.
    assert base.check() is (SAT if brute_force_satisfiable(terms)
                            else UNSAT)
