"""Writer-specific tests (round-trips live in test_roundtrip.py)."""

from repro.lang import parse_config, write_config
from repro.net import (
    AclRule,
    DeviceConfig,
    Interface,
    NetworkBuilder,
    PrefixListEntry,
)
from repro.net import ip as iplib
from repro.net.policy import Acl


class TestWriterOutput:
    def test_minimal_device(self):
        text = write_config(DeviceConfig(hostname="lonely"))
        assert text.startswith("hostname lonely\n")
        assert text.endswith("\n")

    def test_interface_block_shape(self):
        dev = DeviceConfig(hostname="x")
        dev.interfaces["e0"] = Interface(name="e0",
                                         address=iplib.parse_ip("10.0.0.1"),
                                         prefix_length=30, ospf_cost=7,
                                         acl_in="GUARD", is_management=True)
        text = write_config(dev)
        assert "interface e0" in text
        assert " ip address 10.0.0.1 255.255.255.252" in text
        assert " ip ospf cost 7" in text
        assert " ip access-group GUARD in" in text
        assert " description management" in text

    def test_acl_any_forms(self):
        dev = DeviceConfig(hostname="x")
        dev.acls["A"] = Acl("A", (
            AclRule("permit"),
            AclRule("deny", dst_network=iplib.parse_ip("10.0.0.0"),
                    dst_length=8, protocol=6, dst_port_low=80,
                    dst_port_high=90),
        ))
        text = write_config(dev)
        assert " permit ip any any" in text
        assert " deny tcp any 10.0.0.0 0.255.255.255 range 80 90" in text

    def test_prefix_list_seq_numbers_increment(self):
        dev = DeviceConfig(hostname="x")
        from repro.net.policy import PrefixList
        dev.prefix_lists["L"] = PrefixList("L", (
            PrefixListEntry("permit", 0, 0, le=32),
            PrefixListEntry("deny", iplib.parse_ip("10.0.0.0"), 8),
        ))
        text = write_config(dev)
        assert "ip prefix-list L seq 5 permit 0.0.0.0/0 le 32" in text
        assert "ip prefix-list L seq 10 deny 10.0.0.0/8" in text

    def test_config_lines_metric_counts_meaningful_lines(self):
        builder = NetworkBuilder()
        builder.device("a").interface("e0", "10.0.0.1/24")
        net = builder.build()
        dev = net.device("a")
        reparsed = parse_config(write_config(dev))
        # The builder estimates lines via the writer; reparsing the same
        # text must agree on the count.
        assert reparsed.config_lines == dev.config_lines

    def test_generated_suite_members_are_parseable(self):
        from repro.gen import build_cloud_network, build_fattree

        for network in (build_cloud_network(7).network,
                        build_fattree(2).network):
            for name in network.router_names():
                text = write_config(network.device(name))
                reparsed = parse_config(text)
                assert reparsed.hostname == name
                # Re-serializing must be a fixpoint.
                assert write_config(reparsed) == text
