"""Round-trip property: parse(write(config)) reproduces the model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import parse_config, write_config
from repro.net import (
    AclRule,
    DeviceConfig,
    NetworkBuilder,
    PrefixListEntry,
    RouteMapClause,
)
from repro.net import ip as iplib


def _without_spans(obj) -> dict:
    """``vars()`` minus source-span provenance fields (line numbers)."""
    return {k: v for k, v in vars(obj).items()
            if k != "line" and not k.endswith("_line")}


def assert_configs_equivalent(a: DeviceConfig, b: DeviceConfig) -> None:
    assert a.hostname == b.hostname
    assert set(a.interfaces) == set(b.interfaces)
    for name, ia in a.interfaces.items():
        ib = b.interfaces[name]
        assert (ia.address, ia.prefix_length, ia.ospf_cost, ia.acl_in,
                ia.acl_out, ia.is_management, ia.shutdown) == \
               (ib.address, ib.prefix_length, ib.ospf_cost, ib.acl_in,
                ib.acl_out, ib.is_management, ib.shutdown)
    assert a.acls == b.acls
    assert a.prefix_lists == b.prefix_lists
    assert a.community_lists == b.community_lists
    assert a.route_maps == b.route_maps
    assert (a.bgp is None) == (b.bgp is None)
    if a.bgp:
        assert a.bgp.asn == b.bgp.asn
        assert a.bgp.networks == b.bgp.networks
        assert a.bgp.aggregates == b.bgp.aggregates
        assert a.bgp.redistribute == b.bgp.redistribute
        assert a.bgp.multipath == b.bgp.multipath
        assert a.bgp.med_mode == b.bgp.med_mode
        assert [_without_spans(n) for n in a.bgp.neighbors] == \
               [_without_spans(n) for n in b.bgp.neighbors]
    assert (a.ospf is None) == (b.ospf is None)
    if a.ospf:
        assert a.ospf.networks == b.ospf.networks
        assert a.ospf.redistribute == b.ospf.redistribute
        assert a.ospf.multipath == b.ospf.multipath
    assert [_without_spans(s) for s in a.static_routes] == \
           [_without_spans(s) for s in b.static_routes]


def test_roundtrip_handbuilt_network():
    builder = NetworkBuilder()
    r1 = builder.device("R1")
    r1.enable_bgp(65001, multipath=True)
    r1.enable_ospf(multipath=True)
    builder.link("R1", "R2")
    builder.device("R2").enable_bgp(65001)
    builder.ibgp_session("R1", "R2")
    builder.external_peer("R1", asn=65002, name="N1")
    r1.bgp_network("192.168.1.0/24")
    r1.ospf_network("10.128.0.0/16")
    r1.redistribute("bgp", "ospf", metric=5)
    r1.redistribute("ospf", "bgp", metric=20)
    r1.static_route("172.16.0.0/16", drop=True)
    r1.prefix_list("PL", [
        PrefixListEntry("deny", iplib.parse_ip("192.168.0.0"), 16, le=32),
        PrefixListEntry("permit", 0, 0, le=32),
    ])
    r1.route_map("IMP", [
        RouteMapClause(seq=10, action="permit", match_prefix_list="PL",
                       set_local_pref=120,
                       add_communities=("65001:1",)),
        RouteMapClause(seq=20, action="deny"),
    ])
    r1.acl("BLK", [
        AclRule("deny", dst_network=iplib.parse_ip("172.10.1.0"),
                dst_length=24),
        AclRule("permit"),
    ])
    r1.community_list("CL", ["65001:1"])
    net = builder.build()
    for name in net.router_names():
        original = net.device(name)
        reparsed = parse_config(write_config(original))
        assert_configs_equivalent(original, reparsed)


interface_strategy = st.builds(
    dict,
    address=st.integers(1, iplib.MAX_IP - 1),
    prefix_length=st.integers(8, 32),
    ospf_cost=st.integers(1, 100),
    management=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(
    ifaces=st.lists(interface_strategy, min_size=1, max_size=4),
    asn=st.integers(1, 65535),
    statics=st.lists(
        st.tuples(st.integers(0, iplib.MAX_IP), st.integers(8, 30),
                  st.booleans()),
        max_size=3),
)
def test_roundtrip_random_devices(ifaces, asn, statics):
    builder = NetworkBuilder()
    dev = builder.device("RT")
    for i, spec in enumerate(ifaces):
        dev.interface(
            f"eth{i}",
            f"{iplib.format_ip(spec['address'])}/{spec['prefix_length']}",
            ospf_cost=spec["ospf_cost"],
            management=spec["management"],
        )
    dev.enable_bgp(asn)
    for net_addr, length, drop in statics:
        prefix = iplib.format_prefix(iplib.network_of(net_addr, length),
                                     length)
        dev.static_route(prefix, drop=True) if drop else dev.static_route(
            prefix, interface="eth0")
    original = builder.build().device("RT")
    reparsed = parse_config(write_config(original))
    assert_configs_equivalent(original, reparsed)
