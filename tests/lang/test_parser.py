"""Parser tests: full configs, individual stanzas, error reporting."""

import pytest

from repro.lang import ConfigSyntaxError, parse_config
from repro.net import ip as iplib

FULL_CONFIG = """\
hostname R1
!
interface Ethernet0
 ip address 10.0.1.1 255.255.255.0
 ip ospf cost 10
 ip access-group BLOCKIN in
!
interface Management0
 ip address 172.16.0.1 255.255.255.255
 description management interface
!
router ospf 1
 router-id 1.1.1.1
 maximum-paths 4
 redistribute bgp metric 20
 network 10.0.1.0 0.0.0.255 area 0
!
router bgp 65001
 bgp router-id 1.1.1.1
 bgp bestpath med same-as
 maximum-paths 8
 network 192.168.1.0 mask 255.255.255.0
 aggregate-address 192.168.0.0 255.255.0.0 summary-only
 redistribute ospf metric 5
 redistribute connected
 neighbor 10.0.1.2 remote-as 65002
 neighbor 10.0.1.2 description N1 upstream
 neighbor 10.0.1.2 route-map IMPORT in
 neighbor 10.0.1.2 route-map EXPORT out
 neighbor 10.0.1.3 remote-as 65001
 neighbor 10.0.1.3 route-reflector-client
!
ip route 172.16.0.0 255.255.0.0 10.0.1.2
ip route 172.17.0.0 255.255.0.0 Null0
ip route 172.18.0.0 255.255.0.0 Ethernet0
!
ip prefix-list PL seq 5 deny 192.168.0.0/16 le 32
ip prefix-list PL seq 10 permit 0.0.0.0/0 ge 8 le 24
!
ip community-list standard CL permit 65001:100 65001:200
!
ip access-list extended BLOCKIN
 deny ip any 172.10.1.0 0.0.0.255
 deny tcp 10.0.0.0 0.255.255.255 any eq 22
 permit udp any 10.9.0.0 0.0.255.255 range 5000 6000
 permit ip any any
!
access-list 7 deny ip 172.10.2.0 0.0.0.255
access-list 7 permit ip any any
!
route-map IMPORT permit 10
 match ip address prefix-list PL
 set local-preference 120
 set community 65001:300 additive
route-map IMPORT deny 20
!
route-map EXPORT permit 10
 match community CL
 set metric 50
 set med 7
 set comm-list-delete 65001:100
!
"""


@pytest.fixture(scope="module")
def config():
    return parse_config(FULL_CONFIG)


class TestFullConfig:
    def test_hostname_and_line_count(self, config):
        assert config.hostname == "R1"
        assert config.config_lines > 30

    def test_interfaces(self, config):
        eth0 = config.interfaces["Ethernet0"]
        assert eth0.address == iplib.parse_ip("10.0.1.1")
        assert eth0.prefix_length == 24
        assert eth0.ospf_cost == 10
        assert eth0.acl_in == "BLOCKIN"
        mgmt = config.interfaces["Management0"]
        assert mgmt.is_management
        assert mgmt.prefix_length == 32

    def test_ospf(self, config):
        ospf = config.ospf
        assert ospf.process_id == 1
        assert ospf.router_id == iplib.parse_ip("1.1.1.1")
        assert ospf.multipath
        assert ospf.redistribute == {"bgp": 20}
        assert ospf.networks == [(iplib.parse_ip("10.0.1.0"), 24, 0)]

    def test_bgp(self, config):
        bgp = config.bgp
        assert bgp.asn == 65001
        assert bgp.med_mode == "same-as"
        assert bgp.multipath
        assert bgp.networks == [(iplib.parse_ip("192.168.1.0"), 24)]
        assert bgp.aggregates == [(iplib.parse_ip("192.168.0.0"), 16)]
        assert bgp.redistribute == {"ospf": 5, "connected": 0}

    def test_bgp_neighbors(self, config):
        n1 = config.bgp.neighbor(iplib.parse_ip("10.0.1.2"))
        assert n1.remote_as == 65002
        assert n1.description == "N1 upstream"
        assert n1.route_map_in == "IMPORT"
        assert n1.route_map_out == "EXPORT"
        n2 = config.bgp.neighbor(iplib.parse_ip("10.0.1.3"))
        assert n2.remote_as == 65001
        assert n2.route_reflector_client
        assert config.bgp.is_internal(n2)

    def test_static_routes(self, config):
        statics = config.static_routes
        assert len(statics) == 3
        assert statics[0].next_hop_ip == iplib.parse_ip("10.0.1.2")
        assert statics[1].drop
        assert statics[2].interface == "Ethernet0"

    def test_prefix_list(self, config):
        plist = config.prefix_lists["PL"]
        assert len(plist.entries) == 2
        deny, permit = plist.entries
        assert deny.action == "deny"
        assert deny.length == 16 and deny.le == 32 and deny.ge is None
        assert permit.ge == 8 and permit.le == 24

    def test_community_list(self, config):
        clist = config.community_lists["CL"]
        assert clist.communities == ("65001:100", "65001:200")

    def test_extended_acl(self, config):
        acl = config.acls["BLOCKIN"]
        assert len(acl.rules) == 4
        r0, r1, r2, r3 = acl.rules
        assert r0.action == "deny"
        assert r0.dst_network == iplib.parse_ip("172.10.1.0")
        assert r0.dst_length == 24 and r0.src_network is None
        assert r1.protocol == 6
        assert r1.src_network == iplib.parse_ip("10.0.0.0")
        assert r1.src_length == 8
        assert r1.dst_port_low == 22
        assert r2.protocol == 17
        assert (r2.dst_port_low, r2.dst_port_high) == (5000, 6000)
        assert r3.dst_length == 0 and r3.src_network is None

    def test_numbered_acl_short_form_matches_destination(self, config):
        acl = config.acls["7"]
        assert acl.rules[0].dst_network == iplib.parse_ip("172.10.2.0")
        assert acl.rules[0].dst_length == 24
        assert not acl.permits(iplib.parse_ip("172.10.2.9"))
        assert acl.permits(iplib.parse_ip("8.8.8.8"))

    def test_route_maps(self, config):
        imp = config.route_maps["IMPORT"]
        assert [c.seq for c in imp.clauses] == [10, 20]
        c10 = imp.clauses[0]
        assert c10.match_prefix_list == "PL"
        assert c10.set_local_pref == 120
        assert c10.add_communities == ("65001:300",)
        assert imp.clauses[1].action == "deny"
        exp = config.route_maps["EXPORT"]
        assert exp.clauses[0].match_community_list == "CL"
        assert exp.clauses[0].set_metric == 50
        assert exp.clauses[0].set_med == 7
        assert exp.clauses[0].delete_communities == ("65001:100",)


class TestErrors:
    def test_unknown_top_command(self):
        with pytest.raises(ConfigSyntaxError) as err:
            parse_config("hostname X\nfrobnicate everything\n")
        assert err.value.lineno == 2

    def test_unknown_interface_subcommand(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("interface e0\n spanning-tree portfast\n")

    def test_neighbor_without_remote_as(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("router bgp 1\n neighbor 1.2.3.4 route-map M in\n")

    def test_bad_prefix_list_action(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("ip prefix-list P seq 5 allow 10.0.0.0/8\n")

    def test_bad_acl_protocol(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("ip access-list extended A\n permit gre any any\n")

    def test_standard_named_acl_unsupported(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("ip access-list standard A\n")

    def test_route_map_bad_action(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("route-map M allow 10\n")


class TestSmallStanzas:
    def test_bgp_network_short_form_defaults_to_24(self):
        cfg = parse_config("router bgp 1\n network 10.1.1.0\n")
        assert cfg.bgp.networks == [(iplib.parse_ip("10.1.1.0"), 24)]

    def test_comment_and_blank_lines_ignored(self):
        cfg = parse_config("! comment\n\nhostname X\n!\n")
        assert cfg.hostname == "X"
        assert cfg.config_lines == 1

    def test_shutdown_interface(self):
        cfg = parse_config("interface e0\n shutdown\n")
        assert cfg.interfaces["e0"].shutdown

    def test_reopening_router_bgp_keeps_state(self):
        cfg = parse_config(
            "router bgp 5\n neighbor 1.1.1.1 remote-as 6\n"
            "hostname Y\n"
            "router bgp 5\n neighbor 2.2.2.2 remote-as 7\n")
        assert len(cfg.bgp.neighbors) == 2
