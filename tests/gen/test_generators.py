"""Tests for the synthetic network generators."""

import pytest

from repro.gen import (
    SUITE_SIZE,
    build_cloud_network,
    build_fattree,
    fattree_router_count,
    random_scenario,
)
from repro.gen.cloud import _bug_flags
from repro.net import ip as iplib
from repro.sim import DataPlane, Packet, simulate


class TestFatTree:
    @pytest.mark.parametrize("pods,expected", [(2, 5), (4, 20), (6, 45),
                                               (10, 125), (14, 245),
                                               (18, 405)])
    def test_router_counts_match_paper(self, pods, expected):
        assert fattree_router_count(pods) == expected

    def test_structure(self):
        tree = build_fattree(4)
        assert len(tree.tors) == 8
        assert len(tree.aggs) == 8
        assert len(tree.cores) == 4
        assert len(tree.backbone_peers) == 4
        net = tree.network
        # Each ToR connects to every agg in its pod.
        tor_edges = {e.target for e in net.edges_from("tor_0_0")}
        assert tor_edges == {"agg_0_0", "agg_0_1"}

    def test_odd_pods_rejected(self):
        with pytest.raises(ValueError):
            build_fattree(3)
        with pytest.raises(ValueError):
            build_fattree(0)

    def test_all_tors_reach_each_other_in_simulation(self):
        tree = build_fattree(4)
        result = simulate(tree.network)
        assert result.converged
        dataplane = DataPlane(result)
        dst = Packet.to("10.2.1.9")  # tor_2_1's rack
        for tor in tree.tors:
            assert dataplane.reachable(tor, dst), tor

    def test_paths_are_at_most_four_hops(self):
        tree = build_fattree(4)
        dataplane = DataPlane(simulate(tree.network))
        dst = Packet.to("10.3.0.9")
        for tor in tree.tors:
            for trace in dataplane.traces(tor, dst):
                assert trace.delivered
                assert trace.hops <= 4

    def test_tor_subnet_lookup(self):
        tree = build_fattree(2)
        assert tree.tor_subnet("tor_1_0") == "10.1.0.0/24"
        assert tree.pod_of("agg_1_0") == 1


class TestCloudSuite:
    def test_bug_budget_matches_paper(self):
        hijacks = sum(1 for i in range(SUITE_SIZE) if _bug_flags(i)[0])
        drifts = sum(1 for i in range(SUITE_SIZE) if _bug_flags(i)[1])
        holes = sum(1 for i in range(SUITE_SIZE) if _bug_flags(i)[2])
        assert (hijacks, drifts, holes) == (67, 29, 24)
        assert hijacks + drifts + holes == 120

    def test_deterministic(self):
        a = build_cloud_network(17)
        b = build_cloud_network(17)
        assert a.network.router_names() == b.network.router_names()
        assert a.seeded_hijack == b.seeded_hijack
        assert a.network.total_config_lines() == \
            b.network.total_config_lines()

    def test_size_range(self):
        for index in (0, 40, 90, 140):
            net = build_cloud_network(index).network
            assert 2 <= len(net.devices) <= 25

    def test_bug_classes_have_required_structure(self):
        drift_net = build_cloud_network(70)
        assert drift_net.drift_pair is not None
        hole_net = build_cloud_network(100)
        assert hole_net.blackhole_router is not None
        clean = build_cloud_network(140)
        assert not (clean.seeded_hijack or clean.seeded_equiv_drift
                    or clean.seeded_blackhole)

    def test_networks_simulate_and_converge(self):
        for index in (0, 70, 100, 140):
            cloud = build_cloud_network(index)
            result = simulate(cloud.network)
            assert result.converged, cloud.name

    def test_configs_serialize_and_reparse(self):
        from repro.lang import parse_config, write_config

        cloud = build_cloud_network(3)
        for name in cloud.network.router_names():
            text = write_config(cloud.network.device(name))
            reparsed = parse_config(text)
            assert reparsed.hostname == name


class TestRandomScenarios:
    @pytest.mark.parametrize("seed", range(8))
    def test_scenarios_converge(self, seed):
        scenario = random_scenario(seed)
        result = simulate(scenario.network, scenario.environment)
        assert result.converged

    def test_probe_destinations_nonempty(self):
        scenario = random_scenario(3)
        assert scenario.probe_destinations
        for dst in scenario.probe_destinations:
            assert 0 <= dst <= iplib.MAX_IP

    def test_deterministic_by_seed(self):
        a = random_scenario(5)
        b = random_scenario(5)
        assert a.network.router_names() == b.network.router_names()
        assert a.environment == b.environment
