"""Encoder ↔ simulator agreement (the paper's §7 validation methodology).

With the symbolic environment pinned to a concrete one and the packet
destination fixed, the encoding's stable state must match the simulator's
fixpoint: the same per-router delivery verdicts and the same forwarding
edges.  Runs over hand-built scenarios and a seeded family of random
networks/environments.
"""

import pytest

from repro.core.concrete import pin_environment
from repro.core.encoder import EncoderOptions, NetworkEncoder
from repro.core.properties import reach_instrumentation
from repro.gen import random_scenario
from repro.net import ip as iplib
from repro.sim import DataPlane, Packet, simulate
from repro.smt import FALSE, SAT, Solver


def agreement_check(network, environment, dst_ip, options=None):
    """Assert encoder and simulator agree for one concrete scenario."""
    sim_result = simulate(network, environment)
    assert sim_result.converged, "simulator did not converge"
    dataplane = DataPlane(sim_result)

    encoder = NetworkEncoder(network, options or EncoderOptions())
    enc = encoder.encode()
    base = {r: enc.local_deliver.get(r, FALSE) for r in enc.routers()}
    reach = reach_instrumentation(enc, base, tag="agree")
    solver = Solver()
    solver.add(*enc.constraints)
    solver.add(*pin_environment(enc, environment, dst_ip))
    assert solver.check() is SAT, "no stable state under pinned environment"
    model = solver.model()

    packet = Packet(dst_ip=dst_ip)
    disagreements = []
    for router in network.router_names():
        sim_reaches = dataplane.reachable(router, packet)
        enc_reaches = model.eval(reach[router])
        if sim_reaches != enc_reaches:
            traces = dataplane.traces(router, packet)
            disagreements.append(
                (router, sim_reaches, enc_reaches,
                 [t.disposition for t in traces]))
    assert not disagreements, (
        f"dst={iplib.format_ip(dst_ip)} disagreements={disagreements}")
    return model, enc, dataplane


class TestHandBuiltAgreement:
    def test_ospf_triangle(self):
        from tests.sim.test_simulator import ospf_triangle
        from repro.sim import Environment

        network = ospf_triangle().build()
        for dst in ("10.1.0.9", "10.2.0.9", "10.3.0.9", "10.250.0.1"):
            agreement_check(network, Environment.empty(),
                            iplib.parse_ip(dst))

    def test_ospf_triangle_under_failure(self):
        from tests.sim.test_simulator import ospf_triangle
        from repro.sim import Environment

        network = ospf_triangle().build()
        env = Environment.of(failed_links=[("R1", "R3")])
        options = EncoderOptions(max_failures=1)
        agreement_check(network, env, iplib.parse_ip("10.1.0.9"),
                        options=options)

    def test_bgp_with_announcement(self):
        from repro.net import NetworkBuilder
        from repro.sim import Environment, ExternalAnnouncement

        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.device("R2").enable_bgp(65001)
        b.link("R1", "R2")
        b.ibgp_session("R1", "R2")
        b.external_peer("R1", asn=65100, name="N1")
        network = b.build()
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.8.0.0/16", path_length=2)])
        for dst in ("8.8.8.8", "9.9.9.9"):
            agreement_check(network, env, iplib.parse_ip(dst))

    def test_paper_figure2_scenarios(self):
        """The §2.1 example must agree under all three environments, and
        the chosen exit must match the simulator's."""
        from tests.sim.test_simulator import TestPaperSection21

        helper = TestPaperSection21()
        network = helper.build()
        for peers in (("N1",), ("N1", "N2"), ("N1", "N2", "N3")):
            env = helper.announce(*peers)
            dst = iplib.parse_ip("8.8.8.8")
            model, enc, dataplane = agreement_check(network, env, dst)
            sim_exit = dataplane.traces("R3", Packet(dst))[0].exit_peer
            enc_exits = [
                peer.name for peer in network.externals
                if model.eval(enc.data_fwd(peer.router, peer.name))
            ]
            assert sim_exit in enc_exits

    def test_statics_and_redistribution(self):
        from repro.net import NetworkBuilder
        from repro.sim import Environment

        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_ospf()
        r1.enable_bgp(65001)
        r2 = b.device("R2")
        r2.enable_ospf()
        b.link("R1", "R2")
        for name in ("R1", "R2"):
            b.device(name).ospf_network("10.0.0.0/8")
        r1.static_route("172.16.0.0/16", drop=True)
        r1.redistribute("bgp", "static")
        r1.redistribute("ospf", "static", metric=30)
        network = b.build()
        for dst in ("172.16.4.4", "10.128.0.2"):
            agreement_check(network, Environment.empty(),
                            iplib.parse_ip(dst))


class TestRandomAgreement:
    """Seeded random networks: simulator fixpoint == encoder stable state."""

    @pytest.mark.parametrize("seed", range(24))
    def test_random_scenario_agreement(self, seed):
        scenario = random_scenario(seed)
        sim_result = simulate(scenario.network, scenario.environment)
        if not sim_result.converged:
            pytest.skip("random scenario did not converge")
        for dst in scenario.probe_destinations[:4]:
            agreement_check(scenario.network, scenario.environment, dst)


class TestCounterexampleReplay:
    """Verifier counterexamples replayed through the simulator must show
    the same violation."""

    def test_hijack_counterexample_replays(self):
        from tests.core.test_verifier import TestHijack
        from repro import Verifier
        from repro.core import properties as P
        from repro.core.concrete import counterexample_environment

        network = TestHijack().build().build()
        result = Verifier(network).verify(P.Reachability(
            sources=["R1"], dest_prefix_text="172.16.0.2/32"))
        assert result.holds is False
        cex = result.counterexample
        env = counterexample_environment(cex)
        sim_result = simulate(network, env)
        dataplane = DataPlane(sim_result)
        packet = Packet(dst_ip=cex.dst_ip)
        assert not dataplane.reachable("R1", packet)

    def test_blackhole_counterexample_replays(self):
        from repro import Verifier
        from repro.core import properties as P
        from repro.core.concrete import counterexample_environment
        from tests.core.test_verifier import ospf_chain

        b, _names = ospf_chain(3)
        b.device("R2").static_route("10.9.0.0/24", drop=True)
        network = b.build()
        result = Verifier(network).verify(P.NoBlackHoles(
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False
        cex = result.counterexample
        env = counterexample_environment(cex)
        dataplane = DataPlane(simulate(network, env))
        traces = dataplane.traces("R1", Packet(dst_ip=cex.dst_ip))
        assert any(t.disposition in ("null-routed", "no-route")
                   for t in traces)


class TestRandomAgreementUnderFailure:
    """Random networks with one concrete failed link: the k=1 encoding
    pinned to that failure must match the simulator's rerouted fixpoint."""

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_with_failed_link(self, seed):
        from repro.sim import Environment

        scenario = random_scenario(seed)
        links = scenario.network.internal_links()
        if not links:
            pytest.skip("no internal links")
        edge = links[seed % len(links)]
        env = Environment.of(
            scenario.environment.announcements,
            [(edge.source, edge.target)])
        sim_result = simulate(scenario.network, env)
        if not sim_result.converged:
            pytest.skip("did not converge")
        options = EncoderOptions(max_failures=1)
        for dst in scenario.probe_destinations[:2]:
            agreement_check(scenario.network, env, dst, options=options)
