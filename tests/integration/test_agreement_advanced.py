"""Agreement tests for the harder §4 features: route reflectors, MED
comparison modes, multihop iBGP with recursive lookup, and failures."""

import pytest

from repro.net import NetworkBuilder
from repro.net import ip as iplib
from repro.sim import Environment, ExternalAnnouncement
from tests.integration.test_agreement import agreement_check


def addresses(builder, names):
    probe = builder.build()
    out = {}
    for name in names:
        dev = probe.device(name)
        out[name] = next(i.address for i in dev.interfaces.values()
                         if i.address)
    return out


class TestRouteReflector:
    def build(self):
        """hub-and-spoke: clients A, C peer only with reflector B."""
        builder = NetworkBuilder()
        for name in ("A", "B", "C"):
            dev = builder.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
            dev.enable_bgp(65001)
        builder.link("A", "B")
        builder.link("B", "C")
        builder.ibgp_session("A", "B")
        builder.ibgp_session("B", "C")
        for nbr in builder.device("B").config.bgp.neighbors:
            nbr.route_reflector_client = True
        builder.external_peer("A", asn=65100, name="EXT")
        return builder.build()

    def test_reflected_route_agreement(self):
        network = self.build()
        env = Environment.of([
            ExternalAnnouncement.make("EXT", "8.8.0.0/16")])
        for dst in ("8.8.8.8", "9.9.9.9"):
            agreement_check(network, env, iplib.parse_ip(dst))

    def test_client_reaches_external_via_reflector(self):
        from repro import Verifier
        from repro.core import properties as P

        network = self.build()
        result = Verifier(network).verify(
            P.Reachability(sources=["C"], dest_peer="EXT",
                           dest_prefix_text="8.0.0.0/8"),
            assumptions=[P.announces("EXT", min_length=8)])
        assert result.holds is True

    def test_without_reflector_client_is_isolated(self):
        builder = NetworkBuilder()
        for name in ("A", "B", "C"):
            dev = builder.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
            dev.enable_bgp(65001)
        builder.link("A", "B")
        builder.link("B", "C")
        builder.ibgp_session("A", "B")
        builder.ibgp_session("B", "C")   # B is NOT a reflector
        builder.external_peer("A", asn=65100, name="EXT")
        network = builder.build()
        from repro import Verifier
        from repro.core import properties as P

        result = Verifier(network).verify(
            P.Reachability(sources=["C"], dest_peer="EXT",
                           dest_prefix_text="8.0.0.0/8"),
            assumptions=[P.announces("EXT", min_length=8)])
        assert result.holds is False


class TestMedModes:
    def build(self, mode):
        builder = NetworkBuilder()
        dev = builder.device("R")
        dev.enable_bgp(65001)
        dev.config.bgp.med_mode = mode
        builder.external_peer("R", asn=65100, name="SAME_A")
        builder.external_peer("R", asn=65100, name="SAME_B")
        builder.external_peer("R", asn=65200, name="OTHER")
        return builder.build()

    @pytest.mark.parametrize("mode", ["always", "same-as", "ignore"])
    def test_agreement_across_modes(self, mode):
        network = self.build(mode)
        env = Environment.of([
            ExternalAnnouncement.make("SAME_A", "8.8.0.0/16", med=50,
                                      origin_asn=65100),
            ExternalAnnouncement.make("SAME_B", "8.8.0.0/16", med=10,
                                      origin_asn=65100),
            ExternalAnnouncement.make("OTHER", "8.8.0.0/16", med=30,
                                      origin_asn=65200),
        ])
        agreement_check(network, env, iplib.parse_ip("8.8.8.8"))


class TestMultihopIbgp:
    def build(self):
        """A -- M -- B with a multihop iBGP session A<->B; M in mesh."""
        builder = NetworkBuilder()
        for name in ("A", "M", "B"):
            dev = builder.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
            dev.enable_bgp(65001)
        builder.link("A", "M")
        builder.link("M", "B")
        addr = addresses(builder, ("A", "M", "B"))
        for x, y in (("A", "B"), ("A", "M"), ("M", "B")):
            builder.device(x).bgp_neighbor(iplib.format_ip(addr[y]),
                                           remote_as=65001)
            builder.device(y).bgp_neighbor(iplib.format_ip(addr[x]),
                                           remote_as=65001)
        builder.external_peer("B", asn=65100, name="EXT")
        return builder.build()

    def test_agreement_no_failures(self):
        network = self.build()
        env = Environment.of([
            ExternalAnnouncement.make("EXT", "8.8.0.0/16")])
        agreement_check(network, env, iplib.parse_ip("8.8.8.8"))

    def test_recursive_forwarding_reaches_exit(self):
        from repro import Verifier
        from repro.core import properties as P

        network = self.build()
        result = Verifier(network).verify(
            P.Reachability(sources=["A"], dest_peer="EXT",
                           dest_prefix_text="8.0.0.0/8"),
            assumptions=[P.announces("EXT", min_length=8)])
        assert result.holds is True

    def test_session_survives_failure_via_igp_copy(self):
        """Under k=1 the A<->B session rides the IGP: there is no
        alternate path here, so failing A-M kills it — and the encoder's
        §4 network-copy machinery must see that."""
        from repro import Verifier
        from repro.core import properties as P

        network = self.build()
        result = Verifier(network).verify(
            P.Reachability(sources=["A"], dest_peer="EXT",
                           dest_prefix_text="8.0.0.0/8"),
            max_failures=1,
            assumptions=[P.announces("EXT", min_length=8),
                         P.no_failures()])
        assert result.holds is True
        result2 = Verifier(network).verify(
            P.Reachability(sources=["A"], dest_peer="EXT",
                           dest_prefix_text="8.0.0.0/8"),
            max_failures=1,
            assumptions=[P.announces("EXT", min_length=8)])
        assert result2.holds is False

    def test_redundant_underlay_keeps_session_up(self):
        """With a second IGP path the copy proves the session stays up."""
        builder = NetworkBuilder()
        for name in ("A", "M", "N", "B"):
            dev = builder.device(name)
            dev.enable_ospf(multipath=False)
            dev.ospf_network("10.0.0.0/8")
        for name in ("A", "B"):
            builder.device(name).enable_bgp(65001)
        builder.link("A", "M")
        builder.link("M", "B")
        builder.link("A", "N")
        builder.link("N", "B")
        addr = addresses(builder, ("A", "B"))
        builder.device("A").bgp_neighbor(iplib.format_ip(addr["B"]),
                                         remote_as=65001)
        builder.device("B").bgp_neighbor(iplib.format_ip(addr["A"]),
                                         remote_as=65001)
        network = builder.build()
        from repro.core.encoder import EncoderOptions, NetworkEncoder
        from repro.smt import SAT, Solver, UNSAT, not_

        encoder = NetworkEncoder(network,
                                 EncoderOptions(max_failures=1))
        enc = encoder.encode()
        # The iBGP session-up term for (A -> B's address).
        (key,) = [k for k in encoder._ibgp_sessions if k[0] == "A"]
        up = encoder._ibgp_sessions[key]
        solver = Solver()
        solver.add(*enc.constraints)
        solver.add(not_(up))
        # Under <=1 failure the session can never be down: both underlay
        # paths would have to fail.
        assert solver.check() is UNSAT