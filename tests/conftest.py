"""Shared test fixtures.

The run ledger is on by default for verifying CLI commands; without
redirection every ``main([...])`` call in the suite would append to a
``.repro-ledger.sqlite`` in the checkout.  Point it at a per-test
temporary file instead — tests that exercise the ledger explicitly
pass ``--ledger`` and are unaffected.
"""

import pytest


@pytest.fixture(autouse=True)
def _ledger_in_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-ledger.sqlite"))
