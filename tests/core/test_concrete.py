"""Tests for the symbolic/concrete bridge and counterexample plumbing."""

from repro.core.concrete import (
    counterexample_environment,
    pin_environment,
)
from repro.core.counterexample import (
    Counterexample,
    EnvAnnouncement,
    extract_counterexample,
)
from repro.core.encoder import EncoderOptions, NetworkEncoder
from repro.net import NetworkBuilder
from repro.net import ip as iplib
from repro.sim import Environment, ExternalAnnouncement
from repro.smt import SAT, Solver


def bgp_net():
    b = NetworkBuilder()
    b.device("R1").enable_bgp(65001)
    b.external_peer("R1", asn=65100, name="N1")
    b.external_peer("R1", asn=65200, name="N2")
    return b.build()


class TestPinEnvironment:
    def test_pin_forces_announcing_peer_valid(self):
        net = bgp_net()
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.8.0.0/16", path_length=2)])
        dst = iplib.parse_ip("8.8.4.4")
        solver = Solver()
        solver.add(*enc.constraints)
        solver.add(*pin_environment(enc, env, dst))
        assert solver.check() is SAT
        model = solver.model()
        assert model.eval(enc.env["N1"].valid) is True
        assert model.eval(enc.env["N2"].valid) is False
        assert model.eval(enc.env["N1"].prefix_len) == 16
        assert model.eval(enc.env["N1"].metric) == 2
        assert model.eval(enc.dst_ip) == dst

    def test_pin_silences_noncovering_announcements(self):
        net = bgp_net()
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        env = Environment.of([
            ExternalAnnouncement.make("N1", "9.9.9.0/24")])
        solver = Solver()
        solver.add(*enc.constraints)
        solver.add(*pin_environment(enc, env, iplib.parse_ip("8.8.8.8")))
        assert solver.check() is SAT
        assert solver.model().eval(enc.env["N1"].valid) is False

    def test_pin_picks_longest_covering_announcement(self):
        net = bgp_net()
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.0.0.0/8", path_length=1),
            ExternalAnnouncement.make("N1", "8.8.0.0/16", path_length=3),
        ])
        solver = Solver()
        solver.add(*enc.constraints)
        solver.add(*pin_environment(enc, env, iplib.parse_ip("8.8.8.8")))
        assert solver.check() is SAT
        assert solver.model().eval(enc.env["N1"].prefix_len) == 16

    def test_pin_failures(self):
        b = NetworkBuilder()
        for name in ("A", "B"):
            dev = b.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
        b.link("A", "B")
        net = b.build()
        enc = NetworkEncoder(net,
                             EncoderOptions(max_failures=1)).encode()
        env = Environment.of(failed_links=[("A", "B")])
        solver = Solver()
        solver.add(*enc.constraints)
        solver.add(*pin_environment(enc, env, iplib.parse_ip("10.0.0.1")))
        assert solver.check() is SAT
        key = ("A", "B")
        assert solver.model().eval(enc.failed[key]) is True


class TestCounterexampleRoundtrip:
    def test_environment_reconstruction(self):
        cex = Counterexample(
            dst_ip=iplib.parse_ip("8.8.8.8"),
            announcements=[EnvAnnouncement(
                peer="N1", prefix_length=24, path_length=2, med=5,
                communities=("65001:9",))],
            failed_links=[("A", "B")],
        )
        env = counterexample_environment(cex)
        (ann,) = env.announcements
        assert ann.peer == "N1"
        assert ann.network == iplib.parse_ip("8.8.8.0")
        assert ann.length == 24
        assert len(ann.as_path) == 2
        assert ann.med == 5
        assert "65001:9" in ann.communities
        assert env.link_failed("A", "B")

    def test_zero_path_length_bumped(self):
        cex = Counterexample(
            dst_ip=0,
            announcements=[EnvAnnouncement(
                peer="N1", prefix_length=0, path_length=0, med=0,
                communities=())],
        )
        env = counterexample_environment(cex)
        assert len(env.announcements[0].as_path) == 1

    def test_summary_is_readable(self):
        cex = Counterexample(
            dst_ip=iplib.parse_ip("1.2.3.4"),
            src_ip=iplib.parse_ip("5.6.7.8"),
            forwarding={"A": ["B"]},
            delivered_at=["B"],
            dropped_at=["C"],
        )
        text = cex.summary()
        assert "1.2.3.4" in text
        assert "5.6.7.8" in text
        assert "A -> B" in text
        assert "delivered at: ['B']" in text
        assert "null-routed at: ['C']" in text


class TestExtraction:
    def test_extract_from_model(self):
        net = bgp_net()
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        env = Environment.of([
            ExternalAnnouncement.make("N1", "8.8.0.0/16",
                                      communities=("65001:7",))])
        # Community bits only exist if mentioned in configs; this network
        # has none, so the pin simply omits them.
        solver = Solver()
        solver.add(*enc.constraints)
        solver.add(*pin_environment(enc, env, iplib.parse_ip("8.8.8.8")))
        assert solver.check() is SAT
        cex = extract_counterexample(enc, solver.model())
        assert cex.dst_ip == iplib.parse_ip("8.8.8.8")
        assert [a.peer for a in cex.announcements] == ["N1"]
        assert cex.forwarding.get("R1") == ["N1"]
