"""API-surface tests for EncodedNetwork and Verifier plumbing."""

from repro import NetworkBuilder, Verifier
from repro.core import properties as P
from repro.core.encoder import EncoderOptions, NetworkEncoder
from repro.smt import FALSE


def tiny():
    builder = NetworkBuilder()
    for name in ("A", "B"):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
    builder.link("A", "B")
    builder.device("B").interface("host", "10.9.0.1/24")
    return builder.build()


class TestEncodedNetworkApi:
    def test_targets_and_defaults(self):
        enc = NetworkEncoder(tiny(), EncoderOptions()).encode()
        assert "B" in enc.targets_of("A")
        assert enc.data_fwd("A", "nonexistent") is FALSE
        assert enc.control_fwd("A", "nonexistent") is FALSE
        assert enc.link_failed("A", "B") is FALSE  # k = 0

    def test_fresh_names_are_unique(self):
        enc = NetworkEncoder(tiny(), EncoderOptions()).encode()
        a = enc.fresh_bool("x")
        b = enc.fresh_bool("x")
        assert a is not b
        v = enc.fresh_bv("y", 4)
        w = enc.fresh_bv("y", 4)
        assert v is not w

    def test_routers_sorted(self):
        enc = NetworkEncoder(tiny(), EncoderOptions()).encode()
        assert enc.routers() == ["A", "B"]

    def test_namespace_isolates_variables(self):
        encoder = NetworkEncoder(tiny(), EncoderOptions())
        enc1 = encoder.encode(ns="one.")
        enc2 = encoder.encode(ns="two.")
        assert enc1.dst_ip is not enc2.dst_ip


class TestWaypointEdgeCases:
    def test_source_is_first_waypoint(self):
        net = tiny()
        result = Verifier(net).verify(P.Waypointing(
            source="A", waypoints=["A"],
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_source_is_entire_chain(self):
        net = tiny()
        result = Verifier(net).verify(P.Waypointing(
            source="A", waypoints=["A", "B"],
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_empty_chain_is_trivially_held(self):
        net = tiny()
        result = Verifier(net).verify(P.Waypointing(
            source="A", waypoints=[],
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True


class TestFailuresNeeded:
    def test_property_can_force_failure_modeling(self):
        net = tiny()
        prop = P.Reachability(sources=["A"],
                              dest_prefix_text="10.9.0.0/24")
        prop.failures_needed = 1
        # A-B is a single link: with failures modeled the property breaks.
        result = Verifier(net).verify(prop)
        assert result.holds is False
        assert result.counterexample.failed_links


class TestExactFailures:
    def test_exact_failures_option(self):
        from repro.smt import Solver, not_

        net = tiny()
        enc = NetworkEncoder(
            net, EncoderOptions(max_failures=1,
                                exact_failures=True)).encode()
        solver = Solver()
        solver.add(*enc.constraints)
        # Exactly one failure: the all-up assignment is excluded.
        bits = list(enc.failed.values()) + list(enc.failed_ext.values())
        solver.add(*[not_(b) for b in bits])
        assert solver.check().name == "unsat"
