"""Coverage for the remaining §5 properties: disjoint paths, path
preferences, waypointing to external destinations, isolation with peers."""


from repro import NetworkBuilder, Verifier
from repro.core import properties as P
from repro.net import RouteMapClause
from repro.net import ip as iplib


def two_plane_network():
    """S reaches D over two fully disjoint planes: S-L-D and S-R-D."""
    b = NetworkBuilder()
    for name in ("S", "L", "R", "D"):
        dev = b.device(name)
        dev.enable_ospf(multipath=False)
        dev.ospf_network("10.0.0.0/8")
    b.link("S", "L", ospf_cost=1)
    b.link("L", "D", ospf_cost=1)
    b.link("S", "R", ospf_cost=5)
    b.link("R", "D", ospf_cost=5)
    b.device("D").interface("host", "10.9.0.1/24")
    return b


class TestDisjointPaths:
    def test_disjoint_when_entry_points_differ(self):
        # L and R use disjoint paths toward D (L-D vs R-D).
        net = two_plane_network().build()
        result = Verifier(net).verify(P.DisjointPaths(
            router_a="L", router_b="R",
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_shared_link_detected(self):
        # S and L share the L-D link.
        net = two_plane_network().build()
        result = Verifier(net).verify(P.DisjointPaths(
            router_a="S", router_b="L",
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False


class TestPathPreference:
    def build(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.route_map("LP200", [RouteMapClause(seq=10, action="permit",
                                              set_local_pref=200)])
        b.external_peer("R1", asn=65100, name="GOOD",
                        route_map_in="LP200")
        b.external_peer("R1", asn=65200, name="BACKUP")
        return b.build()

    def test_fallback_only_when_preferred_rejected(self):
        net = self.build()
        result = Verifier(net).verify(P.PathPreference(
            preferred=["R1", "GOOD"], fallback=["R1", "BACKUP"],
            dest_prefix_text="8.0.0.0/8"))
        assert result.holds is True

    def test_violated_with_inverted_preference(self):
        net = self.build()
        result = Verifier(net).verify(P.PathPreference(
            preferred=["R1", "BACKUP"], fallback=["R1", "GOOD"],
            dest_prefix_text="8.0.0.0/8"))
        assert result.holds is False


class TestWaypointToExternal:
    def test_exit_traffic_waypoints_the_firewall(self):
        b = NetworkBuilder()
        for name in ("EDGE", "FW", "CORE"):
            dev = b.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
        b.device("EDGE").enable_bgp(65001)
        b.device("EDGE").redistribute("ospf", "bgp", metric=20)
        b.link("CORE", "FW")
        b.link("FW", "EDGE")
        peer = b.external_peer("EDGE", asn=65100, name="UPSTREAM")
        net = b.build()
        result = Verifier(net).verify(
            P.Waypointing(source="CORE", waypoints=["FW"],
                          dest_peer=peer,
                          dest_prefix_text="8.0.0.0/8"))
        assert result.holds is True

    def test_bypass_detected_with_direct_link(self):
        b = NetworkBuilder()
        for name in ("EDGE", "FW", "CORE"):
            dev = b.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
        b.device("EDGE").enable_bgp(65001)
        b.device("EDGE").redistribute("ospf", "bgp", metric=20)
        b.link("CORE", "FW", ospf_cost=1)
        b.link("FW", "EDGE", ospf_cost=1)
        b.link("CORE", "EDGE", ospf_cost=1)   # the bypass
        peer = b.external_peer("EDGE", asn=65100, name="UPSTREAM")
        net = b.build()
        result = Verifier(net).verify(
            P.Waypointing(source="CORE", waypoints=["FW"],
                          dest_peer=peer,
                          dest_prefix_text="8.0.0.0/8"))
        assert result.holds is False


class TestIsolationWithPeers:
    def test_filtered_space_never_exits(self):
        from repro.net import PrefixListEntry

        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.enable_ospf()
        r1.interface("lan", "192.168.1.1/24")
        r1.ospf_network("192.168.0.0/16")
        r1.prefix_list("NOLAN", [
            PrefixListEntry("deny", iplib.parse_ip("192.168.0.0"), 16,
                            ge=16, le=32),
            PrefixListEntry("permit", 0, 0, le=32)])
        r1.route_map("IMP", [RouteMapClause(
            seq=10, action="permit", match_prefix_list="NOLAN")])
        peer = b.external_peer("R1", asn=65100, name="UP",
                               route_map_in="IMP")
        net = b.build()
        # LAN-destined traffic can never exit via the peer, because the
        # import filter blocks any LAN-covering announcement.
        result = Verifier(net).verify(P.Isolation(
            sources=["R1"], dest_peer=peer,
            dest_prefix_text="192.168.1.0/24"))
        assert result.holds is True

    def test_unfiltered_space_can_exit(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        peer = b.external_peer("R1", asn=65100, name="UP")
        net = b.build()
        result = Verifier(net).verify(P.Isolation(
            sources=["R1"], dest_peer=peer,
            dest_prefix_text="8.0.0.0/8"))
        assert result.holds is False


class TestVerificationResultApi:
    def test_repr_and_bool(self):
        b = NetworkBuilder()
        dev = b.device("A")
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
        dev.interface("host", "10.9.0.1/24")
        net = b.build()
        good = Verifier(net).verify(P.Reachability(
            sources=["A"], dest_prefix_text="10.9.0.0/24"))
        assert bool(good) is True
        assert "HOLDS" in repr(good)
        bad = Verifier(net).verify(P.Reachability(
            sources=["A"], dest_prefix_text="172.16.0.0/16"))
        assert bool(bad) is False
        assert "VIOLATED" in repr(bad)
        assert bad.num_variables > 0
        assert bad.num_clauses > 0
        assert bad.seconds >= 0

    def test_unknown_on_tiny_budget(self):

        from repro.gen import build_fattree

        tree = build_fattree(4)
        verifier = Verifier(tree.network, conflict_budget=1)
        result = verifier.verify(P.Reachability(
            sources=[tree.tors[0]],
            dest_prefix_text=tree.tor_subnet(tree.tors[-1])))
        assert result.holds is None
        assert bool(result) is False


from tests.core.test_verifier import bgp_multihomed  # noqa: E402


class TestAssumptionHelpers:
    def test_announces_with_max_path(self):
        net = bgp_multihomed().build()
        v = Verifier(net)
        # N1 announces (short path), N2 silent: traffic must exit via N1.
        # (With N2 unconstrained, a longer N2 prefix would legitimately
        # win longest-prefix match over N1's local-pref.)
        result = v.verify(
            P.Reachability(sources=["R1"], dest_peer="N1",
                           dest_prefix_text="8.0.0.0/8"),
            assumptions=[P.announces("N1", min_length=8, max_path=1),
                         P.silent("N2")])
        assert result.holds is True

    def test_silent_forces_unreachability(self):
        net = bgp_multihomed().build()
        v = Verifier(net)
        result = v.verify(
            P.Reachability(sources=["R1"], dest_peer="N1",
                           dest_prefix_text="8.0.0.0/8"),
            assumptions=[P.silent("N1")])
        assert result.holds is False

    def test_no_failures_assumption_restores_property(self):
        from tests.core.test_verifier import ospf_chain

        b, _ = ospf_chain(3)
        net = b.build()
        prop = P.Reachability(sources=["R1"],
                              dest_prefix_text="10.9.0.0/24")
        v = Verifier(net)
        assert v.verify(prop, max_failures=1).holds is False
        assert v.verify(prop, max_failures=1,
                        assumptions=[P.no_failures()]).holds is True


class TestFaultInvarianceOtherProperties:
    def test_blackhole_fault_invariance(self):
        from tests.core.test_verifier import diamond

        net = diamond().build()
        prop = P.NoBlackHoles(dest_prefix_text="10.9.0.0/24")
        result = Verifier(net).verify_fault_invariance(prop, k=1)
        assert result.holds is True
