"""Regression tests for subtle encoder semantics.

Each test here pins a bug class discovered during development:
ghost routes from redistribution feedback, origin suppression of learned
routes, environment sanity, and the guarded-equality discipline.
"""

import pytest

from repro import NetworkBuilder, Verifier
from repro.core import properties as P
from repro.core.encoder import EncoderOptions, NetworkEncoder
from repro.net import ip as iplib
from repro.smt import SAT, Solver, UNSAT


class TestGhostRoutes:
    """Mutual redistribution must not self-justify phantom routes."""

    def build_mutual_redistribution(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_ospf()
        r1.enable_bgp(65001)
        r1.redistribute("ospf", "bgp", metric=20)
        r1.redistribute("bgp", "ospf")
        r2 = b.device("R2")
        r2.enable_ospf()
        b.link("R1", "R2")
        for name in ("R1", "R2"):
            b.device(name).ospf_network("10.0.0.0/8")
        b.device("R1").interface("lan", "192.168.1.1/24")
        b.device("R1").ospf_network("192.168.1.0/24")
        b.external_peer("R1", asn=65100, name="UP")
        return b.build()

    def test_no_ghost_route_cycle_at_single_router(self):
        # Before the fix, a BGP<->OSPF redistribution ring at R1 could
        # justify a phantom /32 covering any destination — with NO
        # external announcement at all — shadowing the genuine connected
        # route and creating an R1<->R2 ping-pong.  (With announcements
        # allowed the unfiltered peer can genuinely hijack a /32, which is
        # correct behaviour; the ghost bug manifested under silence.)
        net = self.build_mutual_redistribution()
        result = Verifier(net).verify(
            P.Reachability(sources="all",
                           dest_prefix_text="192.168.1.0/24"),
            assumptions=[P.silent("UP")])
        assert result.holds is True

    def test_no_phantom_loops(self):
        net = self.build_mutual_redistribution()
        result = Verifier(net).verify(
            P.NoForwardingLoops(dest_prefix_text="192.168.1.0/24"),
            assumptions=[P.silent("UP")])
        assert result.holds is True

    def test_unfiltered_peer_hijack_is_still_found(self):
        # The genuine violation: an adversarial /32 announcement through
        # the unfiltered session diverts the LAN space.
        net = self.build_mutual_redistribution()
        result = Verifier(net).verify(P.Reachability(
            sources="all", dest_prefix_text="192.168.1.0/24"))
        assert result.holds is False
        assert any(a.peer == "UP"
                   for a in result.counterexample.announcements)


class TestOriginSuppression:
    """A locally-sourced route wins selection but forwards via its
    source protocol — learned routes it beats are suppressed."""

    def build(self, redistribute_back: bool):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_ospf()
        r1.enable_bgp(65001)
        r2 = b.device("R2")
        r2.enable_ospf()
        b.link("R1", "R2")
        for name in ("R1", "R2"):
            b.device(name).ospf_network("10.0.0.0/8")
            b.device(name).ospf_network("172.16.0.0/12")
        r2.interface("mgmt", "172.16.0.9/32", management=True)
        r1.redistribute("ospf", "bgp", metric=20)
        if redistribute_back:
            r1.redistribute("bgp", "ospf")
        b.external_peer("R1", asn=65100, name="EXT")
        return b.build()

    def test_redistributed_internal_space_blocks_hijack(self):
        # With OSPF redistributed into BGP, R1's locally-sourced BGP route
        # for the /32 out-prefers any external announcement (weight on
        # real routers), so the management interface is NOT hijackable.
        net = self.build(redistribute_back=True)
        result = Verifier(net).verify(P.Reachability(
            sources="all", dest_prefix_text="172.16.0.9/32"))
        assert result.holds is True

    def test_without_redistribution_hijack_exists(self):
        net = self.build(redistribute_back=False)
        result = Verifier(net).verify(P.Reachability(
            sources="all", dest_prefix_text="172.16.0.9/32"))
        assert result.holds is False
        cex = result.counterexample
        assert any(a.peer == "EXT" for a in cex.announcements)


class TestEnvironmentSanity:
    def test_announcements_have_nonzero_path_length(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.external_peer("R1", asn=65100, name="N1")
        net = b.build()
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        solver = Solver()
        solver.add(*enc.constraints)
        env = enc.env["N1"]
        from repro.smt import bv_val, eq
        solver.add(env.valid)
        assert solver.check() is SAT
        assert solver.check(
            [eq(env.metric, bv_val(0, env.metric.width))]) is UNSAT

    def test_prefix_length_bounded_to_32(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.external_peer("R1", asn=65100, name="N1")
        net = b.build()
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        solver = Solver()
        solver.add(*enc.constraints)
        env = enc.env["N1"]
        from repro.smt import bv_val, ugt
        solver.add(env.valid)
        assert solver.check(
            [ugt(env.prefix_len, bv_val(32, env.prefix_len.width))]) \
            is UNSAT


class TestStableStateExistence:
    """The network constraints alone must always be satisfiable (a stable
    state exists), for a spread of configurations and options."""

    @pytest.mark.parametrize("options", [
        EncoderOptions(),
        EncoderOptions(hoist_prefixes=False),
        EncoderOptions(merge_edge_records=False),
        EncoderOptions(max_failures=1),
        EncoderOptions(max_failures=2, exact_failures=True),
    ], ids=["default", "nohoist", "nomerge", "k1", "k2exact"])
    def test_every_network_has_a_stable_state(self, options):
        from repro.gen import random_scenario

        for seed in (1, 5, 9):
            scenario = random_scenario(seed)
            enc = NetworkEncoder(scenario.network, options).encode()
            solver = Solver()
            solver.add(*enc.constraints)
            assert solver.check() is SAT, f"seed {seed}"

    def test_destination_sliced_encoding_satisfiable(self):
        from repro.gen import build_fattree

        tree = build_fattree(2)
        enc = NetworkEncoder(tree.network, EncoderOptions()).encode(
            dst_prefix=iplib.parse_prefix("10.0.0.0/24"))
        solver = Solver()
        solver.add(*enc.constraints)
        assert solver.check() is SAT


class TestEncodingSizes:
    """Slicing/hoisting must strictly shrink the CNF (§6)."""

    def sizes(self, options) -> tuple:
        from repro.gen import build_fattree

        tree = build_fattree(2)
        enc = NetworkEncoder(tree.network, options).encode()
        solver = Solver()
        solver.add(*enc.constraints)
        return solver.num_variables, solver.num_clauses

    def test_hoisting_removes_prefix_variables(self):
        small = self.sizes(EncoderOptions())
        big = self.sizes(EncoderOptions(hoist_prefixes=False))
        assert big[0] > small[0] * 1.5
        assert big[1] > small[1]

    def test_merging_removes_edge_records(self):
        small = self.sizes(EncoderOptions())
        big = self.sizes(EncoderOptions(merge_edge_records=False))
        assert big[0] > small[0]

    def test_failure_vars_only_when_requested(self):
        from repro.gen import build_fattree

        tree = build_fattree(2)
        enc0 = NetworkEncoder(tree.network, EncoderOptions()).encode()
        enc1 = NetworkEncoder(tree.network,
                              EncoderOptions(max_failures=1)).encode()
        assert not enc0.failed and not enc0.failed_ext
        assert enc1.failed
        assert enc1.failed_ext

    def test_fail_external_flag(self):
        from repro.gen import build_fattree

        tree = build_fattree(2)
        enc = NetworkEncoder(
            tree.network,
            EncoderOptions(max_failures=1, fail_external=False)).encode()
        assert enc.failed and not enc.failed_ext


class TestModelIbgpFlag:
    def test_disabling_ibgp_drops_sessions(self):
        from repro.core import properties as P

        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.device("R2").enable_bgp(65001)
        b.link("R1", "R2")
        b.ibgp_session("R1", "R2")
        b.external_peer("R1", asn=65100, name="N1")
        net = b.build()
        prop = P.Reachability(sources=["R2"], dest_peer="N1",
                              dest_prefix_text="8.0.0.0/8")
        assume = [P.announces("N1", min_length=8)]
        on = Verifier(net).verify(prop, assumptions=assume)
        assert on.holds is True
        off = Verifier(net, options=EncoderOptions(
            model_ibgp=False)).verify(prop, assumptions=assume)
        assert off.holds is False


class TestPrefixLeakScoping:
    def test_router_filter_limits_check(self):
        from repro.core import properties as P

        b = NetworkBuilder()
        leaky = b.device("LEAKY")
        leaky.enable_bgp(65001)
        leaky.interface("host", "10.9.0.1/28")
        leaky.bgp_network("10.9.0.0/28")
        b.external_peer("LEAKY", asn=65100, name="N1")
        clean = b.device("CLEAN")
        clean.enable_bgp(65002)
        b.external_peer("CLEAN", asn=65200, name="N2")
        net = b.build()
        verifier = Verifier(net)
        quiet = [P.silent("N1"), P.silent("N2")]
        both = verifier.verify(
            P.NoPrefixLeak(max_length=24,
                           dest_prefix_text="10.9.0.0/24"),
            assumptions=quiet)
        assert both.holds is False
        assert "LEAKY" in both.message
        only_clean = verifier.verify(
            P.NoPrefixLeak(max_length=24, routers=["CLEAN"],
                           dest_prefix_text="10.9.0.0/24"),
            assumptions=quiet)
        assert only_clean.holds is True
