"""Batch engine: shared-encoding correctness, grouping, parallelism."""

import pytest

from repro import NetworkBuilder, Verifier
from repro.core import BatchEngine, BatchQuery, properties as P, verify_batch
from repro.core.encoder import EncoderOptions


def ospf_chain(n=3, multipath=False):
    b = NetworkBuilder()
    names = [f"R{i}" for i in range(1, n + 1)]
    for name in names:
        b.device(name).enable_ospf(multipath=multipath)
        b.device(name).ospf_network("10.0.0.0/8")
    for a, c in zip(names, names[1:]):
        b.link(a, c)
    b.device(names[-1]).interface("host", "10.9.0.1/24")
    return b.build()


def diamond(multipath=True):
    b = NetworkBuilder()
    for name in ("S", "L", "R", "D"):
        b.device(name).enable_ospf(multipath=multipath)
        b.device(name).ospf_network("10.0.0.0/8")
    b.link("S", "L")
    b.link("S", "R")
    b.link("L", "D")
    b.link("R", "D")
    b.device("D").interface("host", "10.9.0.1/24")
    return b.build()


def query_matrix():
    """A mixed batch: holding and violated, two destination prefixes."""
    return [
        BatchQuery(P.Reachability(sources="all",
                                  dest_prefix_text="10.9.0.0/24")),
        BatchQuery(P.Reachability(sources=["R1"],
                                  dest_prefix_text="172.20.0.0/16"),
                   label="unroutable"),
        BatchQuery(P.NoBlackHoles(dest_prefix_text="10.9.0.0/24")),
        BatchQuery(P.NoForwardingLoops(dest_prefix_text="10.9.0.0/24")),
        BatchQuery(P.BoundedPathLength(sources="all", bound=1,
                                       dest_prefix_text="10.9.0.0/24")),
        BatchQuery(P.BoundedPathLength(sources="all", bound=6,
                                       dest_prefix_text="10.9.0.0/24")),
    ]


def assert_matches_serial(network, queries, results, **verify_kwargs):
    verifier = Verifier(network, **verify_kwargs)
    assert len(results) == len(queries)
    for query, batched in zip(queries, results):
        serial = verifier.verify(query.prop,
                                 max_failures=query.max_failures,
                                 assumptions=list(query.assumptions))
        assert batched.holds == serial.holds, query.name()
        assert (batched.counterexample is None) == \
            (serial.counterexample is None), query.name()


class TestBatchMatchesSerial:
    def test_chain_matrix(self):
        network = ospf_chain(3)
        queries = query_matrix()
        results = verify_batch(network, queries)
        assert_matches_serial(network, queries, results)
        # Spot-check expected verdicts, not just serial agreement.
        assert [r.holds for r in results] == \
            [True, False, True, True, False, True]

    def test_multipath_diamond_matrix(self):
        # Multipath states are exactly where unguarded instrumentation
        # sharing would be unsound (hop-counter equations conflict with
        # unequal branch lengths), so exercise them explicitly.
        network = diamond(multipath=True)
        queries = [
            BatchQuery(P.Reachability(sources="all",
                                      dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.BoundedPathLength(sources=["S"], bound=2,
                                           dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.MultipathConsistency(
                dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.EqualPathLengths(routers=["S", "L", "R"],
                                          dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.NoForwardingLoops(dest_prefix_text="10.9.0.0/24")),
        ]
        results = verify_batch(network, queries)
        assert_matches_serial(network, queries, results)

    def test_instrumented_query_does_not_taint_siblings(self):
        # A bounded-length property asserts hop-counter instrumentation.
        # If that leaked unguarded into the shared solver it would shrink
        # the state space for the queries checked after it.
        network = diamond(multipath=True)
        queries = [
            BatchQuery(P.BoundedPathLength(sources=["S"], bound=1,
                                           dest_prefix_text="10.9.0.0/24"),
                       label="too-tight"),
            BatchQuery(P.Reachability(sources="all",
                                      dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.EqualPathLengths(routers=["L", "R"],
                                          dest_prefix_text="10.9.0.0/24")),
        ]
        results = verify_batch(network, queries)
        assert_matches_serial(network, queries, results)
        assert results[0].holds is False

    def test_per_query_assumptions_do_not_leak(self):
        b = NetworkBuilder()
        b.device("R1").enable_bgp(65001)
        b.external_peer("R1", asn=65100, name="EXT")
        network = b.build()
        prop = P.Reachability(sources=["R1"], dest_peer="EXT",
                              dest_prefix_text="8.0.0.0/8")
        queries = [
            BatchQuery(prop,
                       assumptions=(P.announces("EXT", min_length=8),),
                       label="assumed"),
            BatchQuery(prop, label="unassumed"),
        ]
        results = verify_batch(network, queries)
        assert results[0].holds is True
        assert results[1].holds is False
        assert_matches_serial(network, queries, results)

    def test_plain_properties_accepted(self):
        network = ospf_chain(2)
        results = verify_batch(network, [
            P.Reachability(sources="all", dest_prefix_text="10.9.0.0/24"),
            P.NoForwardingLoops(dest_prefix_text="10.9.0.0/24"),
        ])
        assert [r.holds for r in results] == [True, True]


class TestGroupingAndOrdering:
    def test_results_in_query_order(self):
        network = ospf_chain(3)
        queries = query_matrix()
        results = verify_batch(network, queries)
        expected_names = [q.name() for q in queries]
        assert [r.property_name for r in results] == expected_names

    def test_groups_split_by_max_failures(self):
        network = diamond(multipath=False)
        prop = P.Reachability(sources=["S"],
                              dest_prefix_text="10.9.0.0/24")
        queries = [
            BatchQuery(prop, max_failures=0, label="k0"),
            BatchQuery(prop, max_failures=1, label="k1"),
            BatchQuery(prop, max_failures=2, label="k2"),
        ]
        engine = BatchEngine(network)
        results = engine.run(queries)
        # Diamond survives any single failure but not two (both L and R
        # links from S cut off the source).
        assert [r.holds for r in results] == [True, True, False]
        assert_matches_serial(network, queries, results)

    def test_explicit_zero_overrides_engine_default(self):
        network = ospf_chain(2)
        prop = P.Reachability(sources=["R1"],
                              dest_prefix_text="10.9.0.0/24")
        engine = BatchEngine(network,
                             options=EncoderOptions(max_failures=1))
        results = engine.run([BatchQuery(prop, max_failures=0, label="k0"),
                              BatchQuery(prop, label="default")])
        # On a 2-node chain one failure disconnects R1, so the engine
        # default (k=1) must report a violation while the explicit k=0
        # query holds.
        assert results[0].holds is True
        assert results[1].holds is False

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            BatchEngine(ospf_chain(2), workers=0)


class TestParallel:
    def test_parallel_matches_serial(self):
        network = ospf_chain(3)
        queries = query_matrix()
        serial = verify_batch(network, queries, workers=1)
        parallel = verify_batch(network, queries, workers=2)
        assert [r.holds for r in serial] == [r.holds for r in parallel]
        assert [r.property_name for r in serial] == \
            [r.property_name for r in parallel]
        for s, p in zip(serial, parallel):
            assert (s.counterexample is None) == (p.counterexample is None)


class TestLazyFallback:
    def test_load_balanced_routed_through_verifier(self):
        network = diamond(multipath=True)
        queries = [
            BatchQuery(P.LoadBalanced(source_loads={"S": 1.0},
                                      monitor=[("L", "R")], threshold=0.01,
                                      dest_prefix_text="10.9.0.0/24"),
                       label="lb"),
            BatchQuery(P.Reachability(sources="all",
                                      dest_prefix_text="10.9.0.0/24")),
        ]
        results = verify_batch(network, queries)
        assert results[0].property_name == "lb"
        assert results[0].holds is True
        assert results[1].holds is True
        assert_matches_serial(network, queries, results)


class TestStats:
    def test_per_query_stats_populated(self):
        network = ospf_chain(3)
        results = verify_batch(network, query_matrix())
        for result in results:
            assert result.num_variables > 0
            assert result.num_clauses > 0
            assert result.seconds > 0
            assert result.encode_seconds > 0
            assert result.solve_seconds >= 0
            assert result.conflicts >= 0
            assert result.seconds >= result.encode_seconds

    def test_verifier_entry_point(self):
        network = ospf_chain(2)
        verifier = Verifier(network)
        results = verifier.verify_batch([
            P.Reachability(sources="all", dest_prefix_text="10.9.0.0/24"),
        ])
        assert len(results) == 1 and results[0].holds is True

    def test_shared_encoding_attribution(self):
        """The one-time shared encoding is amortized evenly across a
        group, per-query cost is separate, and encode_seconds is exactly
        their sum — so group totals add up without double-counting."""
        network = ospf_chain(3)
        queries = [
            BatchQuery(P.Reachability(sources="all",
                                      dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.NoBlackHoles(dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.NoForwardingLoops(
                dest_prefix_text="10.9.0.0/24")),
        ]
        results = verify_batch(network, queries)  # one group (same key)
        shares = {r.encode_shared_seconds for r in results}
        assert len(shares) == 1, "equal amortized share per group member"
        assert shares.pop() > 0
        for r in results:
            assert r.encode_query_seconds >= 0
            assert r.encode_seconds == pytest.approx(
                r.encode_shared_seconds + r.encode_query_seconds)
            assert r.seconds >= r.encode_shared_seconds

    def test_group_encode_totals_sum_to_actual_cost(self):
        """Summing encode_seconds across a group equals shared cost plus
        the per-query costs (no shared time counted twice)."""
        from repro import obs

        network = ospf_chain(3)
        queries = [
            BatchQuery(P.Reachability(sources="all",
                                      dest_prefix_text="10.9.0.0/24")),
            BatchQuery(P.NoBlackHoles(dest_prefix_text="10.9.0.0/24")),
        ]
        tracer = obs.Tracer()
        with obs.use(tracer):
            results = verify_batch(network, queries)
        shared_spans = sum(s["duration"] for s in tracer.spans
                           if s["name"] == "verify.encode")
        query_spans = sum(s["duration"] for s in tracer.spans
                          if s["name"] == "verify.property")
        total = sum(r.encode_seconds for r in results)
        assert total == pytest.approx(shared_spans + query_spans)

    def test_standalone_verify_shared_is_full_network_encoding(self):
        network = ospf_chain(3)
        result = Verifier(network).verify(
            P.Reachability(sources="all", dest_prefix_text="10.9.0.0/24"))
        assert result.encode_shared_seconds > 0
        assert result.encode_seconds == pytest.approx(
            result.encode_shared_seconds + result.encode_query_seconds)


class TestPoolFallback:
    def test_pool_failure_warns_and_counts(self, monkeypatch):
        """A broken process pool must not silently degrade to serial.

        The fallback still has to produce correct results, but it must
        emit a RuntimeWarning and tick the engine.pool_fallback counter
        so operators can see why a parallel batch ran at serial speed.
        """
        from repro import obs
        from repro.core import engine as engine_mod

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("spawn forbidden in this test")

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor",
                            ExplodingPool)
        network = ospf_chain(3)
        queries = query_matrix()
        tracer = obs.Tracer()
        with obs.use(tracer):
            with pytest.warns(RuntimeWarning,
                              match="process pool failed"):
                results = verify_batch(network, queries, workers=2)
        assert tracer.metrics.counter("engine.pool_fallback").value == 1
        serial = verify_batch(network, queries, workers=1)
        assert [r.holds for r in results] == [r.holds for r in serial]

    def test_healthy_pool_does_not_tick_fallback(self):
        from repro import obs
        network = ospf_chain(3)
        tracer = obs.Tracer()
        with obs.use(tracer):
            verify_batch(network, query_matrix(), workers=2)
        assert tracer.metrics.counter("engine.pool_fallback").value == 0
