"""CLI tests, driving the real config-file path end to end."""

import pytest

from repro.cli import main
from repro.lang import write_config
from repro.net import NetworkBuilder


@pytest.fixture()
def config_dir(tmp_path):
    builder = NetworkBuilder()
    for name in ("R1", "R2", "R3"):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
    builder.link("R1", "R2")
    builder.link("R2", "R3")
    builder.link("R1", "R3")
    builder.device("R3").interface("host", "10.9.0.1/24")
    builder.device("R2").static_route("172.16.0.0/16", drop=True)
    # Advertise the discard route so neighbors actually send traffic into
    # the black hole (exercises the blackholes CLI check).
    builder.device("R2").redistribute("ospf", "static", metric=30)
    network = builder.build()
    for name in network.router_names():
        (tmp_path / f"{name}.cfg").write_text(
            write_config(network.device(name)))
    return str(tmp_path)


class TestShow:
    def test_show_summarizes(self, config_dir, capsys):
        assert main(["show", config_dir]) == 0
        out = capsys.readouterr().out
        assert "3 routers" in out
        assert "R1" in out and "ospf" in out


class TestVerify:
    def test_reachability_holds(self, config_dir, capsys):
        code = main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_no_preprocess_flag_same_verdicts(self, config_dir, capsys):
        for extra in ([], ["--no-preprocess"]):
            code = main(["verify", config_dir, "reachability",
                         "--dest-prefix", "10.9.0.0/24"] + extra)
            assert code == 0
            assert "HOLDS" in capsys.readouterr().out
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--property", "loops",
                     "--dest-prefix", "10.9.0.0/24",
                     "--no-preprocess"])
        assert code == 0
        assert "2/2 hold" in capsys.readouterr().out

    def test_reachability_violated_exit_code(self, config_dir, capsys):
        code = main(["verify", config_dir, "reachability",
                     "--sources", "R1",
                     "--dest-prefix", "172.20.0.0/16"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "dstIp" in out  # counterexample printed

    def test_fault_tolerance_flag(self, config_dir):
        assert main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--max-failures", "1"]) == 0
        assert main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--max-failures", "2"]) == 1

    def test_loops_and_blackholes(self, config_dir):
        assert main(["verify", config_dir, "loops",
                     "--dest-prefix", "10.9.0.0/24"]) == 0
        # The Null0 static on R2 is a black hole for covered traffic.
        assert main(["verify", config_dir, "blackholes",
                     "--dest-prefix", "172.16.0.0/16"]) == 1

    def test_bounded_length(self, config_dir):
        assert main(["verify", config_dir, "bounded-length",
                     "--sources", "R1", "--bound", "2",
                     "--dest-prefix", "10.9.0.0/24"]) == 0

    def test_waypoint_argument_validation(self, config_dir):
        with pytest.raises(SystemExit):
            main(["verify", config_dir, "waypoint",
                  "--dest-prefix", "10.9.0.0/24"])


class TestVerifyBatch:
    def test_flags_mode_all_hold(self, config_dir, capsys):
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--property", "blackholes",
                     "--property", "loops",
                     "--dest-prefix", "10.9.0.0/24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 hold" in out

    def test_spec_mode_mixed_verdicts(self, config_dir, tmp_path, capsys):
        import json
        spec = tmp_path / "queries.json"
        spec.write_text(json.dumps([
            {"property": "reachability", "dest_prefix": "10.9.0.0/24",
             "label": "rack"},
            {"property": "reachability", "sources": ["R1"],
             "dest_prefix": "172.20.0.0/16", "label": "unroutable"},
            {"property": "blackholes", "dest_prefix": "172.16.0.0/16"},
        ]))
        code = main(["verify-batch", config_dir,
                     "--spec", str(spec), "--stats"])
        assert code == 1
        out = capsys.readouterr().out
        assert "rack: HOLDS" in out
        assert "unroutable: VIOLATED" in out
        assert "dstIp" in out       # counterexample printed
        assert "clauses=" in out    # --stats output
        assert "1/3 hold" in out

    def test_workers_flag(self, config_dir, capsys):
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--property", "loops",
                     "--workers", "2"])
        assert code == 0
        assert "2/2 hold" in capsys.readouterr().out

    def test_requires_some_query(self, config_dir):
        with pytest.raises(SystemExit):
            main(["verify-batch", config_dir])

    def test_rejects_unknown_property_in_spec(self, config_dir, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text('[{"property": "nonsense"}]')
        with pytest.raises(SystemExit):
            main(["verify-batch", config_dir, "--spec", str(spec)])


class TestEquivalence:
    def test_equivalence_of_symmetric_routers(self, config_dir):
        # R1 and R3 both have three interfaces but differ (host subnet),
        # so sorted pairing flags them; R1 vs R2 differ by the static.
        code = main(["equivalence", config_dir, "R1", "R2", "--by-name"])
        assert code in (0, 1)


class TestSimulate:
    def test_trace_output(self, config_dir, capsys):
        code = main(["simulate", config_dir,
                     "--from", "R1", "--dst", "10.9.0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_failed_link_reroutes(self, config_dir, capsys):
        code = main(["simulate", config_dir,
                     "--from", "R1", "--dst", "10.9.0.5",
                     "--fail", "R1", "R3"])
        assert code == 0
        assert "R1 -> R2 -> R3" in capsys.readouterr().out


class TestObservability:
    def test_verify_stats_line(self, config_dir, capsys):
        code = main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clauses=" in out
        assert "shared=" in out and "query=" in out

    def test_verify_trace_and_profile(self, config_dir, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        code = main(["verify", config_dir, "loops",
                     "--trace", str(trace), "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "verify.encode" in out
        assert trace.exists()
        import json
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]

    def test_batch_trace_jsonl_and_stats_command(self, config_dir,
                                                 tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = main(["verify-batch", config_dir,
                     "--property", "loops", "--property", "blackholes",
                     "--dest-prefix", "10.9.0.0/24",
                     "--trace", str(trace), "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shared=" in out   # same stats line as single verify
        assert trace.exists()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "batch.query" in out
        assert "cnf.clauses{module=network}" in out

    def test_stats_command_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(SystemExit):
            main(["stats", str(bad)])
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "missing.json")])
