"""CLI tests, driving the real config-file path end to end."""

import pytest

from repro.cli import main
from repro.lang import write_config
from repro.net import NetworkBuilder


@pytest.fixture()
def config_dir(tmp_path):
    builder = NetworkBuilder()
    for name in ("R1", "R2", "R3"):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
    builder.link("R1", "R2")
    builder.link("R2", "R3")
    builder.link("R1", "R3")
    builder.device("R3").interface("host", "10.9.0.1/24")
    builder.device("R2").static_route("172.16.0.0/16", drop=True)
    # Advertise the discard route so neighbors actually send traffic into
    # the black hole (exercises the blackholes CLI check).
    builder.device("R2").redistribute("ospf", "static", metric=30)
    network = builder.build()
    for name in network.router_names():
        (tmp_path / f"{name}.cfg").write_text(
            write_config(network.device(name)))
    return str(tmp_path)


class TestShow:
    def test_show_summarizes(self, config_dir, capsys):
        assert main(["show", config_dir]) == 0
        out = capsys.readouterr().out
        assert "3 routers" in out
        assert "R1" in out and "ospf" in out


class TestVerify:
    def test_reachability_holds(self, config_dir, capsys):
        code = main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_no_preprocess_flag_same_verdicts(self, config_dir, capsys):
        for extra in ([], ["--no-preprocess"]):
            code = main(["verify", config_dir, "reachability",
                         "--dest-prefix", "10.9.0.0/24"] + extra)
            assert code == 0
            assert "HOLDS" in capsys.readouterr().out
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--property", "loops",
                     "--dest-prefix", "10.9.0.0/24",
                     "--no-preprocess"])
        assert code == 0
        assert "2/2 hold" in capsys.readouterr().out

    def test_reachability_violated_exit_code(self, config_dir, capsys):
        code = main(["verify", config_dir, "reachability",
                     "--sources", "R1",
                     "--dest-prefix", "172.20.0.0/16"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "dstIp" in out  # counterexample printed

    def test_fault_tolerance_flag(self, config_dir):
        assert main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--max-failures", "1"]) == 0
        assert main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--max-failures", "2"]) == 1

    def test_loops_and_blackholes(self, config_dir):
        assert main(["verify", config_dir, "loops",
                     "--dest-prefix", "10.9.0.0/24"]) == 0
        # The Null0 static on R2 is a black hole for covered traffic.
        assert main(["verify", config_dir, "blackholes",
                     "--dest-prefix", "172.16.0.0/16"]) == 1

    def test_bounded_length(self, config_dir):
        assert main(["verify", config_dir, "bounded-length",
                     "--sources", "R1", "--bound", "2",
                     "--dest-prefix", "10.9.0.0/24"]) == 0

    def test_waypoint_argument_validation(self, config_dir):
        with pytest.raises(SystemExit):
            main(["verify", config_dir, "waypoint",
                  "--dest-prefix", "10.9.0.0/24"])


class TestVerifyBatch:
    def test_flags_mode_all_hold(self, config_dir, capsys):
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--property", "blackholes",
                     "--property", "loops",
                     "--dest-prefix", "10.9.0.0/24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 hold" in out

    def test_spec_mode_mixed_verdicts(self, config_dir, tmp_path, capsys):
        import json
        spec = tmp_path / "queries.json"
        spec.write_text(json.dumps([
            {"property": "reachability", "dest_prefix": "10.9.0.0/24",
             "label": "rack"},
            {"property": "reachability", "sources": ["R1"],
             "dest_prefix": "172.20.0.0/16", "label": "unroutable"},
            {"property": "blackholes", "dest_prefix": "172.16.0.0/16"},
        ]))
        code = main(["verify-batch", config_dir,
                     "--spec", str(spec), "--stats"])
        assert code == 1
        out = capsys.readouterr().out
        assert "rack: HOLDS" in out
        assert "unroutable: VIOLATED" in out
        assert "dstIp" in out       # counterexample printed
        assert "clauses=" in out    # --stats output
        assert "1/3 hold" in out

    def test_workers_flag(self, config_dir, capsys):
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--property", "loops",
                     "--workers", "2"])
        assert code == 0
        assert "2/2 hold" in capsys.readouterr().out

    def test_requires_some_query(self, config_dir):
        with pytest.raises(SystemExit):
            main(["verify-batch", config_dir])

    def test_rejects_unknown_property_in_spec(self, config_dir, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text('[{"property": "nonsense"}]')
        with pytest.raises(SystemExit):
            main(["verify-batch", config_dir, "--spec", str(spec)])


class TestEquivalence:
    def test_equivalence_of_symmetric_routers(self, config_dir):
        # R1 and R3 both have three interfaces but differ (host subnet),
        # so sorted pairing flags them; R1 vs R2 differ by the static.
        code = main(["equivalence", config_dir, "R1", "R2", "--by-name"])
        assert code in (0, 1)


class TestSimulate:
    def test_trace_output(self, config_dir, capsys):
        code = main(["simulate", config_dir,
                     "--from", "R1", "--dst", "10.9.0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_failed_link_reroutes(self, config_dir, capsys):
        code = main(["simulate", config_dir,
                     "--from", "R1", "--dst", "10.9.0.5",
                     "--fail", "R1", "R3"])
        assert code == 0
        assert "R1 -> R2 -> R3" in capsys.readouterr().out


class TestObservability:
    def test_verify_stats_line(self, config_dir, capsys):
        code = main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clauses=" in out
        assert "shared=" in out and "query=" in out

    def test_verify_trace_and_profile(self, config_dir, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        code = main(["verify", config_dir, "loops",
                     "--trace", str(trace), "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "verify.encode" in out
        assert trace.exists()
        import json
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]

    def test_batch_trace_jsonl_and_stats_command(self, config_dir,
                                                 tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = main(["verify-batch", config_dir,
                     "--property", "loops", "--property", "blackholes",
                     "--dest-prefix", "10.9.0.0/24",
                     "--trace", str(trace), "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shared=" in out   # same stats line as single verify
        assert trace.exists()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "batch.query" in out
        assert "cnf.clauses{module=network}" in out

    def test_stats_command_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(SystemExit):
            main(["stats", str(bad)])
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "missing.json")])

    def test_metrics_out_is_valid_exposition(self, config_dir, tmp_path,
                                             capsys):
        from repro.obs.promexport import parse_exposition

        out = tmp_path / "metrics.prom"
        code = main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--metrics-out", str(out)])
        assert code == 0
        samples = parse_exposition(out.read_text())
        assert samples["sat_conflicts_total"]
        assert any(name.startswith("cnf_clauses") for name in samples)
        # Histogram families round-trip with consistent +Inf buckets
        # (parse_exposition raises otherwise).
        assert any(name == "sat_solve_seconds" for name in samples)

    def test_log_json_records_carry_run_id(self, config_dir, tmp_path,
                                           capsys):
        import json as jsonlib

        log = tmp_path / "run.log.jsonl"
        code = main(["verify", config_dir, "loops",
                     "--log-json", str(log)])
        assert code == 0
        records = [jsonlib.loads(line)
                   for line in log.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert "run.start" in events and "run.finish" in events
        assert len({r["run_id"] for r in records}) == 1

    def test_workers2_merged_trace_round_trips(self, config_dir,
                                               tmp_path, capsys):
        """Satellite: a workers=2 run merges worker lanes into one
        trace; serialize → read back must be lossless, and ``repro
        stats`` must digest the merged file."""
        from repro.obs.export import read_trace

        import json as jsonlib

        spec = tmp_path / "queries.json"
        spec.write_text(jsonlib.dumps([
            {"property": "reachability", "dest_prefix": "10.9.0.0/24"},
            {"property": "loops", "dest_prefix": "172.16.0.0/16"},
        ]))
        trace = tmp_path / "merged.jsonl"
        code = main(["verify-batch", config_dir, "--spec", str(spec),
                     "--workers", "2", "--trace", str(trace)])
        assert code == 0
        capsys.readouterr()
        data = read_trace(str(trace))
        lanes = {s["lane"] for s in data["spans"]}
        assert any(lane.startswith("group ") for lane in lanes)
        # Round-trip equality: re-serialize the loaded form and load it
        # again; spans and metrics must survive bit-identical.
        lines = [jsonlib.dumps({"type": "span", **s})
                 for s in data["spans"]]
        lines += [jsonlib.dumps({"type": "metric", "key": k, **entry})
                  for k, entry in data["metrics"].items()]
        copy = tmp_path / "copy.jsonl"
        copy.write_text("\n".join(lines) + "\n")
        again = read_trace(str(copy))
        assert again["spans"] == data["spans"]
        assert again["metrics"] == data["metrics"]
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "batch.group" in out


class TestLedger:
    def _ledger(self, tmp_path):
        return str(tmp_path / "ledger.sqlite")

    def _verify(self, config_dir, ledger, extra=()):
        return main(["verify", config_dir, "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--ledger", ledger] + list(extra))

    def test_verify_records_a_run(self, config_dir, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger = self._ledger(tmp_path)
        assert self._verify(config_dir, ledger) == 0
        with RunLedger(ledger) as db:
            assert len(db) == 1
            record = db.get("-1")
        assert record.command == "verify"
        assert record.config_hash
        assert record.options
        assert record.workload["routers"] == 3
        assert record.queries[0]["holds"] is True
        assert record.queries[0]["clauses"] > 0
        assert record.phases  # rollups from the implicit tracer
        assert "verify" in record.phases

    def test_no_ledger_opts_out(self, config_dir, tmp_path, capsys):
        import os

        ledger = self._ledger(tmp_path)
        assert self._verify(config_dir, ledger, ["--no-ledger"]) == 0
        assert not os.path.exists(ledger)

    def test_batch_records_all_queries(self, config_dir, tmp_path,
                                       capsys):
        from repro.obs.ledger import RunLedger

        ledger = self._ledger(tmp_path)
        code = main(["verify-batch", config_dir,
                     "--property", "reachability",
                     "--property", "loops",
                     "--dest-prefix", "10.9.0.0/24",
                     "--workers", "2", "--ledger", ledger])
        assert code == 0
        with RunLedger(ledger) as db:
            record = db.get("-1")
        assert record.command == "verify-batch"
        assert len(record.queries) == 2
        assert {q["holds"] for q in record.queries} == {True}
        # Worker spans merged at join show up in the phase rollups.
        assert "batch.group" in record.phases

    def test_diff_records_tree_hashes(self, config_dir, tmp_path,
                                      capsys):
        from repro.obs.ledger import RunLedger

        ledger = self._ledger(tmp_path)
        code = main(["diff", config_dir, config_dir,
                     "--property", "reachability",
                     "--dest-prefix", "10.9.0.0/24",
                     "--ledger", ledger])
        assert code == 0
        with RunLedger(ledger) as db:
            record = db.get("-1")
        assert record.command == "diff"
        assert record.config_hash  # NEW-side hash
        assert record.extra["old_hash"] == record.config_hash
        assert record.extra["flips"] == 0

    def test_analyze_records_findings(self, config_dir, tmp_path,
                                      capsys):
        from repro.obs.ledger import RunLedger

        ledger = self._ledger(tmp_path)
        code = main(["analyze", config_dir, "--ledger", ledger])
        capsys.readouterr()
        with RunLedger(ledger) as db:
            record = db.get("-1")
        assert record.command == "analyze"
        assert record.config_hash
        assert record.extra["exit_code"] == code
        assert "diagnostics" in record.extra

    def test_ledger_failure_never_breaks_verification(
            self, config_dir, tmp_path, capsys):
        bad = tmp_path / "dir-not-file"
        bad.mkdir()
        code = self._verify(config_dir, str(bad))
        assert code == 0  # verdict still delivered
        assert "could not record run" in capsys.readouterr().err


class TestHistoryCLI:
    @pytest.fixture()
    def two_runs(self, config_dir, tmp_path):
        ledger = str(tmp_path / "ledger.sqlite")
        for _ in range(2):
            assert main(["verify", config_dir, "reachability",
                         "--dest-prefix", "10.9.0.0/24",
                         "--ledger", ledger]) == 0
        return ledger

    def test_list_shows_runs(self, two_runs, capsys):
        capsys.readouterr()
        assert main(["history", "--ledger", two_runs, "list"]) == 0
        out = capsys.readouterr().out
        assert out.count("verify") >= 2
        assert "1/1 hold" in out

    def test_show_renders_queries_and_phases(self, two_runs, capsys):
        capsys.readouterr()
        assert main(["history", "--ledger", two_runs, "show", "-1"]) == 0
        out = capsys.readouterr().out
        assert "Reachability: HOLDS" in out
        assert "phases:" in out
        assert "clauses=" in out

    def test_compare_identical_runs_exits_zero(self, two_runs, capsys):
        capsys.readouterr()
        code = main(["history", "--ledger", two_runs,
                     "compare", "-2", "-1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_compare_detects_seeded_regression(self, two_runs, capsys):
        import sqlite3

        conn = sqlite3.connect(two_runs)
        with conn:
            newest = conn.execute(
                "SELECT run_id FROM runs ORDER BY seq DESC LIMIT 1"
            ).fetchone()[0]
            conn.execute(
                "UPDATE queries SET clauses = clauses * 2, holds = 0 "
                "WHERE run_id = ?", (newest,))
        conn.close()
        capsys.readouterr()
        code = main(["history", "--ledger", two_runs,
                     "compare", "-2", "-1"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "verdict" in out   # flip detected
        assert "clauses" in out   # count growth detected

    def test_compare_json_output(self, two_runs, capsys):
        import json as jsonlib

        capsys.readouterr()
        code = main(["history", "--ledger", two_runs,
                     "compare", "-2", "-1", "--json"])
        assert code == 0
        doc = jsonlib.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        assert doc["regressions"] == []
        assert doc["queries"][0]["name"] == "Reachability"

    def test_errors_exit_two(self, tmp_path, two_runs, capsys):
        missing = str(tmp_path / "missing.sqlite")
        assert main(["history", "--ledger", missing,
                     "show", "-1"]) == 2
        assert main(["history", "--ledger", two_runs,
                     "show", "nope"]) == 2
        assert main(["history", "--ledger", missing,
                     "compare", "-1", "-2"]) == 2
