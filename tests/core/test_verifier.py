"""End-to-end verification scenarios for the §5 property suite."""

import pytest

from repro import NetworkBuilder, Verifier
from repro.core import properties as P
from repro.core.encoder import EncoderOptions
from repro.net import AclRule, PrefixListEntry, RouteMapClause
from repro.net import ip as iplib


def ospf_chain(n=3, multipath=False):
    """R1 - R2 - ... - Rn, host subnet 10.9.0.0/24 on the last router."""
    b = NetworkBuilder()
    names = [f"R{i}" for i in range(1, n + 1)]
    for name in names:
        b.device(name).enable_ospf(multipath=multipath)
        b.device(name).ospf_network("10.0.0.0/8")
    for a, c in zip(names, names[1:]):
        b.link(a, c)
    b.device(names[-1]).interface("host", "10.9.0.1/24")
    return b, names


def diamond(multipath=True):
    """S -> {L, R} -> D with a host subnet on D."""
    b = NetworkBuilder()
    for name in ("S", "L", "R", "D"):
        b.device(name).enable_ospf(multipath=multipath)
        b.device(name).ospf_network("10.0.0.0/8")
    b.link("S", "L")
    b.link("S", "R")
    b.link("L", "D")
    b.link("R", "D")
    b.device("D").interface("host", "10.9.0.1/24")
    return b


class TestReachability:
    def test_holds_on_chain(self):
        b, names = ospf_chain(4)
        result = Verifier(b.build()).verify(P.Reachability(
            sources="all", dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_violated_without_route(self):
        b, names = ospf_chain(3)
        result = Verifier(b.build()).verify(P.Reachability(
            sources=["R1"], dest_prefix_text="172.20.0.0/16"))
        assert result.holds is False
        assert "R1" in result.message

    def test_violated_by_acl(self):
        b, names = ospf_chain(3)
        net = b.build()
        r2 = net.device("R2")
        edge = net.edge_between("R1", "R2")
        r2.acls["BLK"] = __import__("repro.net.policy", fromlist=["Acl"]) \
            .Acl("BLK", (AclRule("deny",
                                 dst_network=iplib.parse_ip("10.9.0.0"),
                                 dst_length=24),
                         AclRule("permit")))
        r2.interfaces[edge.target_iface].acl_in = "BLK"
        result = Verifier(net).verify(P.Reachability(
            sources=["R1"], dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False
        # R2 itself still reaches.
        result2 = Verifier(net).verify(P.Reachability(
            sources=["R2"], dest_prefix_text="10.9.0.0/24"))
        assert result2.holds is True

    def test_counterexample_structure(self):
        b, names = ospf_chain(2)
        result = Verifier(b.build()).verify(P.Reachability(
            sources=["R1"], dest_prefix_text="172.20.0.0/16"))
        cex = result.counterexample
        assert cex is not None
        assert iplib.prefix_contains(iplib.parse_ip("172.20.0.0"), 16,
                                     cex.dst_ip)
        assert "dstIp" in cex.summary()

    def test_fault_tolerance_distinguishes_redundancy(self):
        # The diamond survives one failure; the chain does not.
        diamond_net = diamond().build()
        chain_b, _ = ospf_chain(3)
        chain_net = chain_b.build()
        prop = P.Reachability(sources=["S"], dest_prefix_text="10.9.0.0/24")
        assert Verifier(diamond_net).verify(prop, max_failures=1).holds
        assert not Verifier(diamond_net).verify(prop, max_failures=2).holds
        prop_chain = P.Reachability(sources=["R1"],
                                    dest_prefix_text="10.9.0.0/24")
        assert not Verifier(chain_net).verify(prop_chain,
                                              max_failures=1).holds


class TestIsolation:
    def test_isolation_holds_without_any_path(self):
        b = NetworkBuilder()
        b.device("A").enable_ospf()
        b.device("B").interface("host", "10.9.0.1/24")
        net = b.build()  # no link between A and B
        result = Verifier(net).verify(P.Isolation(
            sources=["A"], dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_isolation_violated_by_connectivity(self):
        b, names = ospf_chain(2)
        result = Verifier(b.build()).verify(P.Isolation(
            sources=["R1"], dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False


class TestWaypointing:
    def test_chain_always_waypoints_middle(self):
        b, names = ospf_chain(3)
        result = Verifier(b.build()).verify(P.Waypointing(
            source="R1", waypoints=["R2"],
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_diamond_bypasses_single_side(self):
        net = diamond().build()
        result = Verifier(net).verify(P.Waypointing(
            source="S", waypoints=["L"], dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False

    def test_two_stage_chain(self):
        b, names = ospf_chain(4)
        result = Verifier(b.build()).verify(P.Waypointing(
            source="R1", waypoints=["R2", "R3"],
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_wrong_order_violated(self):
        b, names = ospf_chain(4)
        result = Verifier(b.build()).verify(P.Waypointing(
            source="R1", waypoints=["R3", "R2"],
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False


class TestPathLength:
    def test_bound_holds_on_chain(self):
        b, names = ospf_chain(4)
        net = b.build()
        assert Verifier(net).verify(P.BoundedPathLength(
            sources=["R1"], bound=3,
            dest_prefix_text="10.9.0.0/24")).holds is True

    def test_bound_violated_when_too_tight(self):
        b, names = ospf_chain(4)
        net = b.build()
        assert Verifier(net).verify(P.BoundedPathLength(
            sources=["R1"], bound=2,
            dest_prefix_text="10.9.0.0/24")).holds is False

    def test_equal_lengths_in_diamond(self):
        net = diamond().build()
        assert Verifier(net).verify(P.EqualPathLengths(
            routers=["L", "R"], dest_prefix_text="10.9.0.0/24")).holds \
            is True

    def test_unequal_lengths_detected(self):
        b, names = ospf_chain(4)
        net = b.build()
        assert Verifier(net).verify(P.EqualPathLengths(
            routers=["R1", "R3"],
            dest_prefix_text="10.9.0.0/24")).holds is False


class TestLoopsAndBlackHoles:
    def test_no_loops_in_ospf(self):
        b, names = ospf_chain(3)
        assert Verifier(b.build()).verify(
            P.NoForwardingLoops(
                dest_prefix_text="10.9.0.0/24")).holds is True

    def test_static_route_loop_detected(self):
        b = NetworkBuilder()
        b.device("A")
        b.device("B")
        b.link("A", "B", subnet="10.0.0.0/30")
        # A and B point the same prefix at each other: a loop.
        b.device("A").static_route("172.16.0.0/16", next_hop="10.0.0.2")
        b.device("B").static_route("172.16.0.0/16", next_hop="10.0.0.1")
        result = Verifier(b.build()).verify(P.NoForwardingLoops(
            dest_prefix_text="172.16.0.0/16"))
        assert result.holds is False
        assert "loop" in result.message

    def test_blackhole_free_chain(self):
        b, names = ospf_chain(3)
        assert Verifier(b.build()).verify(P.NoBlackHoles(
            dest_prefix_text="10.9.0.0/24")).holds is True

    def test_null_route_is_a_blackhole(self):
        b, names = ospf_chain(3)
        # R2 null-routes a sub-prefix that R1 forwards toward it.
        b.device("R2").static_route("10.9.0.0/24", drop=True)
        result = Verifier(b.build()).verify(P.NoBlackHoles(
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False
        assert "R2" in result.message

    def test_acl_drop_is_a_blackhole_unless_allowed(self):
        b, names = ospf_chain(3)
        net = b.build()
        from repro.net.policy import Acl
        r3 = net.device("R3")
        edge = net.edge_between("R2", "R3")
        r3.acls["BLK"] = Acl("BLK", (
            AclRule("deny", dst_network=iplib.parse_ip("10.9.0.0"),
                    dst_length=24),
            AclRule("permit")))
        net.device("R3").interfaces[edge.target_iface].acl_in = "BLK"
        assert Verifier(net).verify(P.NoBlackHoles(
            dest_prefix_text="10.9.0.0/24")).holds is False
        assert Verifier(net).verify(P.NoBlackHoles(
            allowed=["R2", "R3"],
            dest_prefix_text="10.9.0.0/24")).holds is True


class TestMultipathConsistency:
    def test_consistent_diamond(self):
        net = diamond().build()
        assert Verifier(net).verify(P.MultipathConsistency(
            dest_prefix_text="10.9.0.0/24")).holds is True

    def test_acl_on_one_branch_breaks_consistency(self):
        from repro.net.policy import Acl
        net = diamond().build()
        # Block the L branch in the data plane only.
        edge = net.edge_between("S", "L")
        dev_l = net.device("L")
        dev_l.acls["BLK"] = Acl("BLK", (
            AclRule("deny", dst_network=iplib.parse_ip("10.9.0.0"),
                    dst_length=24),
            AclRule("permit")))
        dev_l.interfaces[edge.target_iface].acl_in = "BLK"
        result = Verifier(net).verify(P.MultipathConsistency(
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False


def bgp_multihomed():
    """One router with two external peers announcing the same space."""
    b = NetworkBuilder()
    r1 = b.device("R1")
    r1.enable_bgp(65001)
    r1.route_map("PREF_HIGH", [RouteMapClause(seq=10, action="permit",
                                              set_local_pref=200)])
    b.external_peer("R1", asn=65100, name="N1", route_map_in="PREF_HIGH")
    b.external_peer("R1", asn=65200, name="N2")
    return b


class TestPreferences:
    def test_neighbor_preference_holds(self):
        net = bgp_multihomed().build()
        result = Verifier(net).verify(
            P.NeighborPreference(router="R1",
                                 peers_in_order=["N1", "N2"],
                                 dest_prefix_text="8.0.0.0/8"))
        assert result.holds is True

    def test_neighbor_preference_violated_in_wrong_order(self):
        net = bgp_multihomed().build()
        result = Verifier(net).verify(
            P.NeighborPreference(router="R1",
                                 peers_in_order=["N2", "N1"],
                                 dest_prefix_text="8.0.0.0/8"))
        assert result.holds is False


class TestPrefixLeaks:
    def test_long_prefix_leaks_without_filter(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.interface("host", "10.9.0.1/28")
        r1.bgp_network("10.9.0.0/28")
        b.external_peer("R1", asn=65100, name="N1")
        result = Verifier(b.build()).verify(P.NoPrefixLeak(
            max_length=24, dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False

    def test_aggregation_prevents_leak(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.interface("host", "10.9.0.1/28")
        r1.bgp_network("10.9.0.0/28")
        r1.config.bgp.aggregates.append((iplib.parse_ip("10.9.0.0"), 16))
        b.external_peer("R1", asn=65100, name="N1")
        result = Verifier(b.build()).verify(P.NoPrefixLeak(
            max_length=24, dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True


class TestLoadBalancing:
    def test_even_split_within_threshold(self):
        net = diamond().build()
        result = Verifier(net).verify(P.LoadBalanced(
            source_loads={"S": 1.0},
            monitor=[("L", "R")], threshold=0.01,
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is True

    def test_imbalance_detected_without_multipath(self):
        net = diamond(multipath=False).build()
        result = Verifier(net).verify(P.LoadBalanced(
            source_loads={"S": 1.0},
            monitor=[("L", "R")], threshold=0.5,
            dest_prefix_text="10.9.0.0/24"))
        assert result.holds is False
        assert "imbalance" in result.message


class TestFaultInvariance:
    def test_diamond_is_fault_invariant(self):
        net = diamond().build()
        result = Verifier(net).verify_pairwise_fault_invariance(
            k=1, dest_prefix="10.9.0.0/24")
        assert result.holds is True

    def test_chain_is_not_fault_invariant(self):
        b, names = ospf_chain(3)
        result = Verifier(b.build()).verify_pairwise_fault_invariance(
            k=1, dest_prefix="10.9.0.0/24")
        assert result.holds is False

    def test_property_form(self):
        net = diamond().build()
        prop = P.Reachability(sources=["S"],
                              dest_prefix_text="10.9.0.0/24")
        result = Verifier(net).verify_fault_invariance(prop, k=1)
        assert result.holds is True


class TestEquivalence:
    def test_identical_routers_locally_equivalent(self):
        b = NetworkBuilder()
        for name in ("A", "B"):
            dev = b.device(name)
            dev.enable_bgp(65001)
            dev.prefix_list("PL", [PrefixListEntry(
                "permit", iplib.parse_ip("10.0.0.0"), 8, ge=8, le=24)])
            dev.route_map("IMP", [RouteMapClause(
                seq=10, action="permit", match_prefix_list="PL",
                set_local_pref=150)])
        b.external_peer("A", asn=65100, name="NA", route_map_in="IMP")
        b.external_peer("B", asn=65100, name="NB", route_map_in="IMP")
        net = b.build()
        result = Verifier(net).verify_local_equivalence("A", "B")
        assert result.holds is True

    def test_acl_difference_breaks_equivalence(self):
        from repro.net.policy import Acl
        b = NetworkBuilder()
        for name in ("A", "B"):
            dev = b.device(name)
            dev.enable_bgp(65001)
            dev.interface("e9", "10.50.0.1/24" if name == "A"
                          else "10.51.0.1/24", acl_in="GUARD")
        b.device("A").acl("GUARD", [
            AclRule("deny", dst_network=iplib.parse_ip("172.16.0.0"),
                    dst_length=12),
            AclRule("permit")])
        b.device("B").acl("GUARD", [   # missing the deny entry
            AclRule("permit")])
        net = b.build()
        result = Verifier(net).verify_local_equivalence("A", "B")
        assert result.holds is False

    def test_route_map_difference_breaks_equivalence(self):
        b = NetworkBuilder()
        for name, lp in (("A", 150), ("B", 160)):
            dev = b.device(name)
            dev.enable_bgp(65001)
            dev.route_map("IMP", [RouteMapClause(
                seq=10, action="permit", set_local_pref=lp)])
        b.external_peer("A", asn=65100, name="NA", route_map_in="IMP")
        b.external_peer("B", asn=65100, name="NB", route_map_in="IMP")
        net = b.build()
        result = Verifier(net).verify_local_equivalence("A", "B")
        assert result.holds is False

    def test_full_equivalence_of_identical_networks(self):
        b1, _ = ospf_chain(3)
        b2, _ = ospf_chain(3)
        net1, net2 = b1.build(), b2.build()
        result = Verifier(net1).verify_full_equivalence(net2)
        assert result.holds is True

    def test_full_equivalence_detects_static_difference(self):
        b1, _ = ospf_chain(3)
        b2, _ = ospf_chain(3)
        b2.device("R2").static_route("10.9.0.0/24", drop=True)
        result = Verifier(b1.build()).verify_full_equivalence(b2.build())
        assert result.holds is False


class TestHijack:
    """The §8.1 management-interface hijack, distilled."""

    def build(self):
        b = NetworkBuilder()
        r1 = b.device("R1")
        r1.enable_bgp(65001)
        r1.enable_ospf()
        r2 = b.device("R2")
        r2.enable_ospf()
        b.link("R1", "R2")
        r2.interface("mgmt", "172.16.0.2/32", management=True)
        for name in ("R1", "R2"):
            b.device(name).ospf_network("10.0.0.0/8")
        r2.ospf_network("172.16.0.2/32")
        b.external_peer("R1", asn=65100, name="EXT")
        return b

    def test_hijackable_without_filter(self):
        net = self.build().build()
        result = Verifier(net).verify(P.Reachability(
            sources=["R1"], dest_prefix_text="172.16.0.2/32"))
        assert result.holds is False
        cex = result.counterexample
        assert any(a.peer == "EXT" for a in cex.announcements)

    def test_filter_fixes_hijack(self):
        b = self.build()
        r1 = b.device("R1")
        r1.prefix_list("NOMGMT", [
            PrefixListEntry("deny", iplib.parse_ip("172.16.0.0"), 12,
                            ge=12, le=32),
            PrefixListEntry("permit", 0, 0, le=32)])
        r1.route_map("GUARD", [RouteMapClause(
            seq=10, action="permit", match_prefix_list="NOMGMT")])
        net = b.build()
        for nbr in net.device("R1").bgp.neighbors:
            nbr.route_map_in = "GUARD"
        result = Verifier(net).verify(P.Reachability(
            sources=["R1"], dest_prefix_text="172.16.0.2/32"))
        assert result.holds is True


class TestEncoderOptions:
    """All optimization configurations must agree on verdicts."""

    CONFIGS = [
        EncoderOptions(),
        EncoderOptions(hoist_prefixes=False),
        EncoderOptions(slice_fields=False),
        EncoderOptions(merge_edge_records=False),
        EncoderOptions(merge_fwd=False),
        EncoderOptions(hoist_prefixes=False, slice_fields=False,
                       merge_edge_records=False, slice_connected=False,
                       merge_fwd=False),
    ]

    @pytest.mark.parametrize("options", CONFIGS,
                             ids=lambda o: repr(o)[15:55])
    def test_verdict_invariant_under_options(self, options):
        b, names = ospf_chain(3)
        net = b.build()
        good = P.Reachability(sources=["R1"],
                              dest_prefix_text="10.9.0.0/24")
        bad = P.Reachability(sources=["R1"],
                             dest_prefix_text="172.20.0.0/16")
        assert Verifier(net, options=options).verify(good).holds is True
        assert Verifier(net, options=options).verify(bad).holds is False

    @pytest.mark.parametrize("options", CONFIGS[:3],
                             ids=["opt", "nohoist", "noslice"])
    def test_bgp_verdicts_invariant(self, options):
        net = bgp_multihomed().build()
        prop = P.NeighborPreference(router="R1",
                                    peers_in_order=["N1", "N2"],
                                    dest_prefix_text="8.0.0.0/8")
        assert Verifier(net, options=options).verify(prop).holds is True


class TestMaxFailuresPrecedence:
    """An explicit ``max_failures`` argument must win over the option
    default; ``prop.failures_needed`` wins only when larger."""

    def test_explicit_zero_beats_option_default(self):
        b, names = ospf_chain(2)
        verifier = Verifier(b.build(),
                            options=EncoderOptions(max_failures=1))
        prop = P.Reachability(sources=["R1"],
                              dest_prefix_text="10.9.0.0/24")
        # Under the option default (k=1) the single link can fail and R1
        # is cut off; an explicit k=0 must suppress that.
        assert verifier.verify(prop).holds is False
        assert verifier.verify(prop, max_failures=0).holds is True

    def test_explicit_value_beats_option_default(self):
        from tests.core.test_engine import diamond
        verifier = Verifier(diamond(multipath=False),
                            options=EncoderOptions(max_failures=2))
        prop = P.Reachability(sources=["S"],
                              dest_prefix_text="10.9.0.0/24")
        assert verifier.verify(prop).holds is False
        assert verifier.verify(prop, max_failures=1).holds is True

    def test_failures_needed_still_wins_when_larger(self):
        from repro.core.verifier import effective_max_failures
        options = EncoderOptions(max_failures=0)
        plain = P.Reachability(sources=["R1"],
                               dest_prefix_text="10.9.0.0/24")
        assert effective_max_failures(plain, None, options) == 0
        assert effective_max_failures(plain, 2, options) == 2
        # A property that advertises failures_needed floors the bound
        # even against a smaller explicit argument.
        needy = P.Reachability(sources=["R1"],
                               dest_prefix_text="10.9.0.0/24",
                               failures_needed=2)
        assert effective_max_failures(needy, 0, options) == 2
        assert effective_max_failures(needy, 3, options) == 3

    def test_negative_rejected(self):
        from repro.core.verifier import effective_max_failures
        prop = P.Reachability(sources=["R1"],
                              dest_prefix_text="10.9.0.0/24")
        with pytest.raises(ValueError):
            effective_max_failures(prop, -1, EncoderOptions())
