"""Symbolic policy evaluation must agree with concrete policy evaluation."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.policy_smt import (
    PacketVars,
    acl_term,
    apply_route_map,
    fbm_const,
    fbm_symbolic,
)
from repro.core.records import FieldSet, RecordFactory, Widths
from repro.net import ip as iplib
from repro.net.device import DeviceConfig
from repro.net.policy import (
    Acl,
    AclRule,
    CommunityList,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.net.route import Route
from repro.smt import FALSE, TRUE, bv_val, bv_var, evaluate

FACTORY = RecordFactory(Widths(), FieldSet(
    local_pref=True, med=True, communities=("65001:1", "65001:2")))

DST = bv_var("ps_dst", 32)
PACKET = PacketVars(dst_ip=DST, src_ip=bv_var("ps_src", 32),
                    protocol=bv_var("ps_proto", 8),
                    dst_port=bv_var("ps_port", 16),
                    src_port=bv_val(0, 16))


@settings(max_examples=120, deadline=None)
@given(value=st.integers(0, iplib.MAX_IP),
       network=st.integers(0, iplib.MAX_IP),
       length=st.integers(0, 32))
def test_fbm_const_matches_prefix_contains(value, network, length):
    term = fbm_const(DST, iplib.network_of(network, length), length)
    got = evaluate(term, {"ps_dst": value})
    assert got == iplib.prefix_contains(network, length, value)


@settings(max_examples=120, deadline=None)
@given(prefix=st.integers(0, iplib.MAX_IP),
       value=st.integers(0, iplib.MAX_IP),
       length=st.integers(0, 32))
def test_fbm_symbolic_matches_prefix_contains(prefix, value, length):
    pvar = bv_var("ps_pfx", 32)
    lvar = bv_var("ps_len", 6)
    term = fbm_symbolic(pvar, DST, lvar)
    got = evaluate(term, {"ps_pfx": prefix, "ps_dst": value,
                          "ps_len": length})
    expected = iplib.network_of(prefix, length) == iplib.network_of(value,
                                                                    length)
    assert got == expected


def make_device():
    dev = DeviceConfig(hostname="ps")
    dev.prefix_lists["P10"] = PrefixList("P10", (
        PrefixListEntry("deny", iplib.parse_ip("10.10.0.0"), 16,
                        ge=16, le=32),
        PrefixListEntry("permit", iplib.parse_ip("10.0.0.0"), 8,
                        ge=8, le=32),
    ))
    dev.community_lists["C1"] = CommunityList("C1",
                                              communities=("65001:1",))
    dev.route_maps["RM"] = RouteMap("RM", (
        RouteMapClause(seq=10, action="deny",
                       match_community_list="C1"),
        RouteMapClause(seq=20, action="permit", match_prefix_list="P10",
                       set_local_pref=250, set_metric=7,
                       add_communities=("65001:2",)),
        RouteMapClause(seq=30, action="deny"),
    ))
    return dev


@settings(max_examples=150, deadline=None)
@given(dst=st.integers(0, iplib.MAX_IP), length=st.integers(8, 32),
       comm1=st.booleans(), lp=st.integers(0, 300),
       metric=st.integers(0, 30))
def test_route_map_symbolic_matches_concrete(dst, length, comm1, lp,
                                             metric):
    dev = make_device()
    rmap = dev.route_maps["RM"]
    # Symbolic: a concrete record pushed through the symbolic transform.
    record = FACTORY.concrete(
        "in", valid=TRUE, prefix_len=length, local_pref=lp, metric=metric,
        communities={"65001:1": TRUE if comm1 else FALSE,
                     "65001:2": FALSE})
    out = apply_route_map(FACTORY, dev, rmap, record, DST, hoisted=True)
    env = {"ps_dst": dst}
    sym_valid = evaluate(out.valid, env)
    # Concrete: the simulator's route-map evaluation on the route whose
    # prefix is the destination's covering prefix of the same length.
    network = iplib.network_of(dst, length)
    comms = frozenset({"65001:1"} if comm1 else set())
    route = Route(network=network, length=length, protocol="bgp", ad=20,
                  local_pref=lp, metric=metric, communities=comms)
    concrete = rmap.evaluate(route, dev)
    assert sym_valid == (concrete is not None)
    if concrete is not None:
        assert evaluate(out.local_pref, env) == concrete.local_pref
        assert evaluate(out.metric, env) == concrete.metric
        got_comms = {c for c, t in out.communities.items()
                     if evaluate(t, env)}
        assert got_comms == set(concrete.communities)


@settings(max_examples=150, deadline=None)
@given(dst=st.integers(0, iplib.MAX_IP),
       src=st.integers(0, iplib.MAX_IP),
       proto=st.sampled_from([0, 1, 6, 17]),
       port=st.integers(0, 65535))
def test_acl_term_matches_concrete_permits(dst, src, proto, port):
    acl = Acl("A", (
        AclRule("deny", dst_network=iplib.parse_ip("172.16.0.0"),
                dst_length=12),
        AclRule("deny", protocol=6, dst_port_low=22, dst_port_high=22),
        AclRule("permit", src_network=iplib.parse_ip("10.0.0.0"),
                src_length=8),
        AclRule("permit", dst_network=iplib.parse_ip("8.0.0.0"),
                dst_length=8),
    ))
    term = acl_term(acl, PACKET)
    env = {"ps_dst": dst, "ps_src": src, "ps_proto": proto,
           "ps_port": port}
    assert evaluate(term, env) == acl.permits(dst, src, proto, port)


def test_empty_acl_denies():
    assert acl_term(Acl("E"), PACKET) is FALSE


def test_route_map_none_is_identity():
    record = FACTORY.concrete("in", valid=TRUE, prefix_len=24)
    out = apply_route_map(FACTORY, make_device(), None, record, DST,
                          hoisted=True)
    assert out is record


@settings(max_examples=80, deadline=None)
@given(dst=st.integers(0, iplib.MAX_IP), length=st.integers(0, 32))
def test_prefix_list_unhoisted_matches_hoisted_when_prefix_covers(dst,
                                                                  length):
    """With an explicit prefix equal to the destination's covering prefix,
    the unhoisted and hoisted prefix-list evaluations agree — the §6.1
    substitution argument."""
    from repro.core.policy_smt import prefix_list_term

    factory = RecordFactory(Widths(), FieldSet(explicit_prefix=True))
    plist = PrefixList("L", (
        PrefixListEntry("permit", iplib.parse_ip("192.168.0.0"), 16,
                        ge=16, le=28),
    ))
    network = iplib.network_of(dst, length)
    record = factory.concrete("r", valid=TRUE, prefix_len=length,
                              prefix=network)
    hoisted = prefix_list_term(plist, record, DST, hoisted=True)
    explicit = prefix_list_term(plist, record, DST, hoisted=False)
    env = {"ps_dst": dst}
    assert evaluate(hoisted, env) == evaluate(explicit, env)
