"""EncoderOptions.preprocess threads through every solver entry point.

The verifier, the batch engine and the equivalence checker all build
their own :class:`~repro.smt.Solver`; each must honor the option, and
the verdicts must be independent of it (the pipeline is transparent)."""

from repro.core import (BatchQuery, EncoderOptions, Verifier,
                        properties as P, verify_batch)
from repro.smt import Solver

from tests.core.test_verifier import diamond, ospf_chain


def test_facade_default_and_toggle():
    assert Solver().preprocess is True
    assert Solver(preprocess=False)._sat.preprocess_enabled is False
    assert EncoderOptions().preprocess is True


def test_verifier_threads_option():
    builder, _ = ospf_chain(3)
    network = builder.build()
    prop = P.Reachability(sources="all", dest_prefix_text="10.9.0.0/24")
    results = {}
    for toggle in (True, False):
        verifier = Verifier(network,
                            options=EncoderOptions(preprocess=toggle))
        results[toggle] = verifier.verify(prop).holds
    assert results[True] == results[False] is True


def test_fault_invariance_threads_option():
    network = diamond().build()
    prop = P.Reachability(sources="all", dest_prefix_text="10.9.0.0/24")
    for toggle in (True, False):
        verifier = Verifier(network,
                            options=EncoderOptions(preprocess=toggle,
                                                   max_failures=1))
        assert verifier.verify(prop).holds is True


def test_batch_engine_threads_option():
    builder, _ = ospf_chain(3)
    network = builder.build()
    queries = [BatchQuery(P.Reachability(
                   sources="all", dest_prefix_text="10.9.0.0/24")),
               BatchQuery(P.NoForwardingLoops())]
    verdicts = {}
    for toggle in (True, False):
        results = verify_batch(
            network, queries,
            options=EncoderOptions(preprocess=toggle))
        verdicts[toggle] = [r.holds for r in results]
    assert verdicts[True] == verdicts[False] == [True, True]
