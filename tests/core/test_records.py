"""Symbolic records: the preference terms must agree with the concrete
decision process in :mod:`repro.sim.decision` on all inputs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.records import (
    FieldSet,
    RecordFactory,
    Widths,
    fold_best,
    prefer_bgp,
    prefer_igp,
    prefer_overall,
)
from repro.net.route import Route
from repro.sim.decision import bgp_prefers
from repro.smt import FALSE, TRUE, evaluate

FACTORY = RecordFactory(Widths(), FieldSet(local_pref=True, med=True,
                                           neighbor_asn=True))


def concrete_record(name, **kw):
    return FACTORY.concrete(name, **kw)


def route_of(kw):
    return Route(network=0, length=kw.get("prefix_len", 0),
                 protocol="bgp", ad=kw.get("ad", 20),
                 local_pref=kw.get("local_pref", 100),
                 metric=kw.get("metric", 0), med=kw.get("med", 0),
                 router_id=kw.get("router_id", 0),
                 bgp_internal=kw.get("bgp_internal", False))


bgp_fields = st.fixed_dictionaries({
    "prefix_len": st.integers(0, 32),
    "local_pref": st.integers(0, 300),
    "metric": st.integers(0, 10),
    "med": st.integers(0, 5),
    "router_id": st.integers(0, 7),
    "bgp_internal": st.booleans(),
})


@settings(max_examples=150, deadline=None)
@given(a=bgp_fields, b=bgp_fields)
def test_prefer_bgp_matches_concrete_decision(a, b):
    rec_a = concrete_record("a", **a)
    rec_b = concrete_record("b", **b)
    term = prefer_bgp(rec_a, rec_b, "always")
    symbolic = evaluate(term, {})
    # The concrete comparison ignores prefix length (per-prefix tables);
    # fold it in the same way the symbolic term does.
    if a["prefix_len"] != b["prefix_len"]:
        concrete = a["prefix_len"] > b["prefix_len"]
    else:
        concrete = bgp_prefers(route_of(a), route_of(b), "always")
    assert symbolic == concrete


@settings(max_examples=100, deadline=None)
@given(a=bgp_fields, b=bgp_fields,
       asn_a=st.integers(0, 2), asn_b=st.integers(0, 2))
def test_prefer_bgp_same_as_mode(a, b, asn_a, asn_b):
    rec_a = concrete_record("a", neighbor_asn=asn_a, **a)
    rec_b = concrete_record("b", neighbor_asn=asn_b, **b)
    term = prefer_bgp(rec_a, rec_b, "same-as")
    symbolic = evaluate(term, {})
    if a["prefix_len"] != b["prefix_len"]:
        concrete = a["prefix_len"] > b["prefix_len"]
    else:
        ra = Route(network=0, length=0, protocol="bgp", ad=20,
                   local_pref=a["local_pref"], metric=a["metric"],
                   med=a["med"], router_id=a["router_id"],
                   bgp_internal=a["bgp_internal"], as_path=(asn_a,))
        rb = Route(network=0, length=0, protocol="bgp", ad=20,
                   local_pref=b["local_pref"], metric=b["metric"],
                   med=b["med"], router_id=b["router_id"],
                   bgp_internal=b["bgp_internal"], as_path=(asn_b,))
        concrete = bgp_prefers(ra, rb, "same-as")
    assert symbolic == concrete


igp_fields = st.fixed_dictionaries({
    "prefix_len": st.integers(0, 32),
    "metric": st.integers(0, 20),
    "router_id": st.integers(0, 7),
})


@settings(max_examples=100, deadline=None)
@given(a=igp_fields, b=igp_fields)
def test_prefer_igp_is_strict_total_order(a, b):
    rec_a = concrete_record("a", **a)
    rec_b = concrete_record("b", **b)
    forward = evaluate(prefer_igp(rec_a, rec_b), {})
    backward = evaluate(prefer_igp(rec_b, rec_a), {})
    assert not (forward and backward)
    if a != b:
        assert forward or backward
    else:
        assert not forward and not backward


@settings(max_examples=80, deadline=None)
@given(candidates=st.lists(igp_fields, min_size=1, max_size=5),
       valids=st.lists(st.booleans(), min_size=5, max_size=5))
def test_fold_best_matches_concrete_selection(candidates, valids):
    records = []
    routes = []
    for i, fields in enumerate(candidates):
        valid = valids[i]
        rec = FACTORY.concrete(f"c{i}", valid=TRUE if valid else FALSE,
                               ad=110, **fields)
        records.append(rec)
        if valid:
            routes.append(Route(network=0, length=fields["prefix_len"],
                                protocol="ospf", ad=110,
                                metric=fields["metric"],
                                router_id=fields["router_id"]))
    best, chosen = fold_best(FACTORY, records, prefer_igp)
    flags = [evaluate(c, {}) for c in chosen]
    if not routes:
        assert evaluate(best.valid, {}) is False
        assert not any(flags)
        return
    assert evaluate(best.valid, {}) is True
    assert sum(flags) == 1
    # The winner must match the concrete selection, which orders by
    # (longest prefix, metric, rid) among valid candidates.
    expected = max(
        (r for r in routes),
        key=lambda r: (r.length, -r.metric, -r.router_id),
    )
    # Resolve ties like the fold: first candidate with the winning key.
    winner_index = flags.index(True)
    won = records[winner_index]
    assert evaluate(won.prefix_len, {}) == expected.length
    assert evaluate(won.metric, {}) == expected.metric
    assert evaluate(won.router_id, {}) == expected.router_id
    assert evaluate(best.metric, {}) == expected.metric


def test_fold_best_empty():
    best, chosen = fold_best(FACTORY, [], prefer_igp)
    assert evaluate(best.valid, {}) is False
    assert chosen == []


def test_prefer_overall_orders_by_length_then_ad():
    lo_ad = concrete_record("a", prefix_len=8, ad=1)
    hi_ad = concrete_record("b", prefix_len=8, ad=110)
    longer = concrete_record("c", prefix_len=24, ad=200)
    assert evaluate(prefer_overall(lo_ad, hi_ad), {}) is True
    assert evaluate(prefer_overall(hi_ad, lo_ad), {}) is False
    assert evaluate(prefer_overall(longer, lo_ad), {}) is True


def test_record_ite_merges_fieldwise():
    from repro.smt import bool_var

    cond = bool_var("ri_c")
    a = concrete_record("a", metric=3)
    b = concrete_record("b", metric=9)
    merged = FACTORY.record_ite(cond, a, b)
    assert evaluate(merged.metric, {"ri_c": True}) == 3
    assert evaluate(merged.metric, {"ri_c": False}) == 9


def test_equate_is_guarded_on_validity():
    from repro.smt import Solver, SAT

    free = FACTORY.fresh("ge_a")
    # An invalid record whose metric "equals itself plus one" through the
    # equation ring: must stay satisfiable because fields are guarded.
    from repro.smt import bv_add, bv_val, eq, not_

    shifted = free.with_(metric=bv_add(free.metric,
                                       bv_val(1, FACTORY.widths.metric)))
    solver = Solver()
    solver.add(*FACTORY.equate(free, shifted))
    solver.add(not_(free.valid))
    assert solver.check() is SAT
