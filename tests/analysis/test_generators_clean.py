"""Property: the repo's own network generators produce lint-clean
networks.  The generators seed *semantic* bugs (hijacks, black holes)
on purpose; those must not register as configuration lint — and any
syntactic sloppiness in a generator (duplicate addresses, one-sided
sessions, dangling references) is a real generator bug this catches.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import analyze_network
from repro.gen.cloud import SUITE_SIZE, build_cloud_network
from repro.gen.fattree import build_fattree


def assert_clean(network, smt):
    report = analyze_network(network, smt=smt)
    assert report.diagnostics == [], [str(d) for d in report.sorted()]
    assert report.exit_code == 0


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=SUITE_SIZE - 1))
def test_cloud_networks_lint_clean(index):
    assert_clean(build_cloud_network(index).network, smt=False)


@settings(max_examples=4, deadline=None)
@given(st.sampled_from([2, 4]), st.booleans())
def test_fattree_networks_lint_clean(pods, with_backbone):
    network = build_fattree(pods, with_backbone=with_backbone).network
    assert_clean(network, smt=False)


def test_cloud_network_clean_under_smt_rules():
    # One representative from each bug class plus a clean one; the SMT
    # shadow prover must not flag the generators' policies either.
    for index in (0, 70, 97, 128):
        assert_clean(build_cloud_network(index).network, smt=True)


def test_fattree_clean_under_smt_rules():
    assert_clean(build_fattree(4).network, smt=True)


def test_cloud_rack_subnets_avoid_link_allocator_space():
    # Regression: rack subnets used ``10.<index % 200>.…`` which at
    # index 128 collided with the 10.128.0.0/30 link address allocator
    # (duplicate interface address, TOP006).
    net = build_cloud_network(128).network
    addresses = [iface.address
                 for name in net.router_names()
                 for iface in net.device(name).interfaces.values()
                 if iface.address]
    assert len(addresses) == len(set(addresses))
