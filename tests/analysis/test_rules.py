"""Seeded defect corpus for the syntactic lint rules.

Every rule has a firing test (minimal bad config, exact rule id and
file:line span asserted) and a non-firing near-miss (the closest clean
config, asserted *not* to trigger the rule).
"""

import pytest

from repro.analysis import Severity, analyze_configs
from repro.analysis.registry import all_rules


def line_of(text: str, needle: str) -> int:
    """1-based line number of the first line containing ``needle``."""
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not in config")


def analyze(texts, **kw):
    kw.setdefault("smt", False)
    return analyze_configs(texts, **kw)


def only(report, rule_id):
    found = report.by_rule(rule_id)
    assert found, f"expected {rule_id} to fire; got {report.sorted()}"
    return found


def absent(report, rule_id):
    found = report.by_rule(rule_id)
    assert not found, f"{rule_id} fired unexpectedly: {found}"


BASE = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
"""


# ----------------------------------------------------------------------
# REF001 — undefined route-map on a neighbor
# ----------------------------------------------------------------------

REF001_BAD = BASE + """\
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map NO_SUCH_MAP in
"""

REF001_OK = BASE + """\
route-map NO_SUCH_MAP permit 10
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map NO_SUCH_MAP in
"""


def test_ref001_fires_with_span():
    report = analyze({"r1.cfg": REF001_BAD})
    (diag,) = only(report, "REF001")
    assert diag.severity is Severity.ERROR
    assert diag.file == "r1.cfg"
    assert diag.line == line_of(REF001_BAD, "route-map NO_SUCH_MAP in")
    assert "NO_SUCH_MAP" in diag.message
    assert report.exit_code == 2


def test_ref001_near_miss():
    absent(analyze({"r1.cfg": REF001_OK}), "REF001")


# ----------------------------------------------------------------------
# REF002 — undefined prefix-list in a route-map clause
# ----------------------------------------------------------------------

REF002_BAD = BASE + """\
route-map IMPORT permit 10
 match ip address prefix-list NO_SUCH_PL
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""

REF002_OK = BASE + """\
ip prefix-list NO_SUCH_PL seq 10 permit 10.9.0.0/16 le 24
route-map IMPORT permit 10
 match ip address prefix-list NO_SUCH_PL
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""


def test_ref002_fires_with_span():
    report = analyze({"r1.cfg": REF002_BAD})
    (diag,) = only(report, "REF002")
    assert diag.severity is Severity.ERROR
    # The span is the clause's block-open line, not the match sub-line.
    assert diag.line == line_of(REF002_BAD, "route-map IMPORT permit 10")
    assert diag.file == "r1.cfg"


def test_ref002_near_miss():
    absent(analyze({"r1.cfg": REF002_OK}), "REF002")


# ----------------------------------------------------------------------
# REF003 — undefined community-list in a route-map clause
# ----------------------------------------------------------------------

REF003_BAD = BASE + """\
route-map IMPORT permit 10
 match community NO_SUCH_CL
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""

REF003_OK = BASE + """\
ip community-list standard NO_SUCH_CL permit 65001:100
route-map IMPORT permit 10
 match community NO_SUCH_CL
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""


def test_ref003_fires_with_span():
    report = analyze({"r1.cfg": REF003_BAD})
    (diag,) = only(report, "REF003")
    assert diag.severity is Severity.ERROR
    assert diag.line == line_of(REF003_BAD, "route-map IMPORT permit 10")


def test_ref003_near_miss():
    absent(analyze({"r1.cfg": REF003_OK}), "REF003")


# ----------------------------------------------------------------------
# REF004 — undefined ACL applied to an interface
# ----------------------------------------------------------------------

REF004_BAD = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
 ip access-group NO_SUCH_ACL in
"""

REF004_OK = """\
hostname r1
access-list NO_SUCH_ACL permit ip any
interface eth0
 ip address 10.0.0.1 255.255.255.0
 ip access-group NO_SUCH_ACL in
"""


def test_ref004_fires_with_span():
    report = analyze({"r1.cfg": REF004_BAD})
    (diag,) = only(report, "REF004")
    assert diag.severity is Severity.ERROR
    assert diag.line == line_of(REF004_BAD, "ip access-group")
    assert "eth0" in diag.message


def test_ref004_near_miss():
    absent(analyze({"r1.cfg": REF004_OK}), "REF004")


# ----------------------------------------------------------------------
# POL001 — defined but unused policy object
# ----------------------------------------------------------------------

POL001_BAD = BASE + """\
ip prefix-list ORPHAN seq 10 permit 10.9.0.0/16
"""

POL001_OK = BASE + """\
ip prefix-list ORPHAN seq 10 permit 10.9.0.0/16
route-map IMPORT permit 10
 match ip address prefix-list ORPHAN
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""


def test_pol001_fires_with_span():
    report = analyze({"r1.cfg": POL001_BAD})
    (diag,) = only(report, "POL001")
    assert diag.severity is Severity.WARNING
    assert diag.line == line_of(POL001_BAD, "prefix-list ORPHAN")
    assert "ORPHAN" in diag.message
    assert report.exit_code == 1


def test_pol001_near_miss():
    absent(analyze({"r1.cfg": POL001_OK}), "POL001")


# ----------------------------------------------------------------------
# POL002 — duplicate route-map sequence number
# ----------------------------------------------------------------------

POL002_BAD = BASE + """\
route-map IMPORT permit 10
 set local-preference 110
route-map IMPORT permit 10
 set local-preference 120
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""

POL002_OK = POL002_BAD.replace("route-map IMPORT permit 10\n"
                               " set local-preference 120",
                               "route-map IMPORT permit 20\n"
                               " set local-preference 120")


def test_pol002_fires_with_span():
    report = analyze({"r1.cfg": POL002_BAD})
    (diag,) = only(report, "POL002")
    assert diag.severity is Severity.WARNING
    # The second block with the repeated seq is the offender.
    lines = [i for i, line in enumerate(POL002_BAD.splitlines(), 1)
             if "route-map IMPORT permit 10" in line]
    assert diag.line == lines[1]


def test_pol002_near_miss():
    absent(analyze({"r1.cfg": POL002_OK}), "POL002")


# ----------------------------------------------------------------------
# STA001 — unresolvable static route
# ----------------------------------------------------------------------

STA001_BAD_HOP = BASE + """\
ip route 10.50.0.0 255.255.0.0 192.168.99.1
"""

STA001_BAD_IFACE = BASE + """\
ip route 10.50.0.0 255.255.0.0 eth9
"""

STA001_OK = BASE + """\
ip route 10.50.0.0 255.255.0.0 10.0.0.9
ip route 10.60.0.0 255.255.0.0 Null0
"""


def test_sta001_fires_on_unreachable_next_hop():
    report = analyze({"r1.cfg": STA001_BAD_HOP})
    (diag,) = only(report, "STA001")
    assert diag.severity is Severity.WARNING
    assert diag.line == line_of(STA001_BAD_HOP, "ip route")
    assert "192.168.99.1" in diag.message


def test_sta001_fires_on_undefined_interface():
    report = analyze({"r1.cfg": STA001_BAD_IFACE})
    (diag,) = only(report, "STA001")
    assert "eth9" in diag.message


def test_sta001_near_miss_connected_hop_and_drop():
    absent(analyze({"r1.cfg": STA001_OK}), "STA001")


# ----------------------------------------------------------------------
# CFG001 — missing hostname
# ----------------------------------------------------------------------

CFG001_BAD = """\
interface eth0
 ip address 10.0.0.1 255.255.255.0
"""


def test_cfg001_fires():
    report = analyze({"r1.cfg": CFG001_BAD})
    (diag,) = only(report, "CFG001")
    assert diag.severity is Severity.WARNING
    assert diag.line == 1


def test_cfg001_near_miss():
    absent(analyze({"r1.cfg": BASE}), "CFG001")


# ----------------------------------------------------------------------
# TOP001 — asymmetric BGP session
# ----------------------------------------------------------------------

TOP001_A = """\
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.252
router bgp 65001
 neighbor 10.0.12.2 remote-as 65001
"""

TOP001_B_SILENT = """\
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.252
router bgp 65001
"""

TOP001_B_OK = TOP001_B_SILENT + """\
 neighbor 10.0.12.1 remote-as 65001
"""


def test_top001_fires_with_span():
    report = analyze({"r1.cfg": TOP001_A, "r2.cfg": TOP001_B_SILENT})
    (diag,) = only(report, "TOP001")
    assert diag.severity is Severity.WARNING
    assert diag.device == "r1"
    assert diag.file == "r1.cfg"
    assert diag.line == line_of(TOP001_A, "neighbor 10.0.12.2")
    assert "r2" in diag.message


def test_top001_near_miss():
    report = analyze({"r1.cfg": TOP001_A, "r2.cfg": TOP001_B_OK})
    absent(report, "TOP001")


def test_top001_ignores_external_peers():
    # 10.0.12.2 unowned: the session partner is the symbolic environment.
    absent(analyze({"r1.cfg": TOP001_A}), "TOP001")


# ----------------------------------------------------------------------
# TOP002 — remote-as mismatch
# ----------------------------------------------------------------------

TOP002_A = """\
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.252
router bgp 65001
 neighbor 10.0.12.2 remote-as 65099
"""

TOP002_B = """\
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.252
router bgp 65002
 neighbor 10.0.12.1 remote-as 65001
"""


def test_top002_fires_with_span():
    report = analyze({"r1.cfg": TOP002_A, "r2.cfg": TOP002_B})
    (diag,) = only(report, "TOP002")
    assert diag.severity is Severity.ERROR
    assert diag.device == "r1"
    assert diag.line == line_of(TOP002_A, "remote-as 65099")
    assert "65099" in diag.message and "65002" in diag.message


def test_top002_near_miss():
    fixed = TOP002_A.replace("remote-as 65099", "remote-as 65002")
    report = analyze({"r1.cfg": fixed, "r2.cfg": TOP002_B})
    absent(report, "TOP002")


# ----------------------------------------------------------------------
# TOP003 — overlapping subnets with different masks
# ----------------------------------------------------------------------

TOP003_A = """\
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.252
"""

TOP003_B_BAD = """\
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.0
"""

TOP003_B_OK = TOP003_B_BAD.replace("255.255.255.0", "255.255.255.252")


def test_top003_fires():
    report = analyze({"r1.cfg": TOP003_A, "r2.cfg": TOP003_B_BAD})
    (diag,) = only(report, "TOP003")
    assert diag.severity is Severity.WARNING
    assert "different mask" in diag.message


def test_top003_near_miss():
    report = analyze({"r1.cfg": TOP003_A, "r2.cfg": TOP003_B_OK})
    absent(report, "TOP003")


# ----------------------------------------------------------------------
# TOP004 — duplicate router-id
# ----------------------------------------------------------------------

TOP004_A = """\
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.252
router ospf 1
 router-id 9.9.9.9
"""

TOP004_B_BAD = """\
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.252
router ospf 1
 router-id 9.9.9.9
"""

TOP004_B_OK = TOP004_B_BAD.replace("router-id 9.9.9.9",
                                   "router-id 8.8.8.8")


def test_top004_fires_with_span():
    report = analyze({"r1.cfg": TOP004_A, "r2.cfg": TOP004_B_BAD})
    (diag,) = only(report, "TOP004")
    assert diag.severity is Severity.ERROR
    assert diag.device == "r2"
    assert diag.file == "r2.cfg"
    assert diag.line == line_of(TOP004_B_BAD, "router-id 9.9.9.9")


def test_top004_near_miss():
    report = analyze({"r1.cfg": TOP004_A, "r2.cfg": TOP004_B_OK})
    absent(report, "TOP004")


# ----------------------------------------------------------------------
# TOP005 — duplicate hostname across files
# ----------------------------------------------------------------------

DUP_HOST = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
"""

DUP_HOST2 = """\
hostname r1
interface eth0
 ip address 10.0.99.1 255.255.255.0
"""


def test_top005_fires_on_second_file():
    report = analyze({"a.cfg": DUP_HOST, "b.cfg": DUP_HOST2})
    (diag,) = only(report, "TOP005")
    assert diag.severity is Severity.ERROR
    assert diag.file == "b.cfg"          # first file wins; second flagged
    assert diag.line == 1
    assert "a.cfg" in diag.message


def test_top005_near_miss():
    fixed = DUP_HOST2.replace("hostname r1", "hostname r2")
    report = analyze({"a.cfg": DUP_HOST, "b.cfg": fixed})
    absent(report, "TOP005")


# ----------------------------------------------------------------------
# TOP006 — duplicate interface address across devices
# ----------------------------------------------------------------------

TOP006_A = """\
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.252
"""

TOP006_B_BAD = """\
hostname r2
interface eth0
 ip address 10.0.12.1 255.255.255.252
"""

TOP006_B_OK = TOP006_B_BAD.replace("10.0.12.1", "10.0.12.2")


def test_top006_fires_with_span():
    report = analyze({"r1.cfg": TOP006_A, "r2.cfg": TOP006_B_BAD})
    (diag,) = only(report, "TOP006")
    assert diag.severity is Severity.ERROR
    assert diag.device == "r2"
    assert diag.line == line_of(TOP006_B_BAD, "interface eth0")


def test_top006_near_miss():
    report = analyze({"r1.cfg": TOP006_A, "r2.cfg": TOP006_B_OK})
    absent(report, "TOP006")


# ----------------------------------------------------------------------
# SYN001 — syntax error
# ----------------------------------------------------------------------

SYN001_BAD = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
 frobnicate the widget
"""


def test_syn001_fires_with_span():
    report = analyze({"r1.cfg": SYN001_BAD})
    (diag,) = only(report, "SYN001")
    assert diag.severity is Severity.ERROR
    assert diag.file == "r1.cfg"
    assert diag.line == line_of(SYN001_BAD, "frobnicate")


def test_syn001_near_miss():
    report = analyze({"r1.cfg": BASE})
    absent(report, "SYN001")


# ----------------------------------------------------------------------
# Catalog hygiene
# ----------------------------------------------------------------------

def test_every_rule_has_a_test_in_this_suite():
    """The corpus covers the whole catalog: each syntactic rule id has a
    firing test above; SMT rules are covered in test_smt_rules.py,
    DEP001 in test_deps.py, and the XDF cross-device rules in
    test_xdf_rules.py."""
    syntactic = {r.id for r in all_rules() if r.scope != "smt"}
    covered = {"REF001", "REF002", "REF003", "REF004", "POL001",
               "POL002", "STA001", "CFG001", "TOP001", "TOP002",
               "TOP003", "TOP004", "TOP005", "TOP006", "SYN001",
               "DEP001", "XDF001", "XDF002", "XDF003", "XDF004"}
    assert syntactic == covered


def test_rule_ids_are_stable_api():
    ids = sorted(r.id for r in all_rules())
    assert ids == ["CFG001", "DEP001", "POL001", "POL002",
                   "REF001", "REF002", "REF003", "REF004",
                   "SMT001", "SMT002", "SMT003", "SMT004",
                   "STA001", "SYN001",
                   "TOP001", "TOP002", "TOP003", "TOP004",
                   "TOP005", "TOP006",
                   "XDF001", "XDF002", "XDF003", "XDF004"]


def test_rules_carry_docstrings_and_severities():
    for r in all_rules():
        assert r.description, f"{r.id} has no description"
        assert isinstance(r.severity, Severity)


@pytest.mark.parametrize("filename", ["r1.cfg"])
def test_clean_example_config_is_clean(filename):
    import pathlib
    root = pathlib.Path(__file__).resolve().parents[2]
    texts = {p.name: p.read_text()
             for p in sorted((root / "examples" / "configs").glob("*.cfg"))}
    report = analyze_configs(texts, smt=True)
    assert report.diagnostics == [], [str(d) for d in report.sorted()]
    assert report.exit_code == 0
