"""Reporting surface: noqa suppression, SARIF output, exit codes.

The exit-code matrix is the CI contract of ``repro analyze``:
0 = clean or info-only (suppressed findings excluded), 1 = warnings,
2 = errors.  Inline ``! repro: noqa`` directives move findings out of
the active set without losing them — text/JSON reports count them,
SARIF carries them with an in-source suppression.
"""

import json

import pytest

from repro.analysis import analyze_configs, format_text, to_json, to_sarif
from repro.analysis.engine import _noqa_directives
from repro.cli import main

CLEAN = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
router bgp 65001
 network 10.0.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
"""

# REF001 (error): route-map bound to a session but never defined.
DANGLING = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
router bgp 65001
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map NOPE in
"""

# XDF004 (warning): the rack prefix is filtered toward one of two
# redundant egresses.
ASYMMETRIC = """\
hostname hub
interface eth0
 ip address 10.0.0.1 255.255.255.0
interface eth1
 ip address 10.0.1.1 255.255.255.0
interface rack
 ip address 10.9.0.1 255.255.255.0
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map LEAN deny 10
 match ip address prefix-list RACK
route-map LEAN permit 20
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map LEAN out
 neighbor 10.0.1.2 remote-as 65003
"""

PEERS = {
    "left.cfg": """\
hostname left
interface eth0
 ip address 10.0.0.2 255.255.255.0
router bgp 65002
 neighbor 10.0.0.1 remote-as 65001
""",
    "right.cfg": """\
hostname right
interface eth0
 ip address 10.0.1.2 255.255.255.0
router bgp 65003
 neighbor 10.0.1.1 remote-as 65001
""",
}


def analyze(texts):
    return analyze_configs(texts, smt=False)


def suppress_at(text, needle, directive):
    """Insert a directive line right above the line containing needle."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if needle in line:
            return "\n".join(lines[:i] + [directive] + lines[i:]) + "\n"
    raise AssertionError(f"{needle!r} not in config")


# ----------------------------------------------------------------------
# Directive parsing
# ----------------------------------------------------------------------

def test_noqa_directive_targets_next_meaningful_line():
    text = "hostname r1\n! repro: noqa REF001\n\ninterface eth0\n"
    assert _noqa_directives(text) == {4: frozenset({"REF001"})}


def test_noqa_variants_and_stacking():
    assert _noqa_directives("! repro: noqa\nline\n") == {2: frozenset()}
    assert _noqa_directives("!repro: NOQA ref001, xdf003\nline\n") == {
        2: frozenset({"REF001", "XDF003"})}
    # Two stacked directives merge onto the same target line.
    text = "! repro: noqa A001\n! repro: noqa B002\nline\n"
    assert _noqa_directives(text) == {3: frozenset({"A001", "B002"})}
    # A trailing directive with no following line is ignored.
    assert _noqa_directives("line\n! repro: noqa A001\n") == {}


def test_plain_comments_are_not_directives():
    assert _noqa_directives("! a comment\nline\n! noqa\nother\n") == {}


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------

def test_noqa_moves_finding_to_suppressed():
    report = analyze({"r1.cfg": DANGLING})
    (diag,) = report.by_rule("REF001")
    assert report.exit_code == 2

    texts = {"r1.cfg": suppress_at(DANGLING, "route-map NOPE in",
                                   f"! repro: noqa {diag.rule_id}")}
    report = analyze(texts)
    assert not report.by_rule("REF001")
    assert [d.rule_id for d in report.suppressed] == ["REF001"]
    assert report.exit_code == 0


def test_noqa_for_other_rule_leaves_finding_active():
    texts = {"r1.cfg": suppress_at(DANGLING, "route-map NOPE in",
                                   "! repro: noqa XDF003")}
    report = analyze(texts)
    assert report.by_rule("REF001")
    assert not report.suppressed
    assert report.exit_code == 2


def test_bare_noqa_suppresses_any_rule_on_the_line():
    texts = {"r1.cfg": suppress_at(DANGLING, "route-map NOPE in",
                                   "! repro: noqa")}
    report = analyze(texts)
    assert not report.diagnostics
    assert len(report.suppressed) == 1


def test_suppression_is_per_file():
    # The same directive in an unrelated file must not leak over.
    texts = {"r1.cfg": DANGLING,
             "r2.cfg": suppress_at(CLEAN.replace("r1", "r2"),
                                   "interface eth0", "! repro: noqa REF001")}
    report = analyze(texts)
    assert report.by_rule("REF001")
    assert not report.suppressed


# ----------------------------------------------------------------------
# Report renderers
# ----------------------------------------------------------------------

def suppressed_report():
    return analyze({"r1.cfg": suppress_at(DANGLING, "route-map NOPE in",
                                          "! repro: noqa REF001")})


def test_text_report_counts_suppressed():
    text = format_text(suppressed_report())
    assert "analysis clean" in text
    assert "(1 suppressed)" in text


def test_json_report_lists_suppressed():
    doc = json.loads(to_json(suppressed_report()))
    assert doc["exit_code"] == 0
    assert doc["suppressed_count"] == 1
    assert doc["suppressed"][0]["rule_id"] == "REF001"
    assert doc["diagnostics"] == []


def test_sarif_shape_and_suppressions():
    doc = json.loads(to_sarif(suppressed_report()))
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    rule_ids = {r["id"] for r in driver["rules"]}
    assert "REF001" in rule_ids      # metadata for every rule that ran
    (result,) = run["results"]
    assert result["ruleId"] == "REF001"
    assert result["level"] == "error"
    assert result["suppressions"] == [{"kind": "inSource"}]
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "r1.cfg"
    assert loc["region"]["startLine"] > 0


def test_sarif_severity_mapping():
    report = analyze({"hub.cfg": ASYMMETRIC, **PEERS})
    doc = json.loads(to_sarif(report))
    levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
    assert levels["XDF004"] == "warning"


# ----------------------------------------------------------------------
# CLI exit-code matrix
# ----------------------------------------------------------------------

def write_dir(tmp_path, texts):
    for name, text in texts.items():
        (tmp_path / name).write_text(text)
    return str(tmp_path)


class TestAnalyzeExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        code = main(["analyze", write_dir(tmp_path, {"r1.cfg": CLEAN}),
                     "--no-smt"])
        assert code == 0
        assert "analysis clean" in capsys.readouterr().out

    def test_warning_exits_one(self, tmp_path, capsys):
        code = main(["analyze",
                     write_dir(tmp_path, {"hub.cfg": ASYMMETRIC, **PEERS}),
                     "--no-smt"])
        assert code == 1
        assert "XDF004" in capsys.readouterr().out

    def test_error_exits_two(self, tmp_path):
        assert main(["analyze", write_dir(tmp_path, {"r1.cfg": DANGLING}),
                     "--no-smt"]) == 2

    def test_suppressed_only_exits_zero(self, tmp_path, capsys):
        texts = {"hub.cfg": suppress_at(ASYMMETRIC, "router bgp 65001",
                                        "! repro: noqa XDF004"), **PEERS}
        code = main(["analyze", write_dir(tmp_path, texts), "--no-smt"])
        assert code == 0
        assert "suppressed" in capsys.readouterr().out

    def test_sarif_flag_emits_sarif(self, tmp_path, capsys):
        code = main(["analyze", write_dir(tmp_path, {"r1.cfg": DANGLING}),
                     "--no-smt", "--sarif"])
        assert code == 2    # output format never changes the exit code
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "REF001"

    def test_sarif_and_json_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["analyze", write_dir(tmp_path, {"r1.cfg": CLEAN}),
                  "--json", "--sarif"])

    def test_rules_filter_applies_to_suppressed(self, tmp_path, capsys):
        texts = {"r1.cfg": suppress_at(DANGLING, "route-map NOPE in",
                                       "! repro: noqa REF001")}
        code = main(["analyze", write_dir(tmp_path, texts),
                     "--no-smt", "--json", "--rules", "XDF003"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["suppressed"] == [] and doc["diagnostics"] == []
