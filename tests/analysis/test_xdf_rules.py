"""Cross-device dataflow rules XDF001–XDF004: firing and near-miss.

Every rule gets one fixture where it must fire (with a meaningful
span) and one *near-miss* — the minimal edit that makes the situation
legitimate — where it must stay silent.
"""

from repro.analysis import analyze_configs


def analyze(texts):
    return analyze_configs(texts, smt=False)


def line_of(text: str, needle: str) -> int:
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not in config")


# `hub` speaks BGP to two internal neighbors (left, right) so the
# egress-consistency rules have redundant paths to compare.
LEFT = """\
hostname left
interface eth0
 ip address 10.0.0.2 255.255.255.0
router bgp 65002
 neighbor 10.0.0.1 remote-as 65001
"""

RIGHT = """\
hostname right
interface eth0
 ip address 10.0.1.2 255.255.255.0
router bgp 65003
 neighbor 10.0.1.1 remote-as 65001
"""

HUB_BASE = """\
hostname hub
interface eth0
 ip address 10.0.0.1 255.255.255.0
interface eth1
 ip address 10.0.1.1 255.255.255.0
interface rack
 ip address 10.9.0.1 255.255.255.0
"""


def network(hub_tail, left=LEFT, right=RIGHT):
    return {"hub.cfg": HUB_BASE + hub_tail, "left.cfg": left,
            "right.cfg": right}


# ----------------------------------------------------------------------
# XDF001 — announced prefix filtered on every egress
# ----------------------------------------------------------------------

XDF001_FIRES = network("""\
ip prefix-list NOT_RACK seq 10 permit 172.16.0.0/16
route-map EXPORT permit 10
 match ip address prefix-list NOT_RACK
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map EXPORT out
 neighbor 10.0.1.2 remote-as 65003
 neighbor 10.0.1.2 route-map EXPORT out
""")


def test_xdf001_fires_when_every_egress_denies():
    report = analyze(XDF001_FIRES)
    (diag,) = report.by_rule("XDF001")
    assert "10.9.0.0/24" in diag.message
    assert diag.device == "hub"
    assert diag.file == "hub.cfg"
    assert diag.line == line_of(XDF001_FIRES["hub.cfg"], "router bgp 65001")


def test_xdf001_near_miss_one_session_passes():
    # Unfiltering ONE of the two sessions gives the route a way out.
    texts = network("""\
ip prefix-list NOT_RACK seq 10 permit 172.16.0.0/16
route-map EXPORT permit 10
 match ip address prefix-list NOT_RACK
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map EXPORT out
 neighbor 10.0.1.2 remote-as 65003
""")
    assert not analyze(texts).by_rule("XDF001")
    # ...but advertising to only one of two redundant paths is exactly
    # the XDF004 asymmetry.
    assert analyze(texts).by_rule("XDF004")


def test_xdf001_silent_when_export_permits_the_prefix():
    texts = network("""\
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map EXPORT permit 10
 match ip address prefix-list RACK
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map EXPORT out
 neighbor 10.0.1.2 remote-as 65003
 neighbor 10.0.1.2 route-map EXPORT out
""")
    report = analyze(texts)
    assert not report.by_rule("XDF001")
    assert not report.by_rule("XDF004")


# ----------------------------------------------------------------------
# XDF002 — import clause shadowed by upstream filtering
# ----------------------------------------------------------------------

def hub_announcing(extra=""):
    return HUB_BASE + """\
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
""" + extra


LEFT_SHADOWED = """\
hostname left
interface eth0
 ip address 10.0.0.2 255.255.255.0
ip prefix-list CORP seq 10 permit 172.16.0.0/16 le 24
route-map IMPORT deny 10
 match ip address prefix-list CORP
route-map IMPORT permit 20
router bgp 65002
 neighbor 10.0.0.1 remote-as 65001
 neighbor 10.0.0.1 route-map IMPORT in
"""


def test_xdf002_fires_on_unreachable_match():
    # hub can only ever send 10.* routes; left's clause 10 matches
    # 172.16/16 — nothing that session can carry.
    texts = network("", left=LEFT_SHADOWED)
    texts["hub.cfg"] = hub_announcing()
    report = analyze(texts)
    diags = report.by_rule("XDF002")
    assert len(diags) == 1
    diag = diags[0]
    assert "clause 10" in diag.message and "hub" in diag.message
    assert diag.device == "left"
    assert diag.line == line_of(LEFT_SHADOWED, "route-map IMPORT deny 10")


def test_xdf002_near_miss_upstream_announces_the_prefix():
    # The same import policy is legitimate once hub can actually send
    # a 172.16/16 route.
    texts = network("", left=LEFT_SHADOWED)
    texts["hub.cfg"] = hub_announcing(" network 172.16.4.0 mask 255.255.255.0\n")
    assert not analyze(texts).by_rule("XDF002")


def test_xdf002_silent_for_external_sessions():
    # An external peer can announce anything: never shadowed.
    texts = {"left.cfg": LEFT_SHADOWED.replace(
        "neighbor 10.0.0.1", "neighbor 10.0.0.9")}
    assert not analyze(texts).by_rule("XDF002")


# ----------------------------------------------------------------------
# XDF003 — community set but never matched network-wide
# ----------------------------------------------------------------------

HUB_TAGS = """\
route-map TAG permit 10
 set community 65001:99
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map TAG out
"""

LEFT_MATCHES = """\
hostname left
interface eth0
 ip address 10.0.0.2 255.255.255.0
ip community-list standard FROM_HUB permit 65001:99
route-map IMPORT permit 10
 match community FROM_HUB
router bgp 65002
 neighbor 10.0.0.1 remote-as 65001
 neighbor 10.0.0.1 route-map IMPORT in
"""


def test_xdf003_fires_when_no_list_matches_the_value():
    texts = network(HUB_TAGS)
    report = analyze(texts)
    (diag,) = report.by_rule("XDF003")
    assert "65001:99" in diag.message
    assert diag.device == "hub"
    assert diag.line == line_of(texts["hub.cfg"], "route-map TAG permit 10")
    assert str(diag.severity) == "info"


def test_xdf003_near_miss_value_matched_elsewhere():
    # The matching community-list lives on a DIFFERENT device — only a
    # network-wide view can tell this apart from the typo case.
    assert not analyze(network(HUB_TAGS, left=LEFT_MATCHES)).by_rule("XDF003")


def test_xdf003_fires_on_value_mismatch_typo():
    # A list exists but matches a different value: classic fat-finger.
    left = LEFT_MATCHES.replace("65001:99", "65001:90")
    diags = analyze(network(HUB_TAGS, left=left)).by_rule("XDF003")
    assert len(diags) == 1


# ----------------------------------------------------------------------
# XDF004 — asymmetric filtering across redundant egresses
# ----------------------------------------------------------------------

XDF004_FIRES = network("""\
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map LEAN deny 10
 match ip address prefix-list RACK
route-map LEAN permit 20
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map LEAN out
 neighbor 10.0.1.2 remote-as 65003
""")


def test_xdf004_fires_on_asymmetric_egress_policy():
    report = analyze(XDF004_FIRES)
    (diag,) = report.by_rule("XDF004")
    assert "10.9.0.0/24" in diag.message
    assert "10.0.0.2" in diag.message     # filtered toward
    assert "10.0.1.2" in diag.message     # advertised to
    assert diag.device == "hub"


def test_xdf004_near_miss_symmetric_policy():
    # Applying the same deny on BOTH egresses is consistent — that
    # situation is XDF001's finding (never leaves), not asymmetry.
    texts = network("""\
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map LEAN deny 10
 match ip address prefix-list RACK
route-map LEAN permit 20
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map LEAN out
 neighbor 10.0.1.2 remote-as 65003
 neighbor 10.0.1.2 route-map LEAN out
""")
    report = analyze(texts)
    assert not report.by_rule("XDF004")
    assert report.by_rule("XDF001")


def test_xdf004_silent_with_single_session():
    # One egress cannot be asymmetric with itself.
    texts = {"hub.cfg": HUB_BASE + """\
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map LEAN deny 10
 match ip address prefix-list RACK
route-map LEAN permit 20
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 route-map LEAN out
""", "left.cfg": LEFT}
    assert not analyze(texts).by_rule("XDF004")
