"""The dangling-reference hazard sink.

An undefined prefix-list / community-list / route-map used to make the
policy code silently evaluate to FALSE (encoder) or no-match
(simulator).  The semantics are kept — these tests pin them, and pin
that encoder and simulator agree — but the event is now observable:
warn-once by default, collectable, and fatal under strict mode.
"""

import warnings

import pytest

from repro.analysis.diagnostics import AnalysisError, ConfigAnalysisWarning
from repro.analysis.hazards import (
    DanglingReferenceError,
    DanglingReferenceWarning,
    collect_dangling,
    strict_references,
)
from repro.analysis.smt_rules import clause_guards
from repro.core.verifier import Verifier
from repro.lang.parser import parse_config
from repro.net.policy import _clause_matches
from repro.net.route import PROTO_BGP, Route
from repro.net.topology import Network
from repro.smt import Solver, UNSAT, not_

CFG_DANGLING_PL = """\
hostname {host}
interface eth0
 ip address 10.0.0.1 255.255.255.0
route-map IMPORT permit 10
 match ip address prefix-list {plist}
route-map IMPORT permit 20
 set local-preference 200
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""


def _device(host="r1", plist="GHOST"):
    return parse_config(CFG_DANGLING_PL.format(host=host, plist=plist),
                        source=f"{host}.cfg")


def _route():
    return Route(network=0x0A090100, length=24, protocol=PROTO_BGP)


# ----------------------------------------------------------------------
# Semantics pin: simulator and encoder agree on the dangling clause
# ----------------------------------------------------------------------

def test_simulator_clause_with_dangling_plist_never_matches():
    device = _device("sim1", "SIMGHOST")
    rmap = device.route_maps["IMPORT"]
    clauses = sorted(rmap.clauses, key=lambda c: c.seq)
    with collect_dangling():
        assert _clause_matches(clauses[0], _route(), device) is False
        # The route falls through to seq 20 and is permitted+transformed.
        out = rmap.evaluate(_route(), device)
    assert out is not None
    assert out.local_pref == 200


def test_encoder_clause_with_dangling_plist_is_false():
    device = _device("enc1", "ENCGHOST")
    rmap = device.route_maps["IMPORT"]
    with collect_dangling():
        guards, wf, clauses = clause_guards(device, rmap)
    # Guard of the dangling clause is unsatisfiable (encoded FALSE) ...
    solver = Solver()
    solver.add(wf, guards[0])
    assert solver.check() is UNSAT
    # ... and the match-free seq-20 guard is valid (negation UNSAT), so
    # both layers send every route to the same clause: exact agreement.
    solver = Solver()
    solver.add(wf, not_(guards[1]))
    assert solver.check() is UNSAT


# ----------------------------------------------------------------------
# Observability: warn-once, collect, strict
# ----------------------------------------------------------------------

def test_dangling_reference_warns_once_per_object():
    device = _device("warn1", "WARNGHOST")
    rmap = device.route_maps["IMPORT"]
    clause = sorted(rmap.clauses, key=lambda c: c.seq)[0]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _clause_matches(clause, _route(), device)
        _clause_matches(clause, _route(), device)
    ours = [w for w in caught
            if issubclass(w.category, DanglingReferenceWarning)]
    assert len(ours) == 1
    assert "WARNGHOST" in str(ours[0].message)


def test_collect_dangling_captures_instead_of_warning():
    device = _device("col1", "COLGHOST")
    rmap = device.route_maps["IMPORT"]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with collect_dangling() as seen:
            rmap.evaluate(_route(), device)
    assert [w for w in caught
            if issubclass(w.category, DanglingReferenceWarning)] == []
    (ref,) = seen
    assert (ref.device, ref.kind, ref.name) == \
        ("col1", "prefix-list", "COLGHOST")
    assert "seq 10" in ref.context


def test_strict_references_raises_in_simulator_path():
    device = _device("str1", "STRGHOST")
    rmap = device.route_maps["IMPORT"]
    with strict_references():
        with pytest.raises(DanglingReferenceError, match="STRGHOST"):
            rmap.evaluate(_route(), device)


def test_strict_references_raises_in_encoder_path():
    device = _device("str2", "STRGHOST2")
    rmap = device.route_maps["IMPORT"]
    with strict_references():
        with pytest.raises(DanglingReferenceError, match="STRGHOST2"):
            clause_guards(device, rmap)


# ----------------------------------------------------------------------
# Verifier preflight
# ----------------------------------------------------------------------

BAD_NET = """\
hostname r1
interface eth0
 ip address 10.0.12.1 255.255.255.252
router bgp 65001
 neighbor 10.0.12.2 remote-as 65001
 neighbor 10.0.12.2 route-map MISSING out
"""

PEER = """\
hostname r2
interface eth0
 ip address 10.0.12.2 255.255.255.252
router bgp 65001
 neighbor 10.0.12.1 remote-as 65001
"""


def _bad_network():
    return Network([parse_config(BAD_NET, source="r1.cfg"),
                    parse_config(PEER, source="r2.cfg")])


def test_verifier_preflight_warns_and_records_report():
    with pytest.warns(ConfigAnalysisWarning):
        verifier = Verifier(_bad_network())
    report = verifier.preflight_report
    assert report is not None
    assert [d.rule_id for d in report.sorted()
            if d.severity.name == "ERROR"] == ["REF001"]


def test_verifier_strict_raises_analysis_error():
    with pytest.raises(AnalysisError) as exc:
        Verifier(_bad_network(), strict=True)
    assert exc.value.report.by_rule("REF001")
    assert "MISSING" in str(exc.value)


def test_verifier_preflight_opt_out_is_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        verifier = Verifier(_bad_network(), preflight=False)
    assert verifier.preflight_report is None


def test_verifier_preflight_clean_network_is_silent():
    devices = [parse_config(PEER.replace("10.0.12.1", "10.0.12.9"),
                            source="r2.cfg")]
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        verifier = Verifier(Network(devices))
    assert verifier.preflight_report is not None
    assert verifier.preflight_report.diagnostics == []
