"""Route-propagation dataflow analysis: domain, fixpoint, pruning.

The PrefixSet domain and the fixpoint are the soundness foundation of
the dataflow-tightened diff cones (test_deps.py) and of the cold-clause
pruning option, so the properties here are deliberately adversarial:
the ``ge < length`` prefix-list corner, widening behavior on unbounded
inputs, and bit-identical verdicts with pruning on and off.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.dataflow import (
    ANY,
    EMPTY,
    WIDEN_LIMIT,
    PrefixSet,
    analyze_dataflow,
    clause_cold_for_prefix,
    loop_candidates,
    prune_cold_for_prefix,
)
from repro.core import properties as P
from repro.core.encoder import EncoderOptions
from repro.core.verifier import Verifier
from repro.net import ip as iplib, network_from_texts
from repro.net.policy import PrefixListEntry


def pfx(text):
    return iplib.parse_prefix(text)


def entry(text, ge=None, le=None, action="permit"):
    net, length = pfx(text)
    return PrefixListEntry(action=action, network=net, length=length,
                           ge=ge, le=le)


# ----------------------------------------------------------------------
# Abstract domain
# ----------------------------------------------------------------------

def test_singleton_overlaps_sub_and_super_prefixes():
    s = PrefixSet.from_prefix(*pfx("10.9.0.0/16"))
    assert s.overlaps(*pfx("10.9.4.0/24"))     # descendant
    assert s.overlaps(*pfx("10.0.0.0/8"))      # ancestor
    assert s.overlaps(*pfx("10.9.0.0/16"))     # itself
    assert not s.overlaps(*pfx("10.8.0.0/16"))  # sibling


def test_entry_range_respects_ge_le():
    s = PrefixSet.from_entry(entry("10.9.0.0/16", ge=24, le=28))
    # Routes in range overlap their own address space...
    assert s.overlaps(*pfx("10.9.4.0/24"))
    # ...but nothing outside the /16.
    assert not s.overlaps(*pfx("10.8.0.0/24"))


def test_ge_below_length_keeps_short_route_overlap_sound():
    # `ip prefix-list X permit 10.0.0.0/24 ge 8` compares only the
    # first 24 bits but accepts any length >= 8: it matches the route
    # 10.0.0.0/8, which overlaps 10.3.1.0/24 — an address nowhere near
    # 10.0.0.0/24.  The naive (network, length) range would miss it.
    s = PrefixSet.from_entry(entry("10.0.0.0/24", ge=8))
    e = entry("10.0.0.0/24", ge=8)
    assert e.matches(*pfx("10.0.0.0/8"))       # the concrete semantics
    assert s.overlaps(*pfx("10.3.1.0/24"))     # so the abstraction must


def test_unsatisfiable_entry_is_empty():
    assert PrefixSet.from_entry(entry("10.0.0.0/24", ge=28, le=26)).is_empty()
    assert PrefixSet.from_entry(entry("10.0.0.0/24", ge=33)).is_empty()


def test_union_subsumes_and_widens():
    wide = PrefixSet.from_entry(entry("10.0.0.0/8", ge=8, le=32))
    narrow = PrefixSet.from_prefix(*pfx("10.9.0.0/24"))
    assert wide.union(narrow) == wide           # subsumption
    assert EMPTY.union(narrow) == narrow
    assert ANY.union(narrow).is_any
    # Exceeding WIDEN_LIMIT disjoint ranges widens to ANY.
    s = EMPTY
    for i in range(WIDEN_LIMIT + 1):
        s = s.union(PrefixSet.from_prefix((i + 1) << 24, 24))
    assert s.is_any


def test_intersect_identities():
    s = PrefixSet.from_entry(entry("10.9.0.0/16", ge=16, le=24))
    assert ANY.intersect(s) == s
    assert s.intersect(ANY) == s
    assert s.intersect(EMPTY).is_empty()
    sibling = PrefixSet.from_prefix(*pfx("10.8.0.0/16"))
    assert s.intersect(sibling).is_empty()
    sub = PrefixSet.from_prefix(*pfx("10.9.4.0/24"))
    got = s.intersect(sub)
    assert got.overlaps(*pfx("10.9.4.0/24"))
    assert not got.overlaps(*pfx("10.9.5.0/24"))


@settings(max_examples=200, deadline=None)
@given(
    net=st.integers(min_value=0, max_value=(1 << 32) - 1),
    length=st.integers(min_value=0, max_value=32),
    base=st.integers(min_value=0, max_value=(1 << 32) - 1),
    elen=st.integers(min_value=0, max_value=32),
    ge=st.integers(min_value=0, max_value=32),
    width=st.integers(min_value=0, max_value=8),
)
def test_prop_entry_overlap_never_misses_concrete_match(
    net, length, base, elen, ge, width
):
    # Soundness of the abstraction: whenever the concrete entry matches
    # some route R and R overlaps the query prefix, overlaps() is True.
    e = entry(iplib.format_prefix(iplib.network_of(base, elen), elen),
              ge=ge, le=min(32, ge + width))
    s = PrefixSet.from_entry(e)
    route = (iplib.network_of(net, length), length)
    if e.matches(*route) and iplib.prefix_overlaps(
        route[0], route[1], net, length
    ):
        assert s.overlaps(net, length)


# ----------------------------------------------------------------------
# Fixpoint propagation
# ----------------------------------------------------------------------

CHAIN = {
    "a.cfg": """\
hostname a
interface eth0
 ip address 10.0.0.1 255.255.255.0
interface rack
 ip address 10.9.0.1 255.255.255.0
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
""",
    "b.cfg": """\
hostname b
interface eth0
 ip address 10.0.0.2 255.255.255.0
interface eth1
 ip address 10.0.1.1 255.255.255.0
router bgp 65002
 neighbor 10.0.0.1 remote-as 65001
 neighbor 10.0.1.2 remote-as 65003
""",
    "c.cfg": """\
hostname c
interface eth0
 ip address 10.0.1.2 255.255.255.0
router bgp 65003
 neighbor 10.0.1.1 remote-as 65002
""",
}


def test_fixpoint_propagates_across_the_chain():
    df = analyze_dataflow(network_from_texts(CHAIN))
    assert not df.widened
    rack = pfx("10.9.0.0/24")
    assert df.origin["a"].overlaps(*rack)
    assert df.learned["b"].overlaps(*rack)    # one hop
    assert df.learned["c"].overlaps(*rack)    # two hops (fixpoint)
    assert df.advertised["b"].overlaps(*rack)
    # a's rack prefix is not something c originates.
    assert not df.origin["c"].overlaps(*rack)


def test_export_filter_bounds_downstream_learning():
    texts = dict(CHAIN)
    texts["b.cfg"] = texts["b.cfg"] + """\
ip prefix-list LINKS seq 10 permit 10.0.0.0/16 le 32
route-map EXPORT permit 10
 match ip address prefix-list LINKS
router bgp 65002
 neighbor 10.0.1.2 route-map EXPORT out
"""
    df = analyze_dataflow(network_from_texts(texts))
    rack = pfx("10.9.0.0/24")
    assert df.learned["b"].overlaps(*rack)
    # b's export map only passes 10.0.0.0/16: c can never hear the rack.
    assert not df.learned["c"].overlaps(*rack)
    assert not df.session_inflow[("c", pfx("10.0.1.1/32")[0])].overlaps(*rack)


def test_external_peer_widens_session_inflow_to_any():
    texts = dict(CHAIN)
    texts["c.cfg"] = texts["c.cfg"] + """\
interface edge
 ip address 203.0.113.1 255.255.255.0
router bgp 65003
 neighbor 203.0.113.9 remote-as 65099
"""
    df = analyze_dataflow(network_from_texts(texts))
    assert df.session_inflow[("c", pfx("203.0.113.9/32")[0])].is_any
    assert df.learned["c"].is_any
    # The unbounded input stays local to reachable devices: a and b
    # hear it too (c re-advertises), but the analysis never *narrows*.
    assert df.learned["b"].is_any
    assert not df.widened   # ANY inflow is not fixpoint divergence


def test_unresolvable_session_contributes_nothing():
    texts = dict(CHAIN)
    texts["c.cfg"] = texts["c.cfg"] + """\
router bgp 65003
 neighbor 198.51.100.9 remote-as 65100
"""
    df = analyze_dataflow(network_from_texts(texts))
    assert df.session_inflow[("c", pfx("198.51.100.9/32")[0])].is_empty()
    assert not df.learned["c"].is_any


def test_hot_clause_seqs_distinguish_relevant_clauses():
    texts = dict(CHAIN)
    texts["b.cfg"] = texts["b.cfg"] + """\
ip prefix-list RACK seq 10 permit 10.9.0.0/24
ip prefix-list OTHER seq 10 permit 172.16.0.0/16 le 24
route-map IMPORT deny 10
 match ip address prefix-list OTHER
route-map IMPORT permit 20
 match ip address prefix-list RACK
router bgp 65002
 neighbor 10.0.0.1 route-map IMPORT in
"""
    df = analyze_dataflow(network_from_texts(texts))
    rack = pfx("10.9.0.0/24")
    hot = df.hot_clause_seqs("b", "IMPORT", rack)
    # Clause 10 matches 172.16/16 routes the session never carries and
    # that cannot overlap the rack anyway; clause 20 is the live one.
    assert hot == frozenset({20})
    # An unbound map has no inputs: everything cold.
    assert df.hot_clause_seqs("b", "NOSUCH", rack) == frozenset()


def test_loop_candidates_mirror_default_candidates():
    # The pseudo-fragment hashed into structural cones must equal the
    # property's pivot set, for networks with and without risky devices.
    texts = dict(CHAIN)
    texts["b.cfg"] = texts["b.cfg"] + """\
route-map PREF permit 10
 set local-preference 200
router bgp 65002
 neighbor 10.0.0.1 route-map PREF in
"""
    from repro.core.encoder import NetworkEncoder

    for case in (CHAIN, texts):
        net = network_from_texts(case)
        enc = NetworkEncoder(net, EncoderOptions()).encode()
        expected = tuple(
            P.NoForwardingLoops.default_candidates(enc)
        )
        assert loop_candidates(net) == expected


# ----------------------------------------------------------------------
# Cold-clause pruning
# ----------------------------------------------------------------------

PRUNE_TEXTS = dict(CHAIN)
PRUNE_TEXTS["b.cfg"] = PRUNE_TEXTS["b.cfg"] + """\
ip prefix-list COLD seq 10 permit 172.16.0.0/16 le 24
ip prefix-list HOT seq 10 permit 10.0.0.0/8 le 32
route-map IMPORT deny 10
 match ip address prefix-list COLD
route-map IMPORT permit 20
 match ip address prefix-list HOT
router bgp 65002
 neighbor 10.0.0.1 route-map IMPORT in
"""


def test_prune_drops_only_cold_clauses():
    net = network_from_texts(PRUNE_TEXTS)
    dst = pfx("10.9.0.0/24")
    dev = net.devices["b"]
    clauses = net.devices["b"].route_maps["IMPORT"].clauses
    cold = [c.seq for c in clauses if clause_cold_for_prefix(dev, c, dst)]
    assert cold == [10]
    pruned, dropped = prune_cold_for_prefix(net, dst)
    assert dropped == 1
    assert [c.seq for c in pruned.devices["b"].route_maps["IMPORT"].clauses] \
        == [20]
    # The original network is untouched.
    assert len(net.devices["b"].route_maps["IMPORT"].clauses) == 2


def test_prune_never_drops_local_pref_clauses():
    texts = dict(CHAIN)
    texts["b.cfg"] = texts["b.cfg"] + """\
ip prefix-list COLD seq 10 permit 172.16.0.0/16 le 24
route-map IMPORT permit 10
 match ip address prefix-list COLD
 set local-preference 200
router bgp 65002
 neighbor 10.0.0.1 route-map IMPORT in
"""
    net = network_from_texts(texts)
    pruned, dropped = prune_cold_for_prefix(net, pfx("10.9.0.0/24"))
    assert dropped == 0
    # NoForwardingLoops.default_candidates scans the pruned network for
    # local-pref-setting maps; dropping the clause would flip b out of
    # the candidate set.
    assert loop_candidates(pruned) == loop_candidates(net)


def verdicts(net, options):
    verifier = Verifier(net, options=options)
    dst = "10.9.0.0/24"
    results = [
        verifier.verify(P.Reachability(sources="all", dest_prefix_text=dst)),
        verifier.verify(P.NoForwardingLoops(dest_prefix_text=dst)),
        verifier.verify(P.NoBlackHoles(dest_prefix_text=dst)),
    ]
    return [r.holds for r in results]


def test_cold_pruning_preserves_verdicts():
    net = network_from_texts(PRUNE_TEXTS)
    plain = verdicts(net, EncoderOptions())
    pruned = verdicts(net, EncoderOptions(prune_cold_clauses=True))
    assert plain == pruned
    assert None not in plain


def test_cold_pruning_preserves_a_violation_verdict():
    # b denies the rack prefix outright: reachability from c is broken,
    # and pruning the genuinely cold clause must not resurrect it.
    texts = dict(CHAIN)
    texts["b.cfg"] = texts["b.cfg"] + """\
ip prefix-list COLD seq 10 permit 172.16.0.0/16 le 24
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map IMPORT permit 5
 match ip address prefix-list COLD
route-map IMPORT deny 10
 match ip address prefix-list RACK
route-map IMPORT permit 20
router bgp 65002
 neighbor 10.0.0.1 route-map IMPORT in
"""
    net = network_from_texts(texts)
    plain = verdicts(net, EncoderOptions())
    pruned = verdicts(net, EncoderOptions(prune_cold_clauses=True))
    assert plain == pruned
    assert plain[0] is False  # reachability is indeed broken
