"""Dependency analysis: cones of influence, slice hashes, DEP001.

The slice-hash properties are the soundness contract of the verdict
cache (``repro diff``):

a. edits outside a query's cone never change its cache key;
b. semantic edits inside the cone always change it;
c. comment/whitespace edits never change it (the parser discards them
   before the canonical fragments are written).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import analyze_configs
from repro.analysis.deps import (
    cache_key,
    device_hash,
    network_facts,
    options_fingerprint,
    query_cone,
)
from repro.core import properties as P
from repro.core.encoder import EncoderOptions
from repro.net import network_from_texts


def line_of(text: str, needle: str) -> int:
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not in config")


# ----------------------------------------------------------------------
# A two-router fixture: r1 announces a rack /24 and carries a stub
# interface that no session, static route or link can observe.
# ----------------------------------------------------------------------

R1 = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
interface rack
 ip address 10.9.0.1 255.255.255.0
interface stub
 ip address 192.168.{stub_octet}.1 255.255.255.0
router bgp 65001
 network 10.9.0.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
"""

R2 = """\
hostname r2
interface eth0
 ip address 10.0.0.2 255.255.255.0
interface rack
 ip address 10.8.0.1 255.255.255.0
router bgp 65002
 network 10.8.0.0 mask 255.255.255.0
 neighbor 10.0.0.1 remote-as 65001
"""

DST = "10.9.0.0/24"


def build(stub_octet=5, r1_extra="", r2_text=R2):
    texts = {"r1.cfg": R1.format(stub_octet=stub_octet) + r1_extra,
             "r2.cfg": r2_text}
    return network_from_texts(texts)


def key_of(network, prop=None, **kw):
    if prop is None:
        prop = P.Reachability(sources="all", dest_prefix_text=DST)
    return cache_key(network, prop, max_failures=kw.pop("max_failures", None),
                     assumptions=kw.pop("assumptions", ()),
                     options=kw.pop("options", None))


# ----------------------------------------------------------------------
# Cone computation
# ----------------------------------------------------------------------

def test_cone_excludes_stub_interface():
    net = build()
    prop = P.Reachability(sources="all", dest_prefix_text=DST)
    cone = query_cone(net, prop)
    assert cone is not None and cone.bounded
    r1 = cone.fragments["r1"]
    assert "interface:stub" not in r1
    assert "interface:eth0" in r1      # link subnet + session address
    assert "interface:rack" in r1      # overlaps the destination
    assert "bgp" in r1 and "bgp.neighbor:10.0.0.2" in r1
    assert "bgp.network:10.9.0.0/24" in r1
    # r2's announcement of a non-overlapping rack is out of the cone.
    assert "bgp.network:10.8.0.0/24" not in cone.fragments["r2"]


def test_stub_with_session_address_inside_is_kept():
    # If any device's BGP session address falls inside the stub subnet,
    # session resolution depends on it: it must stay in the slice.
    net = build(r1_extra="router bgp 65001\n"
                         " neighbor 192.168.5.9 remote-as 65003\n")
    facts = network_facts(net)
    assert any(192 << 24 <= ip for ip in facts.neighbor_ips)
    cone = query_cone(net, P.Reachability(sources="all",
                                          dest_prefix_text=DST))
    assert "interface:stub" in cone.fragments["r1"]


def test_unbounded_cone_covers_everything():
    net = build()
    prop = P.NoForwardingLoops()          # no destination prefix
    cone = query_cone(net, prop)
    assert cone is not None and not cone.bounded
    assert cone.reason
    full = query_cone(net, P.Reachability(sources="all",
                                          dest_prefix_text=DST))
    for name in net.devices:
        assert full.fragments[name] <= cone.fragments[name]
    # Still cacheable: a hit just means nothing at all changed.
    assert key_of(net, prop) is not None


def test_structural_loops_property_keeps_all_route_maps():
    extra = ("route-map SHADOW permit 10\n"
             " set local-preference 200\n"
             "router bgp 65002\n"
             " neighbor 10.0.0.1 route-map SHADOW in\n")
    net = build(r2_text=R2 + extra)
    cone = query_cone(net, P.NoForwardingLoops(dest_prefix_text=DST))
    assert "route-map:SHADOW" in cone.fragments["r2"]


# ----------------------------------------------------------------------
# Uncacheable queries
# ----------------------------------------------------------------------

def test_unknown_property_subclass_is_not_cacheable():
    class Custom(P.Reachability):
        pass

    net = build()
    prop = Custom(sources="all", dest_prefix_text=DST)
    assert query_cone(net, prop) is None
    assert key_of(net, prop) is None


def test_unknown_assumption_is_not_cacheable():
    net = build()
    assert key_of(net, assumptions=(object(),)) is None


def test_auto_named_external_peer_is_not_cacheable():
    # r2's neighbor 10.0.0.99 resolves via the link subnet but nobody
    # owns the address: the topology layer invents the peer name from a
    # global counter, so queries naming it cannot be cached.
    net = build(r2_text=R2 + "router bgp 65002\n"
                             " neighbor 10.0.0.99 remote-as 65099\n")
    (ext,) = net.externals
    assert ext.name.startswith("ext-")
    prop = P.Reachability(sources="all", dest_peer=ext.name)
    assert key_of(net, prop) is None


def test_lazy_property_is_not_cacheable():
    net = build()
    prop = P.Reachability(sources="all", dest_prefix_text=DST)
    prop.lazy = True
    assert query_cone(net, prop) is None


# ----------------------------------------------------------------------
# Slice-hash / cache-key properties (satellite: the soundness contract)
# ----------------------------------------------------------------------

def test_out_of_cone_edit_keeps_cache_key():
    base = key_of(build(stub_octet=5))
    edited = key_of(build(stub_octet=6))
    assert base is not None
    assert base == edited


def test_in_cone_semantic_edit_changes_cache_key():
    base = key_of(build())
    # Announcing one more prefix inside the destination's /24 clearly
    # lands in the cone.
    edited = key_of(build(
        r1_extra="router bgp 65001\n"
                 " network 10.9.0.128 mask 255.255.255.128\n"))
    assert base != edited


def test_remote_in_cone_edit_changes_cache_key():
    # An edit on the *other* device (session policy) is in the cone too.
    extra = ("route-map NOPE deny 10\n"
             "router bgp 65002\n"
             " neighbor 10.0.0.1 route-map NOPE out\n")
    assert key_of(build()) != key_of(build(r2_text=R2 + extra))


def test_comment_and_whitespace_edits_are_hash_neutral():
    noisy = R2.replace("interface eth0",
                       "! core uplink\ninterface eth0") + "\n!\n\n"
    assert key_of(build()) == key_of(build(r2_text=noisy))


def test_failure_bound_and_options_change_the_key():
    net = build()
    assert key_of(net) != key_of(net, max_failures=1)
    assert key_of(net) != key_of(
        net, options=EncoderOptions(model_ibgp=False))
    # Solver-side strategies are verdict-preserving: same key.
    assert key_of(net) == key_of(
        net, options=EncoderOptions(preprocess=False, portfolio=4))


def test_options_fingerprint_ignores_solver_strategy_fields():
    a = options_fingerprint(EncoderOptions())
    assert a == options_fingerprint(EncoderOptions(preprocess=False))
    assert a != options_fingerprint(EncoderOptions(exact_failures=True))


def test_device_hash_tracks_canonical_form():
    net_a, net_b = build(), build(stub_octet=6)
    h = device_hash
    assert h(net_a.devices["r1"]) != h(net_b.devices["r1"])
    assert h(net_a.devices["r2"]) == h(net_b.devices["r2"])


@settings(max_examples=25, deadline=None)
@given(octet=st.integers(min_value=2, max_value=254))
def test_prop_out_of_cone_stub_renumber_never_changes_key(octet):
    assert key_of(build(stub_octet=octet)) == key_of(build(stub_octet=5))


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_prop_comment_insertion_never_changes_key(data):
    lines = R2.splitlines()
    pos = data.draw(st.integers(min_value=0, max_value=len(lines)))
    comment = data.draw(st.sampled_from(["!", "! note", ""]))
    noisy = "\n".join(lines[:pos] + [comment] + lines[pos:]) + "\n"
    assert key_of(build(r2_text=noisy)) == key_of(build())


# ----------------------------------------------------------------------
# Dataflow-tightened cones: clause-level projection
# ----------------------------------------------------------------------

# r2 imports from r1 through a two-clause map: clause 10 only matches
# corporate space the session can never carry (and that cannot overlap
# DST), clause 20 matches the rack.  The dataflow analysis proves
# clause 10 cold, so the cone carries only the clause-20 fragment.
PROJ_EXTRA = """\
ip prefix-list COLD seq 10 permit 172.{cold_octet}.0.0/16 le 24
ip prefix-list RACK seq 10 permit 10.9.0.0/24
route-map IMPORT deny 10
 match ip address prefix-list COLD
route-map IMPORT permit 20
 match ip address prefix-list RACK
router bgp 65002
 neighbor 10.0.0.1 route-map IMPORT in
"""


def proj_build(cold_octet=16, **kw):
    return build(r2_text=R2 + PROJ_EXTRA.format(cold_octet=cold_octet), **kw)


def test_partial_hot_map_projects_to_clause_fragments():
    cone = query_cone(proj_build(),
                      P.Reachability(sources="all", dest_prefix_text=DST))
    r2 = cone.fragments["r2"]
    assert "route-map:IMPORT:20" in r2     # the hot clause
    assert "route-map:IMPORT:10" not in r2  # provably cold
    assert "route-map:IMPORT" not in r2     # not the whole-map fragment
    # Lists are pulled in only by INCLUDED clauses.
    assert "prefix-list:RACK" in r2
    assert "prefix-list:COLD" not in r2


def test_all_cold_map_is_excluded_entirely():
    # Strip the hot clause: everything the map can do is irrelevant to
    # DST, so no fragment of it (or its list) is in the cone.
    extra = """\
ip prefix-list COLD seq 10 permit 172.16.0.0/16 le 24
route-map IMPORT deny 10
 match ip address prefix-list COLD
router bgp 65002
 neighbor 10.0.0.1 route-map IMPORT in
"""
    cone = query_cone(build(r2_text=R2 + extra),
                      P.Reachability(sources="all", dest_prefix_text=DST))
    r2 = cone.fragments["r2"]
    assert not any(f.startswith("route-map:IMPORT") for f in r2)
    assert "prefix-list:COLD" not in r2


def test_cold_clause_edit_keeps_cache_key():
    base = key_of(proj_build(cold_octet=16))
    assert base is not None
    assert base == key_of(proj_build(cold_octet=17))


def test_hot_clause_edit_changes_cache_key():
    edited = R2 + PROJ_EXTRA.format(cold_octet=16).replace(
        "ip prefix-list RACK seq 10 permit 10.9.0.0/24",
        "ip prefix-list RACK seq 10 permit 10.9.0.0/25")
    assert key_of(proj_build()) != key_of(build(r2_text=edited))


def test_cold_to_hot_flip_changes_cache_key():
    # Re-pointing the cold clause's list at the destination makes the
    # clause hot: the inclusion SET changes, so the key must change
    # even though the clause's own text does not.
    edited = R2 + PROJ_EXTRA.format(cold_octet=16).replace(
        "permit 172.16.0.0/16 le 24", "permit 10.9.0.0/24")
    assert key_of(proj_build()) != key_of(build(r2_text=edited))


def test_structural_cone_tracks_loop_candidates_via_extras():
    # An UNBOUND local-pref-setting map is in no propagation path — the
    # dataflow projection excludes its fragments — but it still flips
    # the device into NoForwardingLoops' default candidate set.  The
    # pseudo-fragment hashed into structural cones must catch that.
    prop = P.NoForwardingLoops(dest_prefix_text=DST)
    plain = key_of(build(), prop)
    extra = "route-map UNBOUND permit 10\n set local-preference 200\n"
    risky = key_of(build(r2_text=R2 + extra), prop)
    assert plain is not None and plain != risky
    cone = query_cone(build(), prop)
    assert any(key == "dataflow:loop-candidates" for key, _ in cone.extras)


@settings(max_examples=25, deadline=None)
@given(octet=st.integers(min_value=16, max_value=31))
def test_prop_out_of_cone_edit_never_changes_tightened_key(octet):
    # Renumbering the cold clause's match space (any 172.x/16) is an
    # out-of-cone edit for DST: the dataflow-tightened slice — and so
    # the cache key — must be unaffected, for every choice of octet.
    assert key_of(proj_build(cold_octet=octet)) == key_of(proj_build())


# ----------------------------------------------------------------------
# DEP001 — referenced policy outside every propagation path
# ----------------------------------------------------------------------

def analyze(texts):
    return analyze_configs(texts, smt=False)


DEP_BASE = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
"""

DEP001_DEAD_MAP = DEP_BASE + """\
route-map DEADPOL deny 10
 match ip address prefix-list DEADPL
ip prefix-list DEADPL seq 10 permit 10.9.0.0/16
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 203.0.113.9 remote-as 65003
 neighbor 203.0.113.9 route-map DEADPOL in
"""

DEP001_LIVE_MAP = DEP_BASE + """\
route-map DEADPOL deny 10
 match ip address prefix-list DEADPL
ip prefix-list DEADPL seq 10 permit 10.9.0.0/16
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map DEADPOL in
 neighbor 203.0.113.9 remote-as 65003
 neighbor 203.0.113.9 route-map DEADPOL in
"""


def test_dep001_dead_session_map_fires_with_span():
    report = analyze({"r1.cfg": DEP001_DEAD_MAP})
    diags = report.by_rule("DEP001")
    messages = [d.message for d in diags]
    assert any("DEADPOL" in m and "203.0.113.9" in m for m in messages)
    assert any("DEADPL" in m for m in messages)
    (map_diag,) = [d for d in diags if "route-map DEADPOL" in d.message]
    assert map_diag.file == "r1.cfg"
    assert map_diag.line == line_of(DEP001_DEAD_MAP,
                                    "route-map DEADPOL in")


def test_dep001_near_miss_map_also_on_live_session():
    # Bound to a resolvable session too: the policy is reachable.
    assert not analyze({"r1.cfg": DEP001_LIVE_MAP}).by_rule("DEP001")


DEP001_SHUT_ACL = DEP_BASE + """\
access-list EDGE deny ip any
interface unused
 ip address 10.3.0.1 255.255.255.0
 ip access-group EDGE in
 shutdown
"""

DEP001_LIVE_ACL = DEP001_SHUT_ACL + """\
interface live
 ip address 10.4.0.1 255.255.255.0
 ip access-group EDGE in
"""


def test_dep001_shutdown_acl_fires_with_span():
    report = analyze({"r1.cfg": DEP001_SHUT_ACL})
    (diag,) = report.by_rule("DEP001")
    assert "EDGE" in diag.message and "unused" in diag.message
    assert diag.line == line_of(DEP001_SHUT_ACL, "ip access-group EDGE")


def test_dep001_near_miss_acl_also_live():
    assert not analyze({"r1.cfg": DEP001_LIVE_ACL}).by_rule("DEP001")


def test_dep001_silent_on_clean_fixture():
    assert not analyze({"r1.cfg": R1.format(stub_octet=5),
                        "r2.cfg": R2}).by_rule("DEP001")
