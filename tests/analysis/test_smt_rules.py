"""SMT-backed shadow detection: the acceptance bar is that a crafted
shadowed clause is *proven* dead while its reachable sibling is left
alone — per rule, for route-map clauses, prefix-list entries and ACL
rules, plus the degenerate-map (permit-all / deny-all) verdicts."""

from repro.analysis import Severity, analyze_configs
from repro.analysis.smt_rules import dead_clause_indices
from repro.lang.parser import parse_config


def line_of(text: str, needle: str) -> int:
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not in config")


def analyze(texts):
    return analyze_configs(texts, smt=True)


# ----------------------------------------------------------------------
# SMT001 — shadowed route-map clause
# ----------------------------------------------------------------------

# seq 10 permits the /16 space that seq 20's /24 subset lives in, so
# seq 20 is provably unreachable; seq 30 handles disjoint space and is
# a *reachable sibling* that must NOT be flagged.
SMT001_CFG = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
ip prefix-list WIDE seq 10 permit 10.9.0.0/16 le 32
ip prefix-list NARROW seq 10 permit 10.9.1.0/24 le 32
ip prefix-list OTHER seq 10 permit 172.16.0.0/16 le 32
route-map IMPORT permit 10
 match ip address prefix-list WIDE
route-map IMPORT permit 20
 match ip address prefix-list NARROW
route-map IMPORT permit 30
 match ip address prefix-list OTHER
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""


def test_smt001_proves_shadowed_clause_dead():
    report = analyze({"r1.cfg": SMT001_CFG})
    (diag,) = report.by_rule("SMT001")
    assert diag.severity is Severity.WARNING
    assert "seq 20" in diag.message
    assert diag.file == "r1.cfg"
    assert diag.line == line_of(SMT001_CFG, "route-map IMPORT permit 20")


def test_smt001_does_not_flag_reachable_sibling():
    report = analyze({"r1.cfg": SMT001_CFG})
    messages = " ".join(d.message for d in report.by_rule("SMT001"))
    assert "seq 30" not in messages
    assert "seq 10" not in messages


def test_dead_clause_indices_exact():
    device = parse_config(SMT001_CFG, source="r1.cfg")
    rmap = device.route_maps["IMPORT"]
    # Index into seq-sorted clauses: only the middle clause is dead.
    assert dead_clause_indices(device, rmap) == [1]


def test_smt001_near_miss_partial_overlap_is_reachable():
    # Widen the second list past the first: 10.9.0.0/8-space routes
    # outside the /16 still reach seq 20 — no proof, no finding.
    cfg = SMT001_CFG.replace("NARROW seq 10 permit 10.9.1.0/24 le 32",
                             "NARROW seq 10 permit 10.0.0.0/8 le 32")
    report = analyze({"r1.cfg": cfg})
    assert report.by_rule("SMT001") == []


def test_smt001_skips_clauses_with_dangling_refs():
    # A clause whose guard is FALSE only because its prefix-list is
    # undefined belongs to REF002, not to the shadow prover.
    cfg = SMT001_CFG.replace(
        "ip prefix-list NARROW seq 10 permit 10.9.1.0/24 le 32\n", "")
    report = analyze({"r1.cfg": cfg})
    assert report.by_rule("SMT001") == []
    assert len(report.by_rule("REF002")) == 1


# ----------------------------------------------------------------------
# SMT002 — shadowed prefix-list entry
# ----------------------------------------------------------------------

SMT002_CFG = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
ip prefix-list FILTER seq 10 deny 10.0.0.0/8 le 32
ip prefix-list FILTER seq 20 permit 10.9.0.0/16 le 24
ip prefix-list FILTER seq 30 permit 172.16.0.0/16 le 32
route-map IMPORT permit 10
 match ip address prefix-list FILTER
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map IMPORT in
"""


def test_smt002_proves_shadowed_entry_dead():
    report = analyze({"r1.cfg": SMT002_CFG})
    (diag,) = report.by_rule("SMT002")
    assert diag.severity is Severity.WARNING
    assert "entry 2" in diag.message          # 10.9.0.0/16 under the /8
    assert diag.line == line_of(SMT002_CFG, "seq 20 permit 10.9.0.0/16")


def test_smt002_does_not_flag_reachable_entries():
    report = analyze({"r1.cfg": SMT002_CFG})
    messages = " ".join(d.message for d in report.by_rule("SMT002"))
    assert "entry 1" not in messages
    assert "entry 3" not in messages


def test_smt002_near_miss_window_escape():
    # le 32 on the shadowed entry no longer helps (it is still inside
    # the /8's le 32 window), but narrowing the *first* entry's window
    # to exact-length /8 frees everything longer.
    cfg = SMT002_CFG.replace("deny 10.0.0.0/8 le 32", "deny 10.0.0.0/8")
    report = analyze({"r1.cfg": cfg})
    assert report.by_rule("SMT002") == []


# ----------------------------------------------------------------------
# SMT003 — shadowed ACL rule
# ----------------------------------------------------------------------

SMT003_CFG = """\
hostname r1
access-list GUARD deny ip 10.9.0.0 0.0.255.255
access-list GUARD permit ip 10.9.1.0 0.0.0.255
access-list GUARD permit ip any
interface eth0
 ip address 10.0.0.1 255.255.255.0
 ip access-group GUARD in
"""


def test_smt003_proves_shadowed_rule_dead():
    report = analyze({"r1.cfg": SMT003_CFG})
    (diag,) = report.by_rule("SMT003")
    assert diag.severity is Severity.WARNING
    assert "rule 2" in diag.message           # /24 inside the denied /16
    assert diag.line == line_of(SMT003_CFG, "permit ip 10.9.1.0")


def test_smt003_does_not_flag_reachable_rules():
    report = analyze({"r1.cfg": SMT003_CFG})
    messages = " ".join(d.message for d in report.by_rule("SMT003"))
    assert "rule 1" not in messages
    assert "rule 3" not in messages


def test_smt003_near_miss_disjoint_rules():
    cfg = SMT003_CFG.replace("permit ip 10.9.1.0 0.0.0.255",
                             "permit ip 10.8.1.0 0.0.0.255")
    report = analyze({"r1.cfg": cfg})
    assert report.by_rule("SMT003") == []


# ----------------------------------------------------------------------
# SMT004 — permit-all / deny-all route-maps
# ----------------------------------------------------------------------

SMT004_PERMIT_ALL = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
route-map OPEN permit 10
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map OPEN in
"""

SMT004_DENY_ALL = """\
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.0
ip prefix-list NONE seq 10 deny 0.0.0.0/0 le 32
route-map CLOSED permit 10
 match ip address prefix-list NONE
router bgp 65001
 neighbor 10.0.0.9 remote-as 65002
 neighbor 10.0.0.9 route-map CLOSED in
"""


def test_smt004_flags_permit_all():
    report = analyze({"r1.cfg": SMT004_PERMIT_ALL})
    (diag,) = report.by_rule("SMT004")
    assert diag.severity is Severity.INFO
    assert "permit-all" in diag.message
    assert diag.line == line_of(SMT004_PERMIT_ALL, "route-map OPEN")
    # INFO findings never fail the build.
    assert report.exit_code == 0


def test_smt004_flags_deny_all():
    report = analyze({"r1.cfg": SMT004_DENY_ALL})
    found = report.by_rule("SMT004")
    assert len(found) == 1
    assert "deny-all" in found[0].message


def test_smt004_near_miss_transforming_map_not_degenerate():
    # A match-free permit clause that *sets* an attribute is not a
    # no-op permit-all: removing the map would change routing.
    cfg = SMT004_PERMIT_ALL.replace(
        "route-map OPEN permit 10",
        "route-map OPEN permit 10\n set local-preference 200")
    report = analyze({"r1.cfg": cfg})
    assert report.by_rule("SMT004") == []


def test_smt004_near_miss_real_filter_not_degenerate():
    cfg = SMT004_DENY_ALL.replace("deny 0.0.0.0/0 le 32",
                                  "permit 10.9.0.0/16 le 24")
    report = analyze({"r1.cfg": cfg})
    assert report.by_rule("SMT004") == []
