"""Encoder pruning of SMT-proven-dead route-map clauses.

Soundness bar: pruning must never change a verification verdict (the
dead clause provably matches nothing, so dropping it preserves the ite
chain's function) while measurably shrinking the encoded formula.
"""

import pytest

from repro.analysis.pruning import prune_network
from repro.core import properties as P
from repro.core.encoder import EncoderOptions, NetworkEncoder
from repro.core.verifier import Verifier
from repro.net import NetworkBuilder
from repro.net import ip as iplib
from repro.net.policy import PrefixListEntry, RouteMapClause


def build_network():
    """A-B-C iBGP mesh; A imports from EXT through a map with a seeded
    dead clause: seq 15 re-permits a subset of what seq 10 already
    matched.  It is also the network's only ``set local-preference``,
    so pruning it lets the §6.2 field slicer drop the attribute — the
    formula shrinks in variables, not just clauses."""
    builder = NetworkBuilder()
    for name in ("A", "B", "C"):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
        dev.enable_bgp(65001)
    builder.link("A", "B")
    builder.link("B", "C")
    builder.ibgp_session("A", "B")
    builder.ibgp_session("B", "C")
    builder.ibgp_session("A", "C")
    dev = builder.device("A")
    dev.prefix_list("ALLOWED", [
        PrefixListEntry("permit", iplib.parse_ip("8.0.0.0"), 8, le=32)])
    dev.prefix_list("ALLOWED_SUB", [
        PrefixListEntry("permit", iplib.parse_ip("8.8.0.0"), 16, le=32)])
    dev.route_map("IMPORT", [
        RouteMapClause(seq=10, action="permit",
                       match_prefix_list="ALLOWED"),
        RouteMapClause(seq=15, action="permit",          # shadowed
                       match_prefix_list="ALLOWED_SUB",
                       set_local_pref=50),
    ])
    builder.external_peer("A", asn=65100, name="EXT",
                          route_map_in="IMPORT")
    return builder.build()


QUERIES = [
    # (destination prefix, expected verdict) — one holding, one failing,
    # both routed through the session whose map gets pruned.
    ("8.8.0.0/16", True),     # inside the shadowed deny: still permitted
    ("9.0.0.0/8", False),     # outside the permit: filtered, unreachable
]


def _verify(network, prune, dest):
    options = EncoderOptions(prune_dead_clauses=prune)
    verifier = Verifier(network, options=options)
    return verifier.verify(
        P.Reachability(sources=["C"], dest_peer="EXT",
                       dest_prefix_text=dest),
        assumptions=[P.announces("EXT", min_length=8)])


@pytest.mark.parametrize("dest,expected", QUERIES)
def test_pruning_preserves_verdicts(dest, expected):
    network = build_network()
    baseline = _verify(network, prune=False, dest=dest)
    pruned = _verify(network, prune=True, dest=dest)
    assert baseline.holds is expected
    assert pruned.holds is expected


def test_pruning_shrinks_the_formula():
    network = build_network()
    dest = QUERIES[0][0]
    baseline = _verify(network, prune=False, dest=dest)
    pruned = _verify(network, prune=True, dest=dest)
    assert pruned.num_variables < baseline.num_variables
    assert pruned.num_clauses < baseline.num_clauses


def test_prune_report_identifies_the_dead_clause():
    network = build_network()
    pruned_net, report = prune_network(network)
    assert report.count == 1
    (entry,) = report.pruned
    assert (entry.device, entry.route_map, entry.seq) == ("A", "IMPORT", 15)
    kept = [c.seq for c in pruned_net.device("A").route_maps["IMPORT"].clauses]
    assert kept == [10]
    # Untouched devices are shared, not copied.
    assert pruned_net.device("B") is network.device("B")


def test_prune_clean_network_is_identity():
    builder = NetworkBuilder()
    for name in ("A", "B"):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
    builder.link("A", "B")
    network = builder.build()
    pruned_net, report = prune_network(network)
    assert report.count == 0
    assert pruned_net is network


def test_encoder_records_prune_report():
    network = build_network()
    options = EncoderOptions(prune_dead_clauses=True)
    encoder = NetworkEncoder(network, options)
    assert encoder.prune_report is not None
    assert encoder.prune_report.count == 1
    off = NetworkEncoder(network, EncoderOptions())
    assert off.prune_report is None
