"""Concrete-evaluation tests for ACLs, prefix lists and route maps."""


from repro.net import (
    Acl,
    AclRule,
    CommunityList,
    DeviceConfig,
    PrefixList,
    PrefixListEntry,
    Route,
    RouteMap,
    RouteMapClause,
)
from repro.net import ip as iplib


def ip(text):
    return iplib.parse_ip(text)


class TestAcl:
    def test_implicit_deny(self):
        acl = Acl("empty")
        assert not acl.permits(ip("10.0.0.1"))

    def test_first_match_wins(self):
        acl = Acl("a", (
            AclRule("deny", dst_network=ip("10.1.0.0"), dst_length=16),
            AclRule("permit"),
        ))
        assert not acl.permits(ip("10.1.2.3"))
        assert acl.permits(ip("10.2.0.1"))

    def test_source_match(self):
        rule = AclRule("permit", src_network=ip("192.168.0.0"), src_length=16)
        assert rule.matches(0, src_ip=ip("192.168.4.4"))
        assert not rule.matches(0, src_ip=ip("10.0.0.1"))

    def test_protocol_and_port_match(self):
        rule = AclRule("deny", protocol=6, dst_port_low=22, dst_port_high=22)
        assert rule.matches(0, protocol=6, dst_port=22)
        assert not rule.matches(0, protocol=17, dst_port=22)
        assert not rule.matches(0, protocol=6, dst_port=80)

    def test_port_range(self):
        rule = AclRule("permit", dst_port_low=8000, dst_port_high=8080)
        assert rule.matches(0, dst_port=8042)
        assert not rule.matches(0, dst_port=9000)


class TestPrefixList:
    def test_exact_match_default_bounds(self):
        entry = PrefixListEntry("permit", ip("10.0.0.0"), 8)
        assert entry.matches(ip("10.0.0.0"), 8)
        assert not entry.matches(ip("10.0.0.0"), 9)

    def test_ge_le_window(self):
        entry = PrefixListEntry("permit", ip("10.0.0.0"), 8, ge=16, le=24)
        assert entry.matches(ip("10.5.0.0"), 16)
        assert entry.matches(ip("10.5.5.0"), 24)
        assert not entry.matches(ip("10.0.0.0"), 8)
        assert not entry.matches(ip("10.5.5.5"), 32)
        assert not entry.matches(ip("11.0.0.0"), 16)

    def test_paper_example_deny_192_168(self):
        # ip prefix_list L deny 192.168.0.0/16 le 32 ; allow everything else
        plist = PrefixList("L", (
            PrefixListEntry("deny", ip("192.168.0.0"), 16, ge=16, le=32),
            PrefixListEntry("permit", 0, 0, le=32),
        ))
        assert not plist.permits(ip("192.168.4.0"), 24)
        assert not plist.permits(ip("192.168.0.0"), 16)
        assert plist.permits(ip("10.0.0.0"), 8)

    def test_default_deny(self):
        plist = PrefixList("empty")
        assert not plist.permits(ip("10.0.0.0"), 8)


class TestCommunityList:
    def test_permit_any_listed(self):
        clist = CommunityList("c", communities=("65001:1", "65001:2"))
        assert clist.permits(frozenset({"65001:2"}))
        assert not clist.permits(frozenset({"65001:3"}))

    def test_deny_inverts(self):
        clist = CommunityList("c", action="deny",
                              communities=("65001:1",))
        assert not clist.permits(frozenset({"65001:1"}))
        assert clist.permits(frozenset())


def make_device():
    dev = DeviceConfig(hostname="T")
    dev.prefix_lists["PL"] = PrefixList("PL", (
        PrefixListEntry("permit", ip("10.0.0.0"), 8, ge=8, le=32),
    ))
    dev.community_lists["CL"] = CommunityList(
        "CL", communities=("65001:7",))
    return dev


def route(prefix="10.1.0.0/16", **kwargs):
    net, length = iplib.parse_prefix(prefix)
    return Route(network=net, length=length, protocol="bgp", ad=20, **kwargs)


class TestRouteMap:
    def test_default_deny_when_no_clause_matches(self):
        rmap = RouteMap("RM", (
            RouteMapClause(seq=10, action="permit", match_prefix_list="PL"),
        ))
        assert rmap.evaluate(route("192.168.0.0/16"), make_device()) is None

    def test_permit_applies_sets(self):
        rmap = RouteMap("RM", (
            RouteMapClause(seq=10, action="permit", match_prefix_list="PL",
                           set_local_pref=200, set_metric=5,
                           add_communities=("65001:9",)),
        ))
        out = rmap.evaluate(route(), make_device())
        assert out.local_pref == 200
        assert out.metric == 5
        assert "65001:9" in out.communities

    def test_deny_clause_blocks(self):
        rmap = RouteMap("RM", (
            RouteMapClause(seq=5, action="deny", match_prefix_list="PL"),
            RouteMapClause(seq=10, action="permit"),
        ))
        assert rmap.evaluate(route(), make_device()) is None
        assert rmap.evaluate(route("172.16.0.0/16"), make_device()) is not None

    def test_clauses_evaluated_in_seq_order(self):
        rmap = RouteMap("RM", (
            RouteMapClause(seq=20, action="permit", set_local_pref=2),
            RouteMapClause(seq=10, action="permit", set_local_pref=1),
        ))
        out = rmap.evaluate(route(), make_device())
        assert out.local_pref == 1

    def test_community_match(self):
        rmap = RouteMap("RM", (
            RouteMapClause(seq=10, action="permit",
                           match_community_list="CL", set_local_pref=300),
            RouteMapClause(seq=20, action="permit"),
        ))
        tagged = route(communities=frozenset({"65001:7"}))
        plain = route()
        assert rmap.evaluate(tagged, make_device()).local_pref == 300
        assert rmap.evaluate(plain, make_device()).local_pref == 100

    def test_community_delete(self):
        rmap = RouteMap("RM", (
            RouteMapClause(seq=10, action="permit",
                           delete_communities=("65001:7",)),
        ))
        tagged = route(communities=frozenset({"65001:7", "65001:8"}))
        out = rmap.evaluate(tagged, make_device())
        assert out.communities == frozenset({"65001:8"})

    def test_missing_prefix_list_never_matches(self):
        from repro.analysis.hazards import collect_dangling

        rmap = RouteMap("RM", (
            RouteMapClause(seq=10, action="permit",
                           match_prefix_list="NOPE"),
        ))
        with collect_dangling() as seen:
            assert rmap.evaluate(route(), make_device()) is None
        assert [(r.kind, r.name) for r in seen] == [("prefix-list", "NOPE")]


class TestRoutePreference:
    def test_lower_ad_wins(self):
        a = route().__class__(**{**route().__dict__, "ad": 20})
        b = route().__class__(**{**route().__dict__, "ad": 110})
        assert a.preference_key() < b.preference_key()

    def test_higher_local_pref_wins_within_ad(self):
        base = route()
        hi = Route(**{**base.__dict__, "local_pref": 200})
        lo = Route(**{**base.__dict__, "local_pref": 100})
        assert hi.preference_key() < lo.preference_key()

    def test_lower_metric_then_med_then_ebgp_then_rid(self):
        base = route().__dict__
        assert Route(**{**base, "metric": 1}).preference_key() < \
            Route(**{**base, "metric": 2}).preference_key()
        assert Route(**{**base, "med": 0}).preference_key() < \
            Route(**{**base, "med": 9}).preference_key()
        assert Route(**{**base, "bgp_internal": False}).preference_key() < \
            Route(**{**base, "bgp_internal": True}).preference_key()
        assert Route(**{**base, "router_id": 1}).preference_key() < \
            Route(**{**base, "router_id": 2}).preference_key()

    def test_covers_longest_prefix(self):
        r = route("10.1.0.0/16")
        assert r.covers(ip("10.1.200.3"))
        assert not r.covers(ip("10.2.0.1"))
