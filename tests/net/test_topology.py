"""Tests for topology derivation and the network builder."""

import pytest

from repro.net import Network, NetworkBuilder, DeviceConfig
from repro.net import ip as iplib


def two_router_net():
    b = NetworkBuilder()
    b.device("R1").enable_bgp(65001)
    b.device("R2").enable_bgp(65001)
    b.link("R1", "R2", subnet="10.0.12.0/30")
    return b


class TestBuilder:
    def test_link_creates_matching_interfaces(self):
        net = two_router_net().build()
        r1 = net.device("R1")
        r2 = net.device("R2")
        if1 = r1.interfaces["eth0"]
        if2 = r2.interfaces["eth0"]
        assert if1.address == iplib.parse_ip("10.0.12.1")
        assert if2.address == iplib.parse_ip("10.0.12.2")
        assert if1.subnet == if2.subnet

    def test_edges_are_bidirectional(self):
        net = two_router_net().build()
        assert net.edge_between("R1", "R2") is not None
        assert net.edge_between("R2", "R1") is not None
        assert len(net.internal_links()) == 1
        assert len(net.edges) == 2

    def test_auto_subnets_are_distinct(self):
        b = NetworkBuilder()
        for name in ("A", "B", "C"):
            b.device(name)
        b.link("A", "B")
        b.link("B", "C")
        b.link("A", "C")
        net = b.build()
        assert len(net.internal_links()) == 3

    def test_external_peer_becomes_symbolic_neighbor(self):
        b = two_router_net()
        peer = b.external_peer("R1", asn=65099, name="N1")
        net = b.build()
        assert peer == "N1"
        exts = net.externals_at("R1")
        assert len(exts) == 1
        assert exts[0].asn == 65099
        assert net.externals_at("R2") == []

    def test_ibgp_session_pairs_addresses(self):
        b = two_router_net()
        b.ibgp_session("R1", "R2")
        net = b.build()
        r1 = net.device("R1")
        r2 = net.device("R2")
        assert r1.bgp.neighbors[0].peer_ip == iplib.parse_ip("10.0.12.2")
        assert r2.bgp.neighbors[0].peer_ip == iplib.parse_ip("10.0.12.1")
        assert r1.bgp.is_internal(r1.bgp.neighbors[0])

    def test_config_lines_estimated(self):
        net = two_router_net().build()
        assert net.device("R1").config_lines > 0
        assert net.total_config_lines() > 0

    def test_duplicate_hostname_rejected(self):
        with pytest.raises(ValueError):
            Network([DeviceConfig(hostname="X"),
                     DeviceConfig(hostname="X")])


class TestTopologyQueries:
    def test_edges_from(self):
        b = NetworkBuilder()
        for name in ("A", "B", "C"):
            b.device(name)
        b.link("A", "B")
        b.link("A", "C")
        net = b.build()
        targets = {e.target for e in net.edges_from("A")}
        assert targets == {"B", "C"}
        assert net.edges_from("missing") == []

    def test_peer_address_on_edge(self):
        net = two_router_net().build()
        edge = net.edge_between("R1", "R2")
        assert net.peer_address_on(edge) == iplib.parse_ip("10.0.12.2")

    def test_device_owning(self):
        net = two_router_net().build()
        assert net.device_owning(iplib.parse_ip("10.0.12.1")) == "R1"
        assert net.device_owning(iplib.parse_ip("10.0.12.2")) == "R2"
        assert net.device_owning(iplib.parse_ip("1.1.1.1")) is None

    def test_shutdown_interface_breaks_adjacency(self):
        b = two_router_net()
        b.device("R1").config.interfaces["eth0"].shutdown = True
        net = b.build()
        assert net.edge_between("R1", "R2") is None

    def test_unresolvable_bgp_peer_is_ignored(self):
        b = two_router_net()
        # Peer address on no local subnet: the session can never establish.
        b.device("R1").bgp_neighbor("203.0.113.9", remote_as=65000)
        net = b.build()
        assert net.externals == []

    def test_external_peer_name_defaults(self):
        b = two_router_net()
        b.external_peer("R1", asn=65099)
        net = b.build()
        assert net.externals[0].name.startswith("ext-R1-")
