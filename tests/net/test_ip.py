"""Unit and property tests for IPv4 arithmetic."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.net import ip as iplib


class TestParseFormat:
    def test_parse_ip(self):
        assert iplib.parse_ip("0.0.0.0") == 0
        assert iplib.parse_ip("255.255.255.255") == iplib.MAX_IP
        assert iplib.parse_ip("10.0.0.1") == (10 << 24) + 1
        assert iplib.parse_ip(" 192.168.1.1 ") == 0xC0A80101

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.0",
                                     "-1.0.0.0", "a.b.c.d", ""])
    def test_parse_ip_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            iplib.parse_ip(bad)

    def test_format_ip(self):
        assert iplib.format_ip(0xC0A80101) == "192.168.1.1"
        with pytest.raises(ValueError):
            iplib.format_ip(-1)
        with pytest.raises(ValueError):
            iplib.format_ip(1 << 32)

    def test_parse_prefix_normalizes_host_bits(self):
        net, length = iplib.parse_prefix("10.1.2.3/24")
        assert net == iplib.parse_ip("10.1.2.0")
        assert length == 24

    def test_parse_prefix_rejects_bad_length(self):
        with pytest.raises(ValueError):
            iplib.parse_prefix("10.0.0.0/33")
        with pytest.raises(ValueError):
            iplib.parse_prefix("10.0.0.0")

    def test_format_prefix(self):
        assert iplib.format_prefix(0x0A000000, 8) == "10.0.0.0/8"


class TestMasks:
    def test_mask_roundtrip(self):
        for length in range(33):
            assert iplib.mask_to_length(iplib.length_to_mask(length)) == length

    def test_noncontiguous_mask_rejected(self):
        with pytest.raises(ValueError):
            iplib.mask_to_length(iplib.parse_ip("255.0.255.0"))

    def test_wildcard(self):
        assert iplib.wildcard_to_length(iplib.parse_ip("0.0.0.255")) == 24
        assert iplib.wildcard_to_length(0) == 32


class TestContainment:
    def test_prefix_contains(self):
        net = iplib.parse_ip("10.1.0.0")
        assert iplib.prefix_contains(net, 16, iplib.parse_ip("10.1.255.1"))
        assert not iplib.prefix_contains(net, 16, iplib.parse_ip("10.2.0.1"))
        assert iplib.prefix_contains(0, 0, iplib.parse_ip("1.2.3.4"))

    def test_prefix_overlaps(self):
        a = iplib.parse_prefix("10.0.0.0/8")
        b = iplib.parse_prefix("10.1.0.0/16")
        c = iplib.parse_prefix("11.0.0.0/8")
        assert iplib.prefix_overlaps(*a, *b)
        assert iplib.prefix_overlaps(*b, *a)
        assert not iplib.prefix_overlaps(*a, *c)

    def test_broadcast(self):
        net, length = iplib.parse_prefix("10.0.0.0/30")
        assert iplib.broadcast_of(net, length) == net + 3

    def test_host_in_subnet(self):
        net, length = iplib.parse_prefix("10.0.0.0/24")
        assert iplib.host_in_subnet(net, length) == net + 1
        assert iplib.host_in_subnet(net, length, 7) == net + 7


@given(st.integers(0, iplib.MAX_IP))
def test_ip_text_roundtrip(value):
    assert iplib.parse_ip(iplib.format_ip(value)) == value


@given(st.integers(0, iplib.MAX_IP), st.integers(0, 32))
def test_network_of_is_idempotent_and_contained(addr, length):
    net = iplib.network_of(addr, length)
    assert iplib.network_of(net, length) == net
    assert iplib.prefix_contains(net, length, addr)


@given(st.integers(0, iplib.MAX_IP), st.integers(0, 32),
       st.integers(0, iplib.MAX_IP))
def test_containment_matches_shift_semantics(net, length, addr):
    expected = (net >> (32 - length)) == (addr >> (32 - length)) \
        if length else True
    assert iplib.prefix_contains(net, length, addr) == expected
