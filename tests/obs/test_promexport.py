"""Prometheus text exposition: rendering, strict parsing, round-trip."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.promexport import (
    parse_exposition,
    to_prometheus,
    write_prometheus,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("sat.conflicts").inc(32)
    reg.counter("cnf.vars", module="network").inc(100)
    reg.counter("cnf.vars", module="property").inc(5)
    reg.gauge("sat.learned").set(24)
    h = reg.histogram("sat.solve_seconds")
    for v in (0.002, 0.02, 0.2):
        h.observe(v)
    return reg


def test_text_structure():
    text = to_prometheus(_registry())
    assert "# TYPE sat_conflicts_total counter" in text
    assert "sat_conflicts_total 32" in text
    assert "# TYPE sat_learned gauge" in text
    assert 'cnf_vars_total{module="network"} 100' in text
    assert "# TYPE sat_solve_seconds histogram" in text
    assert 'sat_solve_seconds_bucket{le="+Inf"} 3' in text
    assert "sat_solve_seconds_count 3" in text
    # One TYPE header per family even with several label sets.
    assert text.count("# TYPE cnf_vars_total") == 1


def test_parse_round_trip():
    samples = parse_exposition(to_prometheus(_registry()))
    assert samples["sat_conflicts_total"][0]["value"] == 32
    by_module = {s["labels"]["module"]: s["value"]
                 for s in samples["cnf_vars_total"]}
    assert by_module == {"network": 100, "property": 5}
    hist = samples["sat_solve_seconds"]
    count = [s for s in hist if s["name"].endswith("_count")][0]
    inf_bucket = [s for s in hist if s["labels"].get("le") == "+Inf"][0]
    assert count["value"] == inf_bucket["value"] == 3


def test_histogram_buckets_cumulative():
    samples = parse_exposition(to_prometheus(_registry()))
    buckets = [(s["labels"]["le"], s["value"])
               for s in samples["sat_solve_seconds"]
               if s["name"].endswith("_bucket")]
    values = [v for _, v in buckets]
    assert values == sorted(values)  # cumulative never decreases


def test_accepts_snapshot_dict_and_writes_file(tmp_path):
    reg = _registry()
    assert to_prometheus(reg.snapshot()) == to_prometheus(reg)
    out = tmp_path / "metrics.prom"
    write_prometheus(reg, str(out))
    assert parse_exposition(out.read_text())


def test_name_sanitization():
    reg = MetricsRegistry()
    reg.counter("weird.name-with spaces!").inc(1)
    text = to_prometheus(reg)
    assert "weird_name_with_spaces__total 1" in text
    parse_exposition(text)  # must still be valid


def test_label_value_escaping():
    reg = MetricsRegistry()
    reg.counter("c", path='a"b\\c').inc(1)
    text = to_prometheus(reg)
    samples = parse_exposition(text)
    assert samples["c_total"][0]["labels"]["path"] == 'a\\"b\\\\c'


def test_empty_registry_renders_empty():
    assert to_prometheus(MetricsRegistry()) == ""
    assert parse_exposition("") == {}


class TestStrictParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_exposition("# TYPE x counter\nx one_two_three\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("# TYPE x counter\n{no=name} 1\n")

    def test_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="precedes"):
            parse_exposition("orphan_metric 3\n")

    def test_rejects_inconsistent_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1.0\n"
                "h_count 3\n")
        with pytest.raises(ValueError, match="_count"):
            parse_exposition(text)

    def test_rejects_malformed_type_line(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_exposition("# TYPE x sideways\n")
