"""Run ledger: append/read round-trip, refs, schema, comparison."""

import sqlite3

import pytest

from repro.obs import ledger as ledgerlib
from repro.obs.ledger import (
    LedgerError,
    RunLedger,
    RunRecord,
    build_record,
    compare_runs,
)


def _record(run_id, *, clauses=100, holds=True, seconds=0.5,
            config_hash="abc", options="{}", command="verify"):
    return RunRecord(
        run_id=run_id, command=command,
        argv=["verify", "cfg"], started=100.0, finished=100.0 + seconds,
        config_hash=config_hash, options=options,
        workload={"routers": 3},
        queries=[{"idx": 0, "name": "Reachability", "holds": holds,
                  "cached": False, "seconds": seconds,
                  "encode_seconds": seconds / 2,
                  "solve_seconds": seconds / 2,
                  "vars": 40, "clauses": clauses, "conflicts": 7,
                  "message": ""}],
        phases={"verify": {"count": 1, "total_seconds": seconds}},
        metrics={"sat.conflicts": {"kind": "counter",
                                   "name": "sat.conflicts",
                                   "labels": {}, "value": 7}},
        extra={"note": "test"})


class TestRoundTrip:
    def test_append_and_get_preserve_everything(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("aaaa11112222"))
            assert len(ledger) == 1
            back = ledger.get("aaaa11112222")
        assert back.command == "verify"
        assert back.argv == ["verify", "cfg"]
        assert back.config_hash == "abc"
        assert back.workload == {"routers": 3}
        assert back.queries[0]["name"] == "Reachability"
        assert back.queries[0]["holds"] is True
        assert back.queries[0]["clauses"] == 100
        assert back.phases["verify"]["count"] == 1
        assert back.metrics["sat.conflicts"]["value"] == 7
        assert back.extra == {"note": "test"}
        assert back.seconds == pytest.approx(0.5)

    def test_none_verdict_survives(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("bbbb", holds=None))
            assert ledger.get("bbbb").queries[0]["holds"] is None

    def test_duplicate_run_id_rejected(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("cccc"))
            with pytest.raises(sqlite3.IntegrityError):
                ledger.append(_record("cccc"))
            # The failed transaction must not leave partial rows.
            assert len(ledger) == 1

    def test_unwritten_ledger_creates_no_file(self, tmp_path):
        path = tmp_path / "never.sqlite"
        ledger = RunLedger(str(path))
        assert ledger.runs() == []
        assert len(ledger) == 0
        assert not path.exists()


class TestRefs:
    def test_prefix_and_index_refs(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("aaaa11112222"))
            ledger.append(_record("bbbb33334444"))
            assert ledger.get("aaaa").run_id == "aaaa11112222"
            assert ledger.get("-1").run_id == "bbbb33334444"
            assert ledger.get("-2").run_id == "aaaa11112222"

    def test_ambiguous_prefix_raises(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("aaaa11112222"))
            ledger.append(_record("aaaa99990000"))
            with pytest.raises(LedgerError, match="ambiguous"):
                ledger.get("aaaa")

    def test_unknown_ref_raises(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("aaaa"))
            with pytest.raises(LedgerError, match="no run"):
                ledger.get("zzzz")
            with pytest.raises(LedgerError, match="no run"):
                ledger.get("-5")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="no ledger"):
            RunLedger(str(tmp_path / "missing.sqlite")).get("-1")


class TestListing:
    def test_runs_newest_first_with_filters(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("run1"))
            ledger.append(_record("run2", command="diff"))
            ledger.append(_record("run3"))
            runs = ledger.runs()
            assert [r["run_id"] for r in runs] == ["run3", "run2", "run1"]
            assert runs[0]["queries"] == 1
            assert runs[0]["holding"] == 1
            only = ledger.runs(command="diff")
            assert [r["run_id"] for r in only] == ["run2"]
            assert [r["run_id"] for r in ledger.runs(limit=1)] == ["run3"]


class TestSchema:
    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        with RunLedger(path) as ledger:
            ledger.append(_record("aaaa"))
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE meta SET value = ? WHERE key = ?",
                         (str(ledgerlib.SCHEMA_VERSION + 1),
                          "schema_version"))
        conn.close()
        with pytest.raises(LedgerError, match="schema"):
            RunLedger(path).get("aaaa")

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_text("this is not a sqlite database, not even close")
        with pytest.raises(LedgerError):
            with RunLedger(str(path)) as ledger:
                ledger.append(_record("aaaa"))


class TestBuildRecord:
    def test_from_network_results_and_tracer(self):
        from repro import obs
        from repro.core import Verifier, properties as P
        from repro.net import NetworkBuilder

        builder = NetworkBuilder()
        for name in ("A", "B"):
            dev = builder.device(name)
            dev.enable_ospf()
            dev.ospf_network("10.0.0.0/8")
        builder.link("A", "B")
        builder.device("B").interface("host", "10.9.0.1/24")
        network = builder.build()
        tracer = obs.Tracer()
        with obs.use(tracer):
            verifier = Verifier(network)
            result = verifier.verify(
                P.Reachability(sources="all",
                               dest_prefix_text="10.9.0.0/24"))
        record = build_record("verify", ["verify", "x"], network=network,
                              options=verifier.options, results=[result],
                              tracer=tracer)
        assert record.config_hash == ledgerlib.network_hash(network)
        assert record.workload["routers"] == 2
        assert record.queries[0]["holds"] is True
        assert record.queries[0]["clauses"] > 0
        assert "verify" in record.phases
        assert record.phases["verify"]["count"] == 1
        assert record.options  # fingerprint string present
        assert record.metrics  # snapshot captured
        assert record.verdict_summary() == "1/1 hold"

    def test_network_hash_ignores_formatting_noise(self):
        from repro.net import NetworkBuilder, load_network
        from repro.lang import write_config
        import tempfile, pathlib

        builder = NetworkBuilder()
        dev = builder.device("R1")
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
        network = builder.build()
        with tempfile.TemporaryDirectory() as tmp:
            p = pathlib.Path(tmp) / "R1.cfg"
            text = write_config(network.device("R1"))
            p.write_text(text)
            h1 = ledgerlib.network_hash(load_network(tmp))
            p.write_text("! a comment line\n" + text + "\n\n")
            h2 = ledgerlib.network_hash(load_network(tmp))
        assert h1 == h2

    def test_texts_hash_orders_independently(self):
        a = ledgerlib.texts_hash({"x": "1", "y": "2"})
        b = ledgerlib.texts_hash({"y": "2", "x": "1"})
        c = ledgerlib.texts_hash({"x": "1", "y": "CHANGED"})
        assert a == b
        assert a != c


class TestCompareRuns:
    def test_identical_runs_are_clean(self):
        report = compare_runs(_record("old"), _record("new"))
        assert report["regressions"] == []
        assert report["warnings"] == []
        assert not report["config_changed"]
        assert not report["options_changed"]

    def test_verdict_flip_always_regresses(self):
        report = compare_runs(_record("old", holds=True),
                              _record("new", holds=False))
        assert any("verdict" in r for r in report["regressions"])

    def test_count_growth_beyond_threshold_regresses(self):
        report = compare_runs(_record("old", clauses=100),
                              _record("new", clauses=150),
                              threshold=0.10)
        assert any("clauses 100 -> 150" in r
                   for r in report["regressions"])

    def test_count_growth_within_threshold_passes(self):
        report = compare_runs(_record("old", clauses=100),
                              _record("new", clauses=105),
                              threshold=0.10)
        assert report["regressions"] == []

    def test_timing_drift_warns_unless_gated(self):
        slow = _record("new", seconds=2.0)
        report = compare_runs(_record("old", seconds=0.5), slow)
        assert report["regressions"] == []
        assert any("seconds" in w or "phase" in w
                   for w in report["warnings"])
        gated = compare_runs(_record("old", seconds=0.5), slow,
                             gate_timings=True)
        assert gated["regressions"]

    def test_sub_noise_floor_timing_drift_ignored(self):
        # 0.5ms -> 2ms is +300% but under the absolute noise floor.
        report = compare_runs(_record("old", seconds=0.0005),
                              _record("new", seconds=0.002))
        assert report["warnings"] == []
        assert report["regressions"] == []

    def test_config_and_option_changes_flagged(self):
        report = compare_runs(
            _record("old"),
            _record("new", config_hash="zzz", options='{"k":1}'))
        assert report["config_changed"]
        assert report["options_changed"]

    def test_missing_and_added_queries_listed(self):
        old = _record("old")
        new = _record("new")
        new.queries[0] = dict(new.queries[0], name="Other")
        report = compare_runs(old, new)
        assert report["missing"] == ["Reachability"]
        assert report["added"] == ["Other"]
