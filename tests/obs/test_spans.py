"""Span layer: nesting, exception safety, threads, no-op mode, merge."""

import threading

import pytest

from repro import obs


def test_span_records_duration_and_attrs():
    tracer = obs.Tracer()
    with tracer.span("work", router="r1") as sp:
        sp.set(clauses=7)
    spans = tracer.spans
    assert len(spans) == 1
    (s,) = spans
    assert s["name"] == "work"
    assert s["attrs"] == {"router": "r1", "clauses": 7}
    assert s["duration"] >= 0.0
    assert s["span_id"] == 1
    assert s["parent_id"] == 0


def test_nesting_builds_parent_links():
    tracer = obs.Tracer()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
        with tracer.span("sibling"):
            pass
    by_name = {s["name"]: s for s in tracer.spans}
    assert by_name["inner"]["parent_id"] == by_name["middle"]["span_id"]
    assert by_name["middle"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["sibling"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["parent_id"] == 0
    # Children close before parents.
    names = [s["name"] for s in tracer.spans]
    assert names.index("inner") < names.index("middle")
    assert names.index("middle") < names.index("outer")


def test_child_duration_within_parent():
    tracer = obs.Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    by_name = {s["name"]: s for s in tracer.spans}
    assert by_name["inner"]["duration"] <= by_name["outer"]["duration"]
    assert by_name["inner"]["start"] >= by_name["outer"]["start"]


def test_exception_closes_span_and_records_error():
    tracer = obs.Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    by_name = {s["name"]: s for s in tracer.spans}
    assert set(by_name) == {"outer", "inner"}
    assert by_name["inner"]["attrs"]["error"] == "RuntimeError"
    assert by_name["outer"]["attrs"]["error"] == "RuntimeError"
    assert tracer.current() is None  # stack fully unwound
    # The tracer stays usable afterwards.
    with tracer.span("after"):
        pass
    assert tracer.spans[-1]["name"] == "after"
    assert tracer.spans[-1]["parent_id"] == 0


def test_threads_do_not_share_span_stacks():
    tracer = obs.Tracer()
    seen = {}

    def worker():
        with tracer.span("thread_work") as sp:
            seen["parent"] = sp.parent_id
            seen["lane"] = sp.lane

    with tracer.span("main_work"):
        t = threading.Thread(target=worker, name="w0")
        t.start()
        t.join()
    # The worker span must not adopt the main thread's open span as a
    # parent, and gets a thread-suffixed lane.
    assert seen["parent"] == 0
    assert seen["lane"] == "main/w0"


def test_noop_mode_records_nothing():
    obs.disable()
    assert obs.active() is obs.NULL_TRACER
    sp = obs.span("anything", key="value")
    with sp as inner:
        inner.set(more="attrs")
    assert obs.active().spans == []
    assert obs.span("a") is obs.span("b")  # shared singleton
    assert sp.duration == 0.0


def test_enable_disable_install_and_remove():
    tracer = obs.enable()
    try:
        assert obs.active() is tracer
        with obs.span("via_module"):
            pass
        assert [s["name"] for s in tracer.spans] == ["via_module"]
    finally:
        obs.disable()
    assert obs.active() is obs.NULL_TRACER


def test_use_restores_previous_tracer_on_exception():
    before = obs.active()
    tracer = obs.Tracer()
    with pytest.raises(ValueError):
        with obs.use(tracer):
            assert obs.active() is tracer
            raise ValueError
    assert obs.active() is before


def test_export_is_plain_data():
    import json

    tracer = obs.Tracer(lane="lane-x")
    with tracer.span("a", n=1):
        tracer.metrics.counter("c").inc(2)
    payload = tracer.export()
    assert payload["lane"] == "lane-x"
    json.dumps(payload)  # picklable/serializable wire format


def test_merge_rebases_ids_reparents_and_tags_lane():
    worker = obs.Tracer(lane="worker-1")
    with worker.span("group"):
        with worker.span("query"):
            pass
    worker.metrics.counter("conflicts").inc(5)
    payload = worker.export()

    parent = obs.Tracer()
    with parent.span("batch") as root:
        parent.metrics.counter("conflicts").inc(1)
        parent.merge(payload)
    by_name = {s["name"]: s for s in parent.spans}
    # Worker root re-parented under the parent's open span; the child
    # keeps pointing at its (rebased) worker parent.
    assert by_name["group"]["parent_id"] == root.span_id
    assert by_name["query"]["parent_id"] == by_name["group"]["span_id"]
    ids = [s["span_id"] for s in parent.spans]
    assert len(ids) == len(set(ids))
    assert by_name["group"]["lane"] == "worker-1"
    assert by_name["query"]["lane"] == "worker-1"
    assert parent.metrics.counter("conflicts").value == 6
    # Fresh spans after the merge never collide with merged ids.
    with parent.span("later"):
        pass
    ids = [s["span_id"] for s in parent.spans]
    assert len(ids) == len(set(ids))


def test_merge_aligns_clocks_across_processes():
    worker = obs.Tracer(lane="w")
    with worker.span("work"):
        pass
    payload = worker.export()
    # Simulate a worker whose process started 10 wall-clock seconds
    # earlier: its spans must land 10s earlier on the parent timeline.
    payload["wall_t0"] -= 10.0
    parent = obs.Tracer()
    parent.merge(payload)
    (merged,) = parent.spans
    assert merged["start"] < -9.0
