"""Tracing threaded through the verification pipeline end to end."""

import pytest

from repro import Verifier, obs
from repro.core import properties as P, verify_batch

from tests.core.test_engine import ospf_chain, query_matrix


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Tests install tracers explicitly; never leak one across tests."""
    yield
    obs.disable()


def test_verify_emits_phase_spans():
    network = ospf_chain(3)
    tracer = obs.Tracer()
    with obs.use(tracer):
        result = Verifier(network).verify(
            P.Reachability(dest_prefix_text="10.9.0.0/24"))
    names = {s["name"] for s in tracer.spans}
    assert {"verify", "verify.encode", "verify.property", "verify.solve",
            "encode.network", "encode.router", "smt.add",
            "sat.solve"} <= names
    # Result timing fields are the span durations (one telemetry source).
    root = next(s for s in tracer.spans if s["name"] == "verify")
    assert result.seconds == root["duration"]
    solve = next(s for s in tracer.spans if s["name"] == "verify.solve")
    assert result.solve_seconds == solve["duration"]


def test_verify_stats_without_tracer_still_populated():
    result = Verifier(ospf_chain(3)).verify(
        P.Reachability(dest_prefix_text="10.9.0.0/24"))
    assert result.seconds > 0
    assert result.encode_seconds > 0
    assert result.solve_seconds > 0
    assert result.seconds >= result.encode_seconds
    assert result.encode_seconds == pytest.approx(
        result.encode_shared_seconds + result.encode_query_seconds)


def test_tracing_does_not_change_verdicts():
    network = ospf_chain(3)
    queries = query_matrix()
    baseline = verify_batch(network, queries)
    tracer = obs.Tracer()
    with obs.use(tracer):
        traced = verify_batch(network, queries)
    assert [r.holds for r in traced] == [r.holds for r in baseline]


def test_batch_group_spans_and_cnf_attribution():
    network = ospf_chain(3)
    tracer = obs.Tracer()
    with obs.use(tracer):
        verify_batch(network, query_matrix())
    names = [s["name"] for s in tracer.spans]
    assert "batch.run" in names
    assert names.count("batch.query") == len(query_matrix())
    snap = tracer.metrics.snapshot()
    assert snap["cnf.clauses{module=network}"]["value"] > 0
    assert snap["cnf.clauses{module=instrumentation}"]["value"] > 0
    assert snap["batch.queries"]["value"] == len(query_matrix())


def test_parallel_workers_merge_traces():
    network = ospf_chain(3)
    queries = query_matrix()
    tracer = obs.Tracer()
    with obs.use(tracer):
        results = verify_batch(network, queries, workers=2)
    assert [r.holds for r in results] == \
        [r.holds for r in verify_batch(network, queries)]
    lanes = {s.get("lane") for s in tracer.spans}
    assert len(lanes) > 1, "worker group lanes merged into the trace"
    # Worker roots hang off the parent's batch.run span.
    root = next(s for s in tracer.spans if s["name"] == "batch.run")
    groups = [s for s in tracer.spans if s["name"] == "batch.group"]
    assert groups and all(g["parent_id"] == root["span_id"]
                          for g in groups)
    ids = [s["span_id"] for s in tracer.spans]
    assert len(ids) == len(set(ids))
    # Worker metrics merged too.
    assert tracer.metrics.snapshot()["sat.conflicts"]["value"] >= 0


def test_parse_and_build_spans():
    from repro.net.loader import network_from_texts

    tracer = obs.Tracer()
    with obs.use(tracer):
        network_from_texts({"r1.cfg": "hostname R1\n"})
    names = [s["name"] for s in tracer.spans]
    assert "parse" in names
    assert "parse.file" in names
    assert "net.build" in names
