"""Exporters: Chrome trace schema, JSONL round-trip, phase table."""

import json

from repro import obs
from repro.obs import export


def _sample_tracer():
    tracer = obs.Tracer()
    with tracer.span("batch.run", queries=2):
        with tracer.span("verify.encode"):
            pass
        with tracer.span("verify.solve", outcome="unsat"):
            pass
    tracer.metrics.counter("cnf.vars", module="network").inc(42)
    tracer.metrics.histogram("solve_seconds").observe(0.5)
    return tracer


def test_chrome_trace_schema():
    tracer = _sample_tracer()
    doc = export.to_chrome_trace(tracer)
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(tracer.spans)
    for e in complete:
        assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid",
                          "tid", "args"}
        assert isinstance(e["ts"], (int, float))
        assert e["dur"] >= 0
        assert "span_id" in e["args"] and "parent_id" in e["args"]
    assert meta and all(e["name"] == "thread_name" for e in meta)
    # Category is the span-name prefix; attrs ride in args.
    solve = next(e for e in complete if e["name"] == "verify.solve")
    assert solve["cat"] == "verify"
    assert solve["args"]["outcome"] == "unsat"
    json.dumps(doc)  # serializable as-is


def test_chrome_trace_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.json")
    export.write_trace(tracer, path)
    loaded = export.read_trace(path)
    assert len(loaded["spans"]) == len(tracer.spans)
    by_name = {s["name"]: s for s in loaded["spans"]}
    orig = {s["name"]: s for s in tracer.spans}
    for name, s in by_name.items():
        assert s["parent_id"] == orig[name]["parent_id"]
        # µs rounding: within 1µs of the original.
        assert abs(s["duration"] - orig[name]["duration"]) < 2e-6


def test_jsonl_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.jsonl")
    export.write_trace(tracer, path)
    lines = [json.loads(line)
             for line in open(path) if line.strip()]
    assert lines[0]["type"] == "meta"
    loaded = export.read_trace(path)
    assert len(loaded["spans"]) == len(tracer.spans)
    assert {s["name"] for s in loaded["spans"]} == \
        {s["name"] for s in tracer.spans}
    # JSONL keeps metrics; key format matches the registry snapshot.
    assert loaded["metrics"]["cnf.vars{module=network}"]["value"] == 42
    assert loaded["metrics"]["solve_seconds"]["count"] == 1


def test_phase_table_self_time_and_counts():
    tracer = obs.Tracer()
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
        with tracer.span("child"):
            pass
    text = export.phase_table(tracer)
    lines = text.splitlines()
    assert "phase breakdown" in lines[0]
    child_row = next(ln for ln in lines if ln.startswith("child"))
    parent_row = next(ln for ln in lines if ln.startswith("parent"))
    assert child_row.split()[1] == "2"   # count
    assert parent_row.split()[1] == "1"
    # Parent self-time excludes its children: self <= total.
    p = parent_row.split()
    assert float(p[3]) <= float(p[2])


def test_phase_table_empty_and_dict_sources():
    assert "(no spans recorded)" in export.phase_table(obs.Tracer())
    tracer = _sample_tracer()
    doc = {"spans": tracer.spans, "metrics": {}}
    assert export.phase_table(doc) == export.phase_table(tracer)


def test_metrics_table_accepts_tracer_registry_and_snapshot():
    tracer = _sample_tracer()
    text = export.metrics_table(tracer)
    assert "cnf.vars{module=network}" in text
    assert "42" in text
    assert export.metrics_table(tracer.metrics) == text
    assert export.metrics_table(tracer.metrics.snapshot()) == text
    assert "(no metrics recorded)" in export.metrics_table({})
