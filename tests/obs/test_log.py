"""Structured JSON logging: records, run ids, warn_event contract."""

import io
import json
import logging
import warnings

import pytest

from repro.obs import log as obslog


@pytest.fixture()
def capture():
    """Attach a JSON handler to an in-memory stream; detach afterwards."""
    stream = io.StringIO()
    handler = obslog.configure(stream, run="testrun12345")
    yield stream
    obslog.unconfigure(handler)
    obslog.set_run_id(None)


def _records(stream):
    return [json.loads(line)
            for line in stream.getvalue().splitlines() if line]


def test_event_emits_one_json_record(capture):
    obslog.event("engine.start", "starting", queries=3)
    records = _records(capture)
    assert len(records) == 1
    rec = records[0]
    assert rec["event"] == "engine.start"
    assert rec["message"] == "starting"
    assert rec["queries"] == 3
    assert rec["level"] == "info"
    assert rec["run_id"] == "testrun12345"
    assert isinstance(rec["ts"], float)


def test_run_id_correlates_all_records(capture):
    obslog.event("a")
    obslog.event("b")
    assert {r["run_id"] for r in _records(capture)} == {"testrun12345"}


def test_set_run_id_round_trip():
    obslog.set_run_id("zzz")
    assert obslog.run_id() == "zzz"
    obslog.set_run_id(None)
    assert obslog.run_id() is None


def test_new_run_ids_are_short_and_unique():
    a, b = obslog.new_run_id(), obslog.new_run_id()
    assert a != b
    assert len(a) == 12
    int(a, 16)  # hex


def test_warn_event_logs_and_still_warns(capture):
    with pytest.warns(RuntimeWarning, match="pool failed"):
        obslog.warn_event("engine.pool_fallback", "pool failed",
                          groups=4)
    records = _records(capture)
    assert records[0]["event"] == "engine.pool_fallback"
    assert records[0]["level"] == "warning"
    assert records[0]["groups"] == 4


def test_non_serializable_fields_degrade_to_repr(capture):
    obslog.event("x", thing=object())
    rec = _records(capture)[0]
    assert rec["thing"].startswith("<object object")


def test_silent_without_configure(capsys):
    # NullHandler only: no output, no "no handler" complaints.
    obslog.event("quiet.event")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        obslog.warn_event("quiet.warn", "still warns")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "quiet" not in captured.err


def test_configure_to_file(tmp_path):
    target = tmp_path / "log.jsonl"
    handler = obslog.configure(str(target), run="fileRun123ab")
    try:
        obslog.event("file.event", n=1)
    finally:
        obslog.unconfigure(handler)
        obslog.set_run_id(None)
    rec = json.loads(target.read_text().splitlines()[0])
    assert rec["event"] == "file.event"
    assert rec["run_id"] == "fileRun123ab"


def test_formatter_handles_exception_info(capture):
    logger = obslog.get_logger()
    try:
        raise ValueError("boom")
    except ValueError:
        logger.warning("caught", exc_info=True,
                       extra={"event": "err.caught"})
    rec = _records(capture)[0]
    assert rec["exception"] == "ValueError"
