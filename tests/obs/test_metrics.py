"""Metrics registry: instruments, labels, snapshot/merge, null mode."""

import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry, \
    NULL_REGISTRY


def test_counter_accumulates_and_rejects_negatives():
    reg = MetricsRegistry()
    c = reg.counter("sat.conflicts")
    c.inc()
    c.inc(4)
    assert reg.counter("sat.conflicts").value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    g = reg.gauge("sat.learned")
    g.set(10)
    g.set(3)
    assert reg.gauge("sat.learned").value == 3


def test_histogram_moments_and_mean():
    reg = MetricsRegistry()
    h = reg.histogram("solve_seconds")
    for v in (1.0, 2.0, 6.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 9.0
    assert h.min == 1.0
    assert h.max == 6.0
    assert h.mean == 3.0
    assert reg.histogram("solve_seconds") is h


def test_labels_distinguish_instruments():
    reg = MetricsRegistry()
    reg.counter("cnf.vars", module="network").inc(10)
    reg.counter("cnf.vars", module="property").inc(2)
    assert reg.counter("cnf.vars", module="network").value == 10
    assert reg.counter("cnf.vars", module="property").value == 2
    assert len(reg) == 2


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_format():
    reg = MetricsRegistry()
    reg.counter("cnf.vars", module="network").inc(7)
    reg.gauge("learned").set(2)
    snap = reg.snapshot()
    assert snap["cnf.vars{module=network}"] == {
        "kind": "counter", "name": "cnf.vars",
        "labels": {"module": "network"}, "value": 7}
    assert snap["learned"]["kind"] == "gauge"
    assert snap["learned"]["value"] == 2


def test_merge_combines_by_kind():
    a = MetricsRegistry()
    a.counter("conflicts").inc(3)
    a.gauge("learned").set(1)
    a.histogram("t").observe(1.0)
    b = MetricsRegistry()
    b.counter("conflicts").inc(4)
    b.gauge("learned").set(9)
    b.histogram("t").observe(3.0)
    a.merge(b.snapshot())
    assert a.counter("conflicts").value == 7       # counters add
    assert a.gauge("learned").value == 9           # gauges take last
    h = a.histogram("t")                           # histograms combine
    assert (h.count, h.total, h.min, h.max) == (2, 4.0, 1.0, 3.0)


def test_merge_into_empty_registry():
    src = MetricsRegistry()
    src.counter("c", module="x").inc(2)
    dst = MetricsRegistry()
    dst.merge(src.snapshot())
    assert dst.counter("c", module="x").value == 2


class TestHistogramBuckets:
    def test_observations_land_in_expected_buckets(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # le semantics: 1.0 counts in the <=1.0 bucket; 100 overflows.
        assert h.buckets == [2, 1, 1, 1]
        assert h.cumulative_buckets() == [
            (1.0, 2), (2.0, 3), (5.0, 4), (float("inf"), 5)]

    def test_inf_bucket_equals_count(self):
        h = Histogram()
        for v in (0.0001, 0.3, 7.0, 1000.0):
            h.observe(v)
        assert h.cumulative_buckets()[-1][1] == h.count == 4

    def test_default_bounds_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_moments_stay_exact(self):
        h = Histogram(bounds=(1.0,))
        for v in (0.5, 4.0):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (2, 4.5, 0.5, 4.0)


class TestHistogramQuantiles:
    def test_quantiles_interpolate_within_bucket(self):
        h = Histogram(bounds=(10.0, 20.0, 30.0))
        for v in (2.0, 4.0, 6.0, 8.0):
            h.observe(v)
        # All 4 in the first bucket: p50 interpolates to bucket middle,
        # clamped inside [min, max].
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.min <= h.quantile(0.95) <= h.max

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram(bounds=(100.0,))
        h.observe(40.0)
        assert h.quantile(0.0) == 40.0
        assert h.quantile(1.0) == 40.0

    def test_overflow_bucket_returns_max(self):
        h = Histogram(bounds=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 50.0

    def test_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestHistogramMerge:
    def test_matching_bounds_merge_exactly(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b.snapshot())
        assert a.buckets == [1, 1, 1]
        assert (a.count, a.total) == (3, 11.0)
        assert (a.min, a.max) == (0.5, 9.0)

    def test_mismatched_bounds_fold_into_overflow(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(5.0,))
        a.observe(0.5)
        b.observe(0.1)
        b.observe(0.2)
        a.merge(b.snapshot())
        # Moments exact; foreign counts parked in +Inf.
        assert a.count == 3
        assert a.total == pytest.approx(0.8)
        assert a.buckets == [1, 0, 2]
        assert a.cumulative_buckets()[-1][1] == a.count

    def test_moment_only_snapshot_folds_into_overflow(self):
        a = Histogram(bounds=(1.0,))
        a.observe(0.5)
        a.merge({"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0})
        assert a.count == 3
        assert a.buckets == [1, 2]

    def test_snapshot_carries_bounds_and_buckets(self):
        h = Histogram(bounds=(1.0,))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["bounds"] == [1.0]
        assert snap["buckets"] == [1, 0]
        assert snap["count"] == 1

    def test_registry_merge_round_trip_unchanged(self):
        # The pre-existing worker-merge contract from test_merge_combines
        # must hold bucket-wise too.
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("t").observe(1.0)
        b.histogram("t").observe(3.0)
        a.merge(b.snapshot())
        h = a.histogram("t")
        assert h.cumulative_buckets()[-1][1] == h.count == 2


def test_null_registry_is_inert():
    before = len(NULL_REGISTRY)
    NULL_REGISTRY.counter("anything").inc(5)
    NULL_REGISTRY.gauge("g").set(1)
    NULL_REGISTRY.histogram("h").observe(2.0)
    assert len(NULL_REGISTRY) == before == 0
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
