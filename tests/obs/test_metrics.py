"""Metrics registry: instruments, labels, snapshot/merge, null mode."""

import pytest

from repro.obs import MetricsRegistry, NULL_REGISTRY


def test_counter_accumulates_and_rejects_negatives():
    reg = MetricsRegistry()
    c = reg.counter("sat.conflicts")
    c.inc()
    c.inc(4)
    assert reg.counter("sat.conflicts").value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    g = reg.gauge("sat.learned")
    g.set(10)
    g.set(3)
    assert reg.gauge("sat.learned").value == 3


def test_histogram_moments_and_mean():
    reg = MetricsRegistry()
    h = reg.histogram("solve_seconds")
    for v in (1.0, 2.0, 6.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 9.0
    assert h.min == 1.0
    assert h.max == 6.0
    assert h.mean == 3.0
    assert reg.histogram("solve_seconds") is h


def test_labels_distinguish_instruments():
    reg = MetricsRegistry()
    reg.counter("cnf.vars", module="network").inc(10)
    reg.counter("cnf.vars", module="property").inc(2)
    assert reg.counter("cnf.vars", module="network").value == 10
    assert reg.counter("cnf.vars", module="property").value == 2
    assert len(reg) == 2


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_format():
    reg = MetricsRegistry()
    reg.counter("cnf.vars", module="network").inc(7)
    reg.gauge("learned").set(2)
    snap = reg.snapshot()
    assert snap["cnf.vars{module=network}"] == {
        "kind": "counter", "name": "cnf.vars",
        "labels": {"module": "network"}, "value": 7}
    assert snap["learned"]["kind"] == "gauge"
    assert snap["learned"]["value"] == 2


def test_merge_combines_by_kind():
    a = MetricsRegistry()
    a.counter("conflicts").inc(3)
    a.gauge("learned").set(1)
    a.histogram("t").observe(1.0)
    b = MetricsRegistry()
    b.counter("conflicts").inc(4)
    b.gauge("learned").set(9)
    b.histogram("t").observe(3.0)
    a.merge(b.snapshot())
    assert a.counter("conflicts").value == 7       # counters add
    assert a.gauge("learned").value == 9           # gauges take last
    h = a.histogram("t")                           # histograms combine
    assert (h.count, h.total, h.min, h.max) == (2, 4.0, 1.0, 3.0)


def test_merge_into_empty_registry():
    src = MetricsRegistry()
    src.counter("c", module="x").inc(2)
    dst = MetricsRegistry()
    dst.merge(src.snapshot())
    assert dst.counter("c", module="x").value == 2


def test_null_registry_is_inert():
    before = len(NULL_REGISTRY)
    NULL_REGISTRY.counter("anything").inc(5)
    NULL_REGISTRY.gauge("g").set(1)
    NULL_REGISTRY.histogram("h").observe(2.0)
    assert len(NULL_REGISTRY) == before == 0
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
