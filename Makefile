.PHONY: install test bench tables tables-full examples check clean \
	analyze lint serve-smoke

# Dev extras pull in pytest-benchmark (which `make bench` needs) and
# ruff, so a fresh clone gets a working toolchain from one command.
install:
	pip install -e ".[dev]"

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Static analysis over the example configs (all rules, SMT included);
# exits non-zero on any warning or error.
analyze:
	PYTHONPATH=src python -m repro analyze examples/configs/

# Style/lint via ruff when available (CI installs it; the dev container
# may not have it — skip with a notice rather than fail).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

# Gate for CI and pre-merge: the full test suite plus fast (< 30 s)
# smokes — the batch engine cross-checked against the naive per-query
# loop, the analyzer over the shipped example configs, and the tracing
# layer's invariants (valid Chrome trace, span/stat agreement, no-op
# overhead).  Needs no installed package, only PYTHONPATH.
check: lint analyze
	PYTHONPATH=src python -m pytest -x -q
	PYTHONPATH=src:. python benchmarks/run_batch_smoke.py
	PYTHONPATH=src:. python benchmarks/run_analysis_smoke.py
	PYTHONPATH=src:. python benchmarks/run_obs_smoke.py
	PYTHONPATH=src:. python benchmarks/run_preprocess_smoke.py --pods 2
	PYTHONPATH=src:. python benchmarks/run_satcore_smoke.py --pods 2
	PYTHONPATH=src:. python benchmarks/run_diff_smoke.py --pods 2
	PYTHONPATH=src:. python benchmarks/run_serve_smoke.py --pods 2

# The serve-daemon smoke on its own (also part of `make check`): boots
# `repro serve` and drives the full lifecycle over HTTP at the same
# --pods 2 scale as the committed BENCH_serve.json baseline.
serve-smoke:
	PYTHONPATH=src:. python benchmarks/run_serve_smoke.py --pods 2

# Regenerate every table/figure of the paper's evaluation (quick subset).
tables:
	python benchmarks/run_all.py

tables-full:
	REPRO_SCALE=full python benchmarks/run_all.py

examples:
	python examples/quickstart.py
	python examples/fault_tolerance.py
	python examples/config_files_demo.py
	python examples/datacenter_audit.py 2
	python examples/hijack_hunt.py 0 130

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
