.PHONY: install test bench tables tables-full examples check clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Gate for CI and pre-merge: the full test suite plus a fast (< 30 s)
# batch-engine smoke that cross-checks batch results against the naive
# per-query loop.  Needs no installed package, only PYTHONPATH.
check:
	PYTHONPATH=src python -m pytest -x -q
	PYTHONPATH=src:. python benchmarks/run_batch_smoke.py

# Regenerate every table/figure of the paper's evaluation (quick subset).
tables:
	python benchmarks/run_all.py

tables-full:
	REPRO_SCALE=full python benchmarks/run_all.py

examples:
	python examples/quickstart.py
	python examples/fault_tolerance.py
	python examples/config_files_demo.py
	python examples/datacenter_audit.py 2
	python examples/hijack_hunt.py 0 130

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
