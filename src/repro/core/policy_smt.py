"""Symbolic evaluation of policies: FBM, prefix lists, route maps, ACLs.

Implements the paper's §6.1 *prefix elimination* hoisting: with hoisting on,
a filter ``P/A ge B le C`` on an advertised prefix becomes a test on the
global symbolic destination IP (a conjunction of constant bit literals)
plus a window test on the record's symbolic prefix length.  With hoisting
off, records carry an explicit 32-bit prefix variable, filters test that
variable, and validity requires the expensive symbolic first-bits-match
constraint — the configuration the §8.3 ablation measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.device import DeviceConfig
from repro.net.policy import (
    Acl,
    AclRule,
    DENY,
    PERMIT,
    PrefixList,
    RouteMap,
    RouteMapClause,
)
from repro.smt import (
    FALSE,
    TRUE,
    Term,
    and_,
    bit,
    bv_val,
    eq,
    implies,
    ite,
    not_,
    or_,
    ugt,
    ule,
)
from .records import RecordFactory, SymbolicRecord

__all__ = ["fbm_const", "fbm_symbolic", "prefix_list_term", "acl_term",
           "apply_route_map", "PacketVars"]


class PacketVars:
    """The single symbolic packet (paper Figure 3, data-plane section)."""

    def __init__(self, dst_ip: Term, src_ip: Term, protocol: Term,
                 dst_port: Term, src_port: Term) -> None:
        self.dst_ip = dst_ip
        self.src_ip = src_ip
        self.protocol = protocol
        self.dst_port = dst_port
        self.src_port = src_port


def fbm_const(value: Term, network: int, length: int) -> Term:
    """First-bits-match against a *constant* prefix: a conjunction of bit
    literals on ``value`` (cheap — the §6.1 fast path)."""
    parts: List[Term] = []
    for i in range(length):
        position = 31 - i
        value_bit = bit(value, position)
        if (network >> position) & 1:
            parts.append(value_bit)
        else:
            parts.append(not_(value_bit))
    return and_(*parts)


def fbm_symbolic(prefix: Term, dst_ip: Term, length: Term) -> Term:
    """First-bits-match with a *symbolic* length: for each bit position,
    if the length covers it the bits must agree.  32 guarded equalities per
    record — the expensive encoding the paper's hoisting removes."""
    parts: List[Term] = []
    width = length.width
    for i in range(32):
        position = 31 - i
        covered = ugt(length, bv_val(i, width))
        agree = or_(and_(bit(prefix, position), bit(dst_ip, position)),
                    and_(not_(bit(prefix, position)),
                         not_(bit(dst_ip, position))))
        parts.append(implies(covered, agree))
    return and_(*parts)


def prefix_list_term(plist: PrefixList, record: SymbolicRecord,
                     dst_ip: Term, hoisted: bool) -> Term:
    """Does the prefix list permit the record's (symbolic) prefix?

    First-match-wins folded right-to-left into an ite chain; implicit deny.
    """
    result: Term = FALSE
    for entry in reversed(plist.entries):
        low, high = entry.bounds()
        width = record.prefix_len.width
        in_window = and_(ule(bv_val(low, width), record.prefix_len),
                         ule(record.prefix_len, bv_val(high, width)))
        if hoisted:
            # §6.1: the advertised prefix agrees with dstIp on the first
            # ``entry.length`` bits (since length >= entry.length within
            # the window), so test dstIp directly.
            bits_ok = fbm_const(dst_ip, entry.network, entry.length)
        else:
            bits_ok = fbm_const(record.prefix, entry.network, entry.length)
        matched = and_(in_window, bits_ok)
        outcome = TRUE if entry.action == PERMIT else FALSE
        result = ite(matched, outcome, result)
    return result


def acl_term(acl: Acl, packet: PacketVars) -> Term:
    """Does the ACL permit the symbolic packet?  Implicit deny."""
    result: Term = FALSE
    for rule in reversed(acl.rules):
        matched = _acl_rule_term(rule, packet)
        outcome = TRUE if rule.action == PERMIT else FALSE
        result = ite(matched, outcome, result)
    return result


def _acl_rule_term(rule: AclRule, packet: PacketVars) -> Term:
    parts: List[Term] = [fbm_const(packet.dst_ip, rule.dst_network,
                                   rule.dst_length)]
    if rule.src_network is not None:
        parts.append(fbm_const(packet.src_ip, rule.src_network,
                               rule.src_length))
    if rule.protocol is not None:
        parts.append(eq(packet.protocol,
                        bv_val(rule.protocol, packet.protocol.width)))
    if rule.dst_port_low is not None:
        width = packet.dst_port.width
        high = rule.dst_port_high if rule.dst_port_high is not None \
            else rule.dst_port_low
        parts.append(and_(
            ule(bv_val(rule.dst_port_low, width), packet.dst_port),
            ule(packet.dst_port, bv_val(high, width))))
    return and_(*parts)


def apply_route_map(factory: RecordFactory, device: DeviceConfig,
                    rmap: Optional[RouteMap], record: SymbolicRecord,
                    dst_ip: Term, hoisted: bool,
                    name: str = "rm") -> SymbolicRecord:
    """Symbolic route-map application (paper §3 step 4, Figure 4).

    Returns the transformed record; a denied route comes out with
    ``valid = false``.  A missing map (dangling reference) denies
    everything, mirroring the simulator.
    """
    if rmap is None:
        return record
    matched_before: Term = FALSE
    result = factory.invalid(f"{name}.deny")
    # Build bottom-up: later clauses are the else-branches of earlier ones.
    transformed: List[Tuple[Term, Optional[SymbolicRecord]]] = []
    for clause in sorted(rmap.clauses, key=lambda c: c.seq):
        matched = _clause_match_term(clause, device, record, dst_ip, hoisted)
        if clause.action == DENY:
            transformed.append((matched, None))
        else:
            transformed.append((matched, _apply_sets(factory, clause,
                                                     record)))
    for matched, outcome in reversed(transformed):
        branch = outcome if outcome is not None \
            else factory.invalid(f"{name}.deny")
        result = factory.record_ite(matched, branch, result, name=name)
    # The whole map only applies to present messages.
    return result.with_(valid=and_(record.valid, result.valid))


def _clause_match_term(clause: RouteMapClause, device: DeviceConfig,
                       record: SymbolicRecord, dst_ip: Term,
                       hoisted: bool) -> Term:
    parts: List[Term] = []
    if clause.match_prefix_list is not None:
        plist = device.prefix_lists.get(clause.match_prefix_list)
        if plist is None:
            _dangling(device, "prefix-list", clause.match_prefix_list,
                      clause)
            return FALSE
        parts.append(prefix_list_term(plist, record, dst_ip, hoisted))
    if clause.match_community_list is not None:
        clist = device.community_lists.get(clause.match_community_list)
        if clist is None:
            _dangling(device, "community-list",
                      clause.match_community_list, clause)
            return FALSE
        hit = or_(*[record.communities.get(c, FALSE)
                    for c in clist.communities])
        parts.append(hit if clist.action == PERMIT else not_(hit))
    return and_(*parts)


def _dangling(device: DeviceConfig, kind: str, name: str,
              clause: RouteMapClause) -> None:
    """Report an undefined reference; the FALSE guard above stays (it
    mirrors the simulator), but strict mode can now refuse to encode."""
    from repro.analysis.hazards import dangling_reference

    dangling_reference(
        device=getattr(device, "hostname", ""), kind=kind, name=name,
        context=f"route-map clause seq {clause.seq}", line=clause.line)


def _apply_sets(factory: RecordFactory, clause: RouteMapClause,
                record: SymbolicRecord) -> SymbolicRecord:
    updates: Dict[str, object] = {"valid": TRUE}
    if clause.set_local_pref is not None:
        updates["local_pref"] = factory.lp_const(clause.set_local_pref)
    if clause.set_metric is not None:
        updates["metric"] = factory.metric_const(clause.set_metric)
    if clause.set_med is not None:
        updates["med"] = bv_val(clause.set_med, factory.widths.med)
    out = record.with_(**updates)
    if clause.add_communities or clause.delete_communities:
        comms = dict(out.communities)
        for comm in clause.add_communities:
            comms[comm] = TRUE
        for comm in clause.delete_communities:
            comms[comm] = FALSE
        out = out.with_(communities=comms)
    return out
