"""Minesweeper core: symbolic encoding, properties, verification."""

from .counterexample import Counterexample, EnvAnnouncement
from .encoder import EncodedNetwork, EncoderOptions, NetworkEncoder
from .engine import BatchEngine, BatchQuery, verify_batch
from .verifier import VerificationResult, Verifier
from . import properties

__all__ = [
    "EncoderOptions", "NetworkEncoder", "EncodedNetwork",
    "Verifier", "VerificationResult",
    "BatchEngine", "BatchQuery", "verify_batch",
    "Counterexample", "EnvAnnouncement",
    "properties",
]
