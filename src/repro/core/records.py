"""Symbolic control-plane records (paper Figure 3) and their algebra.

A record is a bundle of terms: ``valid``, prefix length, administrative
distance, BGP local preference, protocol metric, MED, neighbor router id,
the iBGP flag, community bits, and (in the unoptimized encoding only) an
explicit 32-bit advertised prefix.  Fields of records produced by filters
and selection are arbitrary terms — constants when sliced, shared
subexpressions when merged — so the slicing/hoisting optimizations of §6
mostly amount to *not allocating variables*.

The module also implements the route-selection fold: given candidate
records, produce the best record (an if-then-else tree mirroring
:mod:`repro.sim.decision`) together with per-candidate "chosen" flags used
for the forwarding variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import (
    FALSE,
    TRUE,
    Term,
    and_,
    bool_var,
    bv_add,
    bv_val,
    bv_var,
    eq,
    iff,
    implies,
    ite,
    not_,
    or_,
    ugt,
    ule,
    ult,
)

__all__ = ["Widths", "FieldSet", "SymbolicRecord", "RecordFactory",
           "fold_best", "prefer_bgp", "prefer_igp", "prefer_overall",
           "tie_up_to_rid"]


@dataclass(frozen=True)
class Widths:
    """Bit widths of record fields."""

    prefix_len: int = 6
    ad: int = 8
    local_pref: int = 16
    metric: int = 16
    med: int = 16
    router_id: int = 8     # dense index over senders, not a 32-bit id
    asn: int = 32
    prefix: int = 32


@dataclass(frozen=True)
class FieldSet:
    """Which optional fields exist (slicing decisions, §6.2)."""

    local_pref: bool = True
    med: bool = True
    bgp_internal: bool = True
    communities: Tuple[str, ...] = ()
    neighbor_asn: bool = False   # only for the MED "same-as" mode
    originator: bool = False     # only when route reflectors exist
    explicit_prefix: bool = False  # only when prefix hoisting is OFF


@dataclass
class SymbolicRecord:
    """A control-plane message as a bundle of terms."""

    name: str
    valid: Term
    prefix_len: Term
    ad: Term
    local_pref: Term
    metric: Term
    med: Term
    router_id: Term
    bgp_internal: Term
    communities: Dict[str, Term] = field(default_factory=dict)
    neighbor_asn: Optional[Term] = None
    originator: Optional[Term] = None
    prefix: Optional[Term] = None   # explicit prefix (unoptimized mode)

    def with_(self, **updates) -> "SymbolicRecord":
        """A copy with some fields replaced."""
        return replace(self, **updates)


class RecordFactory:
    """Creates records with consistent widths, fields and defaults."""

    def __init__(self, widths: Widths, fields: FieldSet,
                 default_local_pref: int = 100) -> None:
        self.widths = widths
        self.fields = fields
        self.default_local_pref = default_local_pref

    # -- constructors ----------------------------------------------------

    def fresh(self, name: str) -> SymbolicRecord:
        """A record of fresh variables (used for per-protocol bests and,
        in the unoptimized mode, for edge import/export records)."""
        w = self.widths
        f = self.fields
        return SymbolicRecord(
            name=name,
            valid=bool_var(f"{name}.valid"),
            prefix_len=bv_var(f"{name}.len", w.prefix_len),
            ad=bv_var(f"{name}.ad", w.ad),
            local_pref=(bv_var(f"{name}.lp", w.local_pref) if f.local_pref
                        else self.lp_const(self.default_local_pref)),
            metric=bv_var(f"{name}.metric", w.metric),
            med=(bv_var(f"{name}.med", w.med) if f.med
                 else bv_val(0, w.med)),
            router_id=bv_var(f"{name}.rid", w.router_id),
            bgp_internal=(bool_var(f"{name}.ibgp") if f.bgp_internal
                          else FALSE),
            communities={c: bool_var(f"{name}.comm.{c}")
                         for c in f.communities},
            neighbor_asn=(bv_var(f"{name}.nbrAs", w.asn)
                          if f.neighbor_asn else None),
            originator=(bv_var(f"{name}.orig", w.router_id)
                        if f.originator else None),
            prefix=(bv_var(f"{name}.prefix", w.prefix)
                    if f.explicit_prefix else None),
        )

    def invalid(self, name: str = "none") -> SymbolicRecord:
        """The canonical absent message (valid = false)."""
        return self.concrete(name, valid=FALSE)

    def concrete(self, name: str, valid: Term = TRUE, prefix_len: int = 0,
                 ad: int = 0, local_pref: Optional[int] = None,
                 metric: int = 0, med: int = 0, router_id: int = 0,
                 bgp_internal: bool = False,
                 communities: Dict[str, Term] = None,
                 neighbor_asn: int = 0, originator: int = 0,
                 prefix: int = 0) -> SymbolicRecord:
        """A record of constant terms (origins, sliced defaults)."""
        w = self.widths
        f = self.fields
        if local_pref is None:
            local_pref = self.default_local_pref
        return SymbolicRecord(
            name=name,
            valid=valid,
            prefix_len=bv_val(prefix_len, w.prefix_len),
            ad=bv_val(ad, w.ad),
            local_pref=bv_val(local_pref, w.local_pref),
            metric=bv_val(metric, w.metric),
            med=bv_val(med, w.med),
            router_id=bv_val(router_id, w.router_id),
            bgp_internal=TRUE if bgp_internal else FALSE,
            communities=dict(communities or
                             {c: FALSE for c in f.communities}),
            neighbor_asn=(bv_val(neighbor_asn, w.asn)
                          if f.neighbor_asn else None),
            originator=(bv_val(originator, w.router_id)
                        if f.originator else None),
            prefix=(bv_val(prefix, w.prefix)
                    if f.explicit_prefix else None),
        )

    # -- field helpers ---------------------------------------------------

    def lp_const(self, value: int) -> Term:
        return bv_val(value, self.widths.local_pref)

    def len_const(self, value: int) -> Term:
        return bv_val(value, self.widths.prefix_len)

    def metric_const(self, value: int) -> Term:
        return bv_val(value, self.widths.metric)

    def metric_plus(self, metric: Term, delta: int) -> Term:
        return bv_add(metric, bv_val(delta, self.widths.metric))

    # -- structural operations --------------------------------------------

    def record_ite(self, cond: Term, then: SymbolicRecord,
                   els: SymbolicRecord,
                   name: str = "ite") -> SymbolicRecord:
        """Field-wise if-then-else."""
        def pick(a: Optional[Term], b: Optional[Term]) -> Optional[Term]:
            if a is None or b is None:
                return a if a is not None else b
            return ite(cond, a, b)

        comms = {}
        for key in set(then.communities) | set(els.communities):
            comms[key] = ite(cond, then.communities.get(key, FALSE),
                             els.communities.get(key, FALSE))
        return SymbolicRecord(
            name=name,
            valid=ite(cond, then.valid, els.valid),
            prefix_len=ite(cond, then.prefix_len, els.prefix_len),
            ad=ite(cond, then.ad, els.ad),
            local_pref=ite(cond, then.local_pref, els.local_pref),
            metric=ite(cond, then.metric, els.metric),
            med=ite(cond, then.med, els.med),
            router_id=ite(cond, then.router_id, els.router_id),
            bgp_internal=ite(cond, then.bgp_internal, els.bgp_internal),
            communities=comms,
            neighbor_asn=pick(then.neighbor_asn, els.neighbor_asn),
            originator=pick(then.originator, els.originator),
            prefix=pick(then.prefix, els.prefix),
        )

    def equate(self, a: SymbolicRecord, b: SymbolicRecord) -> List[Term]:
        """Guarded field-wise equality: validity always agrees; attribute
        fields agree *when valid*.  The guard is essential — absent
        messages carry junk fields, and unconditional equality would force
        impossible arithmetic cycles (e.g. ``metric = metric + 2``) through
        rings of invalid records, making the whole encoding unsatisfiable.
        """
        guard = a.valid
        constraints = [iff(a.valid, b.valid)]
        fields = [
            eq(a.prefix_len, b.prefix_len),
            eq(a.ad, b.ad),
            eq(a.local_pref, b.local_pref),
            eq(a.metric, b.metric),
            eq(a.med, b.med),
            eq(a.router_id, b.router_id),
            iff(a.bgp_internal, b.bgp_internal),
        ]
        for key in set(a.communities) | set(b.communities):
            fields.append(iff(a.communities.get(key, FALSE),
                              b.communities.get(key, FALSE)))
        for fa, fb in ((a.neighbor_asn, b.neighbor_asn),
                       (a.originator, b.originator),
                       (a.prefix, b.prefix)):
            if fa is not None and fb is not None:
                fields.append(eq(fa, fb))
        constraints.extend(implies(guard, f) for f in fields)
        return constraints


# ---------------------------------------------------------------------------
# Preference relations (mirror repro.sim.decision exactly)
# ---------------------------------------------------------------------------

def prefer_bgp(a: SymbolicRecord, b: SymbolicRecord,
               med_mode: str = "always") -> Term:
    """Term: "record ``a`` is strictly preferred over ``b``" within BGP.

    Assumes both records valid (validity handled by the fold).  Ordering:
    longer prefix (longest-prefix match folded into selection — all valid
    records of equal length share the same prefix for the sliced packet),
    higher local-pref, shorter AS path (metric), lower MED per mode, eBGP
    over iBGP, lower router id.
    """
    clauses: List[Tuple[Term, Term]] = [
        (ugt(a.prefix_len, b.prefix_len), eq(a.prefix_len, b.prefix_len)),
        (ugt(a.local_pref, b.local_pref), eq(a.local_pref, b.local_pref)),
        (ult(a.metric, b.metric), eq(a.metric, b.metric)),
    ]
    if med_mode == "always":
        clauses.append((ult(a.med, b.med), eq(a.med, b.med)))
    elif med_mode == "same-as" and a.neighbor_asn is not None \
            and b.neighbor_asn is not None:
        same = eq(a.neighbor_asn, b.neighbor_asn)
        clauses.append((and_(same, ult(a.med, b.med)),
                        or_(not_(same), eq(a.med, b.med))))
    clauses.append((and_(not_(a.bgp_internal), b.bgp_internal),
                    iff(a.bgp_internal, b.bgp_internal)))
    strictly = ult(a.router_id, b.router_id)
    for wins, ties in reversed(clauses):
        strictly = or_(wins, and_(ties, strictly))
    return strictly


def prefer_igp(a: SymbolicRecord, b: SymbolicRecord) -> Term:
    """Strict preference within OSPF/static/connected: longer prefix,
    then lower metric, then lower router id."""
    rest = or_(ult(a.metric, b.metric),
               and_(eq(a.metric, b.metric),
                    ult(a.router_id, b.router_id)))
    return or_(ugt(a.prefix_len, b.prefix_len),
               and_(eq(a.prefix_len, b.prefix_len), rest))


def prefer_overall(a: SymbolicRecord, b: SymbolicRecord) -> Term:
    """Cross-protocol preference: longest prefix, then lowest
    administrative distance (paper §3 step 5, ``bestoverall``)."""
    return or_(ugt(a.prefix_len, b.prefix_len),
               and_(eq(a.prefix_len, b.prefix_len), ult(a.ad, b.ad)))


def tie_up_to_rid(a: SymbolicRecord, b: SymbolicRecord, protocol: str,
                  med_mode: str = "always") -> Term:
    """Term: ``a`` ties ``b`` on every criterion before the router-id
    tie-break — the §4 multipath relaxation."""
    if protocol == "bgp":
        parts = [eq(a.prefix_len, b.prefix_len),
                 eq(a.local_pref, b.local_pref), eq(a.metric, b.metric),
                 iff(a.bgp_internal, b.bgp_internal)]
        if med_mode == "always":
            parts.append(eq(a.med, b.med))
        elif med_mode == "same-as" and a.neighbor_asn is not None \
                and b.neighbor_asn is not None:
            parts.append(or_(not_(eq(a.neighbor_asn, b.neighbor_asn)),
                             eq(a.med, b.med)))
        return and_(*parts)
    return and_(eq(a.prefix_len, b.prefix_len), eq(a.metric, b.metric))


def fold_best(factory: RecordFactory,
              candidates: Sequence[SymbolicRecord],
              prefer,
              name: str = "best",
              ) -> Tuple[SymbolicRecord, List[Term]]:
    """Select the best among candidates (left-biased on full ties).

    Mirrors the simulator's ``min`` over the candidate list: candidate ``i``
    replaces the running best only when strictly preferred or when the
    running best is invalid.  Returns the best record (an ite tree) and one
    "chosen" flag per candidate; exactly one flag is true when any
    candidate is valid, and the flags mirror the left-biased tie-break.

    ``prefer(a, b)`` must be a strict preference term assuming validity.
    """
    if not candidates:
        never = factory.invalid(f"{name}.empty")
        return never, []
    best = candidates[0]
    # takes[i]: candidate i displaced the running best at step i.
    takes: List[Term] = [candidates[0].valid]
    for cand in candidates[1:]:
        replaces = and_(cand.valid,
                        or_(not_(best.valid), prefer(cand, best)))
        takes.append(replaces)
        best = factory.record_ite(replaces, cand, best, name=name)
    # chosen[i]: candidate i took the lead and nobody after displaced it.
    chosen: List[Term] = []
    for i in range(len(candidates)):
        later = [not_(takes[j]) for j in range(i + 1, len(candidates))]
        chosen.append(and_(takes[i], *later))
    return best, chosen
