"""Counterexample extraction: SMT models → readable stable states."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.net import ip as iplib

__all__ = ["Counterexample", "EnvAnnouncement", "extract_counterexample"]


@dataclass
class EnvAnnouncement:
    """A concrete external announcement recovered from the model."""

    peer: str
    prefix_length: int
    path_length: int
    med: int
    communities: Tuple[str, ...]

    def __repr__(self) -> str:
        extra = f" med={self.med}" if self.med else ""
        comms = f" comms={list(self.communities)}" if self.communities \
            else ""
        return (f"{self.peer} announces dst/{self.prefix_length} "
                f"pathlen={self.path_length}{extra}{comms}")


@dataclass
class Counterexample:
    """A violating stable state: packet, environment, forwarding."""

    dst_ip: int
    src_ip: int = 0
    protocol: int = 0
    dst_port: int = 0
    announcements: List[EnvAnnouncement] = field(default_factory=list)
    failed_links: List[Tuple[str, str]] = field(default_factory=list)
    forwarding: Dict[str, List[str]] = field(default_factory=dict)
    delivered_at: List[str] = field(default_factory=list)
    dropped_at: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"packet: dstIp={iplib.format_ip(self.dst_ip)}"]
        if self.src_ip:
            lines[-1] += f" srcIp={iplib.format_ip(self.src_ip)}"
        if self.announcements:
            lines.append("environment:")
            lines.extend(f"  {a}" for a in self.announcements)
        if self.failed_links:
            lines.append(f"failed links: {self.failed_links}")
        if self.forwarding:
            lines.append("forwarding:")
            for router in sorted(self.forwarding):
                targets = ", ".join(self.forwarding[router])
                lines.append(f"  {router} -> {targets}")
        if self.delivered_at:
            lines.append(f"delivered at: {sorted(self.delivered_at)}")
        if self.dropped_at:
            lines.append(f"null-routed at: {sorted(self.dropped_at)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counterexample\n{self.summary()}\n>"


def extract_counterexample(enc, model) -> Counterexample:
    """Interpret a satisfying model against an encoded network."""
    packet = enc.packet
    cex = Counterexample(
        dst_ip=model.eval(packet.dst_ip),
        src_ip=model.eval(packet.src_ip),
        protocol=model.eval(packet.protocol),
        dst_port=model.eval(packet.dst_port),
    )
    for peer, record in enc.env.items():
        if not model.eval(record.valid):
            continue
        comms = tuple(sorted(
            name for name, term in record.communities.items()
            if model.eval(term)))
        cex.announcements.append(EnvAnnouncement(
            peer=peer,
            prefix_length=model.eval(record.prefix_len),
            path_length=model.eval(record.metric),
            med=model.eval(record.med),
            communities=comms,
        ))
    for key, term in enc.failed.items():
        if model.eval(term):
            cex.failed_links.append(key)
    for key, term in enc.failed_ext.items():
        if model.eval(term):
            cex.failed_links.append(key)
    for (router, target), edge in enc.fwd.items():
        if model.eval(edge.data):
            cex.forwarding.setdefault(router, []).append(target)
    for router, term in enc.local_deliver.items():
        if model.eval(term):
            cex.delivered_at.append(router)
    for router, term in enc.null_drop.items():
        if model.eval(term):
            cex.dropped_at.append(router)
    for targets in cex.forwarding.values():
        targets.sort()
    return cex
