"""The Minesweeper encoding: network configurations → SMT constraints.

Satisfying assignments of the generated constraint system correspond to
stable states of the routing control plane for one symbolic packet under
one symbolic environment (external announcements + up-to-k link failures),
exactly as in §3 of the paper:

* one global symbolic packet (dstIp, srcIp, ports, protocol);
* a fully symbolic control-plane record per external BGP peer (the
  environment);
* per router and protocol, a fresh "best" record tied by field-wise
  equality to the if-then-else fold of its candidate routes — the only
  variables that break the cyclic dependence between neighboring routers
  (everything else is a functional term, which subsumes the paper's
  record-merging slices);
* import/export filters, redistribution, aggregation, communities, MED
  modes, iBGP (with recursive-lookup network copies), route reflectors and
  eBGP loop-control bits encoded as term transformations;
* ``controlfwd``/``datafwd`` terms per (router, neighbor) edge, with ACLs
  applied on egress and ingress.

Optimizations (§6) are individually switchable through
:class:`EncoderOptions` so the ablation benchmark can measure them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.net import ip as iplib
from repro.net.device import BgpNeighbor, DeviceConfig
from repro.net.route import DEFAULT_AD, DEFAULT_LOCAL_PREF, IBGP_AD
from repro.net.topology import Edge, Network
from repro.smt import (
    FALSE,
    TRUE,
    Term,
    and_,
    at_most_k,
    bool_var,
    bv_val,
    bv_var,
    eq,
    iff,
    implies,
    ite,
    not_,
    or_,
    ule,
)
from .policy_smt import (
    PacketVars,
    acl_term,
    apply_route_map,
    fbm_const,
    fbm_symbolic,
)
from .records import (
    FieldSet,
    RecordFactory,
    SymbolicRecord,
    Widths,
    fold_best,
    prefer_bgp,
    prefer_igp,
    prefer_overall,
    tie_up_to_rid,
)

__all__ = ["EncoderOptions", "EncodedNetwork", "NetworkEncoder",
           "ForwardingEdge"]

MAX_BGP_PATH = 255


@dataclass(frozen=True)
class EncoderOptions:
    """Switches for the §6 optimizations plus model parameters."""

    hoist_prefixes: bool = True      # §6.1 prefix elimination
    slice_fields: bool = True        # drop never-set attributes (§6.2)
    merge_edge_records: bool = True  # functional edge records (§6.2)
    slice_connected: bool = True     # skip non-overlapping connected routes
    merge_fwd: bool = True           # share control/data fwd when no ACLs
    model_ibgp: bool = True          # §4 iBGP with recursive lookup
    max_failures: int = 0            # k in the §5 fault-tolerance bound
    exact_failures: bool = False     # require exactly k instead of <= k
    fail_external: bool = True       # external peering links can also fail
    prune_dead_clauses: bool = False  # drop SMT-proven-dead map clauses
    prune_cold_clauses: bool = False  # drop clauses cold for the dst prefix
    preprocess: bool = True          # SAT-level CNF simplification (§8)
    portfolio: int = 1               # race N seeded solver processes


@dataclass
class ForwardingEdge:
    """Forwarding decision terms for one (router → target) adjacency."""

    control: Term
    data: Term


class EncodedNetwork:
    """The result of encoding: constraints plus named model handles."""

    def __init__(self, network: Network, options: EncoderOptions,
                 factory: RecordFactory, packet: PacketVars) -> None:
        self.network = network
        self.options = options
        self.factory = factory
        self.packet = packet
        self.constraints: List[Term] = []
        # Environment handles.
        self.env: Dict[str, SymbolicRecord] = {}
        self.failed: Dict[Tuple[str, str], Term] = {}      # internal links
        self.failed_ext: Dict[Tuple[str, str], Term] = {}  # (router, peer)
        # Per-router handles.
        self.best_fib: Dict[Tuple[str, str], SymbolicRecord] = {}
        self.best_export: Dict[Tuple[str, str], SymbolicRecord] = {}
        self.best_overall: Dict[str, SymbolicRecord] = {}
        self.fwd: Dict[Tuple[str, str], ForwardingEdge] = {}
        self.local_deliver: Dict[str, Term] = {}
        self.null_drop: Dict[str, Term] = {}
        self.export_to_ext: Dict[Tuple[str, str], SymbolicRecord] = {}
        # Post-import-filter BGP session inputs, keyed by (router, sender);
        # the §5 preference properties constrain these.
        self.bgp_inputs: Dict[Tuple[str, str], SymbolicRecord] = {}
        self._fresh = itertools.count()

    # -- assembly ---------------------------------------------------------

    def add(self, *terms: Term) -> None:
        self.constraints.extend(terms)

    def add_fwd(self, router: str, target: str, control: Term,
                data: Term) -> None:
        existing = self.fwd.get((router, target))
        if existing is None:
            self.fwd[(router, target)] = ForwardingEdge(control, data)
        else:
            existing.control = or_(existing.control, control)
            existing.data = or_(existing.data, data)

    # -- constraint checkpoints (shared-encoding reuse) --------------------

    def checkpoint(self) -> int:
        """Mark the current constraint count.  The batch engine encodes a
        property, collects the instrumentation it appended via
        :meth:`constraints_since`, then :meth:`rollback`s so the shared
        encoding is not mutated across properties."""
        return len(self.constraints)

    def constraints_since(self, mark: int) -> List[Term]:
        return self.constraints[mark:]

    def rollback(self, mark: int) -> None:
        """Drop constraints appended after ``mark``."""
        if mark < 0 or mark > len(self.constraints):
            raise ValueError(f"invalid checkpoint {mark}")
        del self.constraints[mark:]

    # -- queries used by properties ----------------------------------------

    @property
    def dst_ip(self) -> Term:
        return self.packet.dst_ip

    def routers(self) -> List[str]:
        return self.network.router_names()

    def targets_of(self, router: str) -> List[str]:
        """All forwarding targets (internal neighbors + external peers)."""
        return [target for (source, target) in self.fwd if source == router]

    def data_fwd(self, router: str, target: str) -> Term:
        edge = self.fwd.get((router, target))
        return edge.data if edge is not None else FALSE

    def control_fwd(self, router: str, target: str) -> Term:
        edge = self.fwd.get((router, target))
        return edge.control if edge is not None else FALSE

    def link_failed(self, a: str, b: str) -> Term:
        return self.failed.get(_link_key(a, b), FALSE)

    def fresh_bool(self, stem: str) -> Term:
        return bool_var(f"{stem}#{next(self._fresh)}")

    def fresh_bv(self, stem: str, width: int) -> Term:
        return bv_var(f"{stem}#{next(self._fresh)}", width)


class NetworkEncoder:
    """Translates one :class:`Network` into constraints."""

    def __init__(self, network: Network,
                 options: Optional[EncoderOptions] = None) -> None:
        self.network = network
        self.options = options or EncoderOptions()
        self.prune_report = None
        if self.options.prune_dead_clauses:
            from repro.analysis.pruning import prune_network

            with obs.span("encode.prune"):
                self.network, self.prune_report = prune_network(network)
        self.widths = Widths()
        with obs.span("encode.analyze"):
            self._analyze()

    # ------------------------------------------------------------------
    # Global configuration analysis (drives the §6.2 slicing)
    # ------------------------------------------------------------------

    def _analyze(self) -> None:
        devices = self.network.devices.values()
        communities: Set[str] = set()
        lp_used = False
        med_used = False
        same_as_used = False
        rr_used = False
        lp_setting_routers: Set[str] = set()
        for dev in devices:
            for rmap in dev.route_maps.values():
                for clause in rmap.clauses:
                    communities.update(clause.add_communities)
                    communities.update(clause.delete_communities)
                    if clause.set_local_pref is not None:
                        lp_used = True
                        lp_setting_routers.add(dev.hostname)
                    if clause.set_med is not None:
                        med_used = True
            for clist in dev.community_lists.values():
                communities.update(clist.communities)
            if dev.bgp:
                if dev.bgp.med_mode == "same-as":
                    same_as_used = True
                if dev.bgp.med_mode != "ignore":
                    med_used = med_used or len(dev.bgp.neighbors) > 1
                if any(n.route_reflector_client for n in dev.bgp.neighbors):
                    rr_used = True
        slim = self.options.slice_fields
        self.fields = FieldSet(
            local_pref=lp_used or not slim,
            med=med_used or not slim,
            bgp_internal=True,
            communities=tuple(sorted(communities)),
            neighbor_asn=same_as_used,
            originator=rr_used,
            explicit_prefix=not self.options.hoist_prefixes,
        )
        # §6.1 loop detection: control bits only for routers whose policies
        # set local preferences (default-lp routers cannot select loops).
        self.loop_risk_routers = tuple(sorted(lp_setting_routers))
        self.router_index = {name: i + 1 for i, name in
                             enumerate(self.network.router_names())}
        self.peer_index = {p.name: len(self.router_index) + i + 1
                           for i, p in enumerate(self.network.externals)}
        # Packet field usage (slice unused packet variables).
        self._acl_uses = {"src": False, "proto": False, "port": False}
        for dev in devices:
            for acl in dev.acls.values():
                for rule in acl.rules:
                    if rule.src_network is not None:
                        self._acl_uses["src"] = True
                    if rule.protocol is not None:
                        self._acl_uses["proto"] = True
                    if rule.dst_port_low is not None:
                        self._acl_uses["port"] = True

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def encode(self, dst_prefix: Optional[Tuple[int, int]] = None,
               ns: str = "") -> EncodedNetwork:
        """Encode the whole network.

        Args:
            dst_prefix: optionally restrict the symbolic destination to a
                prefix (enables the connected-route slice).
            ns: namespace for variable names (isolates parallel encodings).
        """
        outer_network = self.network
        if self.options.prune_cold_clauses and dst_prefix is not None:
            # Drop route-map clauses whose match set cannot overlap the
            # pinned destination: with the §6.1 hoisted tests their
            # guards are concretely false, and record-validity gating
            # keeps non-hoisted encodings verdict-identical.  Clauses
            # setting local-preference are kept so that
            # NoForwardingLoops.default_candidates (which scans
            # ``enc.network``) sees the same pivot set either way.
            from repro.analysis.dataflow import prune_cold_for_prefix

            with obs.span("encode.prune_cold"):
                pruned_net, dropped = prune_cold_for_prefix(
                    self.network, dst_prefix)
            if dropped:
                obs.metrics().counter(
                    "encode.cold_clauses_pruned").inc(dropped)
                self.network = pruned_net
        try:
            return self._encode(dst_prefix, ns)
        finally:
            self.network = outer_network

    def _encode(self, dst_prefix: Optional[Tuple[int, int]],
                ns: str) -> EncodedNetwork:
        with obs.span("encode.network", ns=ns,
                      routers=len(self.network.devices)) as sp:
            factory = RecordFactory(self.widths, self.fields,
                                    default_local_pref=DEFAULT_LOCAL_PREF)
            packet = self._make_packet(ns)
            enc = EncodedNetwork(self.network, self.options, factory,
                                 packet)
            self._ns = ns
            self._dst_range = dst_prefix
            self._fwd_copies: Dict[Tuple[str, int], Dict[str, Term]] = {}
            if dst_prefix is not None:
                net, length = dst_prefix
                enc.add(fbm_const(packet.dst_ip, net, length))
            with obs.span("encode.failures"):
                self._encode_failures(enc)
            with obs.span("encode.environment"):
                self._encode_environment(enc)
            with obs.span("encode.ibgp"):
                self._ibgp_sessions = self._resolve_ibgp_sessions(enc)
            metrics = obs.metrics()
            for name in self.network.router_names():
                with obs.span("encode.router", router=name) as rsp:
                    before = len(enc.constraints)
                    self._encode_router(enc, name)
                    emitted = len(enc.constraints) - before
                    rsp.set(constraints=emitted)
                    metrics.counter("encode.constraints",
                                    router=name).inc(emitted)
            sp.set(constraints=len(enc.constraints))
        return enc

    def _make_packet(self, ns: str) -> PacketVars:
        dst_ip = bv_var(f"{ns}pkt.dstIp", 32)
        if self._acl_uses["src"]:
            src_ip = bv_var(f"{ns}pkt.srcIp", 32)
        else:
            src_ip = bv_val(0, 32)
        proto = bv_var(f"{ns}pkt.proto", 8) if self._acl_uses["proto"] \
            else bv_val(0, 8)
        if self._acl_uses["port"]:
            dst_port = bv_var(f"{ns}pkt.dstPort", 16)
            src_port = bv_var(f"{ns}pkt.srcPort", 16)
        else:
            dst_port = bv_val(0, 16)
            src_port = bv_val(0, 16)
        return PacketVars(dst_ip, src_ip, proto, dst_port, src_port)

    # ------------------------------------------------------------------
    # Environment: failures and external announcements
    # ------------------------------------------------------------------

    def _encode_failures(self, enc: EncodedNetwork) -> None:
        k = self.options.max_failures
        if k <= 0:
            return
        bits: List[Term] = []
        for edge in self.network.internal_links():
            key = _link_key(edge.source, edge.target)
            if key in enc.failed:
                # Parallel links between one router pair share a single
                # failure bit (the adjacency is the failable unit — the
                # model keys all gating on the router pair).
                continue
            var = bool_var(f"{self._ns}failed[{key[0]},{key[1]}]")
            enc.failed[key] = var
            bits.append(var)
        if self.options.fail_external:
            for peer in self.network.externals:
                var = bool_var(
                    f"{self._ns}failed[{peer.router},{peer.name}]")
                enc.failed_ext[(peer.router, peer.name)] = var
                bits.append(var)
        if bits:
            enc.add(at_most_k(bits, k))
            if self.options.exact_failures:
                from repro.smt import at_least_k
                enc.add(at_least_k(bits, k))

    def _encode_environment(self, enc: EncodedNetwork) -> None:
        for peer in self.network.externals:
            rec = enc.factory.fresh(f"{self._ns}env[{peer.name}]")
            # Environment sanity: lengths are <= 32; metrics (AS-path
            # lengths) leave headroom for internal prepending.
            enc.add(implies(rec.valid,
                            ule(rec.prefix_len,
                                enc.factory.len_const(32))))
            # An eBGP-learned path carries at least the peer's own ASN.
            enc.add(implies(rec.valid,
                            ule(enc.factory.metric_const(1), rec.metric)))
            enc.add(implies(rec.valid,
                            ule(rec.metric,
                                enc.factory.metric_const(MAX_BGP_PATH))))
            if not self.options.hoist_prefixes:
                # Unoptimized: the advertised prefix is explicit and must
                # cover the packet's destination (the §6.1 FBM constraint).
                enc.add(implies(rec.valid,
                                fbm_symbolic(rec.prefix, enc.dst_ip,
                                             rec.prefix_len)))
            enc.env[peer.name] = rec

    def _resolve_ibgp_sessions(self, enc: EncodedNetwork) -> Dict:
        """Pre-compute iBGP session-up terms (§4 recursive lookup).

        Adjacent sessions depend only on the shared link's failure bit.
        Non-adjacent (multihop) sessions need IGP reachability toward the
        peer address: concrete when no failures are modeled, otherwise via
        an IGP network copy with the destination pinned to the peer address.
        """
        sessions: Dict[Tuple[str, int], Term] = {}
        if not self.options.model_ibgp:
            return sessions
        for name, dev in self.network.devices.items():
            if not dev.bgp:
                continue
            for nbr in dev.bgp.neighbors:
                if nbr.remote_as != dev.bgp.asn:
                    continue
                peer_name = self.network.device_owning(nbr.peer_ip)
                if peer_name is None:
                    continue
                edge = _edge_toward(self.network, name, nbr.peer_ip)
                if edge is not None:
                    up = not_(enc.link_failed(name, peer_name))
                elif self.options.max_failures <= 0:
                    up = TRUE if self._igp_reaches_concretely(
                        name, nbr.peer_ip) else FALSE
                else:
                    up = self._encode_igp_copy(enc, name, nbr.peer_ip)
                sessions[(name, nbr.peer_ip)] = up
        return sessions

    def _igp_reaches_concretely(self, start: str, dst_ip: int) -> bool:
        from repro.sim.environment import Environment
        from repro.sim.simulator import ControlPlaneSimulator

        stripped = _igp_only_network(self.network)
        sim = ControlPlaneSimulator(stripped, Environment.empty())
        result = sim.run()
        return sim._fib_reaches(start, dst_ip, result.fibs)

    def _encode_igp_copy(self, enc: EncodedNetwork, start: str,
                         dst_ip_value: int) -> Term:
        """§4: a copy of the IGP network with dstIp pinned to the session
        address; returns the start router's reachability in the copy."""
        stripped = _igp_only_network(self.network)
        # self.network is already pruned (and the copy has no BGP, hence
        # no route-map applications): don't re-run the prover per copy.
        from dataclasses import replace as _replace
        sub_options = _replace(self.options, prune_dead_clauses=False,
                               prune_cold_clauses=False)
        sub = NetworkEncoder(stripped, sub_options)
        ns = f"{self._ns}copy[{start},{iplib.format_ip(dst_ip_value)}]."
        copy = sub.encode(dst_prefix=(dst_ip_value, 32), ns=ns)
        # Share failure variables with the outer encoding.
        for key, outer_var in enc.failed.items():
            inner = copy.failed.get(key)
            if inner is not None:
                copy.add(iff(inner, outer_var))
        enc.add(*copy.constraints)
        # Reachability instrumentation inside the copy.
        owner = self.network.device_owning(dst_ip_value)
        reach: Dict[str, Term] = {}
        for router in copy.routers():
            reach[router] = bool_var(f"{ns}reach[{router}]")
        for router in copy.routers():
            hops = [and_(copy.data_fwd(router, t), reach[t])
                    for t in copy.targets_of(router)
                    if t in self.network.devices]
            base = TRUE if router == owner else FALSE
            enc.add(iff(reach[router], or_(base, *hops)))
        # Remember the copy's first-hop forwarding for the recursive
        # data-plane lookup at ``start``.
        self._fwd_copies[(start, dst_ip_value)] = {
            target: copy.data_fwd(start, target)
            for target in copy.targets_of(start)
            if target in self.network.devices
        }
        return reach.get(start, FALSE)

    # ------------------------------------------------------------------
    # Per-router encoding
    # ------------------------------------------------------------------

    def _encode_router(self, enc: EncodedNetwork, name: str) -> None:
        dev = self.network.device(name)
        factory = enc.factory
        # Per-protocol candidate construction; each candidate carries the
        # forwarding action wired through its chosen flag.
        conn_cands = self._connected_candidates(enc, name, dev)
        static_cands = self._static_candidates(enc, name, dev)
        ospf = self._ospf_candidates(enc, name, dev)
        bgp = self._bgp_candidates(enc, name, dev)

        entries = []  # (proto, fib_best, fib_cands, multipath)
        if conn_cands:
            best, chosen = fold_best(factory,
                                     [c.record for c in conn_cands],
                                     prefer_igp, name=f"{name}.conn.best")
            entries.append(("connected", best, conn_cands, chosen))
        if static_cands:
            best, chosen = fold_best(factory,
                                     [c.record for c in static_cands],
                                     prefer_igp, name=f"{name}.static.best")
            entries.append(("static", best, static_cands, chosen))
        if ospf is not None:
            entries.append(ospf)
        if bgp is not None:
            entries.append(bgp)

        # Cross-protocol selection (ordered to mirror the simulator's
        # deterministic (ad, protocol-name) tie-break).
        order = {"bgp": 0, "connected": 1, "ospf": 2, "static": 3}
        entries.sort(key=lambda e: order[e[0]])
        overall, proto_chosen = fold_best(
            factory, [e[1] for e in entries], prefer_overall,
            name=f"{name}.best")
        enc.best_overall[name] = overall

        # Forwarding wiring: candidate chosen within its protocol AND the
        # protocol chosen overall.
        null_terms: List[Term] = []
        local_terms: List[Term] = []
        owns = or_(*[eq(enc.dst_ip, bv_val(iface.address, 32))
                     for iface in dev.interfaces.values()
                     if iface.address and not iface.shutdown])
        local_terms.append(owns)
        for (proto, best, cands, chosen), proto_flag in zip(entries,
                                                            proto_chosen):
            multipath = _multipath_enabled(dev, proto)
            for cand, flag in zip(cands, chosen):
                if multipath:
                    # §4 multipath: any candidate tying the winner up to
                    # the router-id tie-break is used.
                    flag = and_(cand.record.valid,
                                tie_up_to_rid(cand.record, best, proto,
                                              _med_mode(dev)))
                active = and_(flag, proto_flag, not_(owns))
                self._wire_candidate(enc, name, dev, cand, active,
                                     null_terms, local_terms)
        enc.local_deliver[name] = or_(*local_terms)
        enc.null_drop[name] = or_(*null_terms)

        # Exports toward external peers (for leak/equivalence properties).
        self._encode_external_exports(enc, name, dev)

    # -- candidates -------------------------------------------------------

    def _connected_candidates(self, enc: EncodedNetwork, name: str,
                              dev: DeviceConfig) -> List["_Candidate"]:
        out: List[_Candidate] = []
        for iface in sorted(dev.interfaces.values(), key=lambda i: i.name):
            if iface.shutdown or not iface.address:
                continue
            subnet, length = iface.subnet
            if self.options.slice_connected and self._dst_range is not None:
                net, dlen = self._dst_range
                if not iplib.prefix_overlaps(subnet, length, net, dlen):
                    continue
            record = enc.factory.concrete(
                f"{name}.conn[{iface.name}]",
                valid=fbm_const(enc.dst_ip, subnet, length),
                prefix_len=length,
                ad=DEFAULT_AD["connected"],
                router_id=self.router_index[name],
                prefix=subnet,
            )
            out.append(_Candidate(record=record, kind="connected",
                                  iface_name=iface.name))
        return out

    def _static_candidates(self, enc: EncodedNetwork, name: str,
                           dev: DeviceConfig) -> List["_Candidate"]:
        out: List[_Candidate] = []
        for idx, static in enumerate(dev.static_routes):
            valid = fbm_const(enc.dst_ip, static.network, static.length)
            kind = "static-drop"
            target: Optional[str] = None
            iface_name: Optional[str] = None
            if static.drop:
                pass
            elif static.interface is not None:
                iface = dev.interfaces.get(static.interface)
                if iface is None or iface.shutdown:
                    continue
                kind = "static-iface"
                iface_name = static.interface
            else:
                target = _static_target(self.network, name, dev,
                                        static.next_hop_ip)
                if target is None:
                    continue
                kind = "static-next-hop"
                if target in self.network.devices:
                    valid = and_(valid,
                                 not_(enc.link_failed(name, target)))
                else:
                    valid = and_(valid, not_(enc.failed_ext.get(
                        (name, target), FALSE)))
            record = enc.factory.concrete(
                f"{name}.static[{idx}]",
                valid=valid,
                prefix_len=static.length,
                ad=static.ad,
                router_id=self.router_index[name],
                prefix=static.network,
            )
            out.append(_Candidate(record=record, kind=kind, target=target,
                                  iface_name=iface_name))
        return out

    def _ospf_candidates(self, enc: EncodedNetwork, name: str,
                         dev: DeviceConfig):
        if dev.ospf is None:
            return None
        factory = enc.factory
        cands: List[_Candidate] = []
        for edge in self.network.edges_from(name):
            local_iface = dev.interfaces[edge.source_iface]
            if not dev.ospf.covers(local_iface.address):
                continue
            peer_dev = self.network.device(edge.target)
            if peer_dev.ospf is None:
                continue
            remote_iface = peer_dev.interfaces[edge.target_iface]
            if not peer_dev.ospf.covers(remote_iface.address):
                continue
            peer_best = enc.best_export.get((edge.target, "ospf"))
            if peer_best is None:
                peer_best = factory.fresh(
                    f"{self._ns}{edge.target}.ospf.exp")
                enc.best_export[(edge.target, "ospf")] = peer_best
            link_up = not_(enc.link_failed(name, edge.target))
            record = peer_best.with_(
                name=f"{name}.ospf.in[{edge.target}]",
                valid=and_(peer_best.valid, link_up),
                ad=bv_val(DEFAULT_AD["ospf"], self.widths.ad),
                metric=factory.metric_plus(peer_best.metric,
                                           local_iface.ospf_cost),
                router_id=bv_val(self.router_index[edge.target],
                                 self.widths.router_id),
            )
            cands.append(_Candidate(record=record, kind="igp-edge",
                                    target=edge.target))
        # Origins (advertise-only): interface subnets + redistribution.
        origins: List[SymbolicRecord] = []
        for iface in sorted(dev.interfaces.values(), key=lambda i: i.name):
            if iface.shutdown or not iface.address:
                continue
            if not dev.ospf.covers(iface.address):
                continue
            subnet, length = iface.subnet
            origins.append(factory.concrete(
                f"{name}.ospf.origin[{iface.name}]",
                valid=fbm_const(enc.dst_ip, subnet, length),
                prefix_len=length, ad=DEFAULT_AD["ospf"], metric=0,
                router_id=self.router_index[name], prefix=subnet))
        for proto, metric in sorted(dev.ospf.redistribute.items()):
            source = self._redistribution_source(enc, name, dev, proto)
            if source is None:
                continue
            origins.append(source.with_(
                name=f"{name}.ospf.redist[{proto}]",
                ad=bv_val(DEFAULT_AD["ospf"], self.widths.ad),
                metric=factory.metric_const(metric or 20),
                router_id=bv_val(self.router_index[name],
                                 self.widths.router_id)))
        fib_rec, input_chosen = self._select_protocol(
            enc, name, "ospf", cands, origins, prefer_igp)
        return ("ospf", fib_rec, cands, input_chosen)

    def _bgp_candidates(self, enc: EncodedNetwork, name: str,
                        dev: DeviceConfig):
        if dev.bgp is None:
            return None
        factory = enc.factory
        cands: List[_Candidate] = []
        for nbr in dev.bgp.neighbors:
            candidate = self._bgp_session_input(enc, name, dev, nbr)
            if candidate is not None:
                cands.append(candidate)
        origins: List[SymbolicRecord] = []
        for network, length in dev.bgp.networks:
            origins.append(factory.concrete(
                f"{name}.bgp.net[{iplib.format_prefix(network, length)}]",
                valid=fbm_const(enc.dst_ip, network, length),
                prefix_len=length, ad=DEFAULT_AD["bgp"],
                local_pref=DEFAULT_LOCAL_PREF, metric=0,
                router_id=self.router_index[name],
                originator=self.router_index[name], prefix=network))
        for proto, metric in sorted(dev.bgp.redistribute.items()):
            source = self._redistribution_source(enc, name, dev, proto)
            if source is None:
                continue
            updates = dict(
                ad=bv_val(DEFAULT_AD["bgp"], self.widths.ad),
                local_pref=factory.lp_const(DEFAULT_LOCAL_PREF),
                metric=factory.metric_const(0),
                med=bv_val(metric, self.widths.med),
                bgp_internal=FALSE,
                router_id=bv_val(self.router_index[name],
                                 self.widths.router_id))
            if self.fields.originator:
                updates["originator"] = bv_val(
                    self.router_index[name], self.widths.router_id)
            origins.append(source.with_(
                name=f"{name}.bgp.redist[{proto}]", **updates))
        fib_rec, input_chosen = self._select_protocol(
            enc, name, "bgp", cands, origins,
            lambda a, b: prefer_bgp(a, b, dev.bgp.med_mode))
        return ("bgp", fib_rec, cands, input_chosen)

    def _select_protocol(self, enc: EncodedNetwork, name: str, proto: str,
                         cands: List["_Candidate"],
                         origins: List[SymbolicRecord], prefer,
                         ) -> Tuple[SymbolicRecord, List[Term]]:
        """One selection fold per protocol instance (paper §3 step 5).

        Learned (session/edge) inputs and locally-originated routes
        (network statements, redistribution) compete in a single fold —
        mirroring the protocol's table.  The *export* best is the overall
        winner; the *FIB* best is valid only when a learned input won
        (origins are advertise-only: when one wins, the device forwards
        with the origin's source protocol instead, suppressing this one).

        The two fresh records tied here are the only variables breaking
        cyclic dependencies between neighboring routers (and through
        redistribution rings); with record merging disabled, per-session
        records add the naive encoding's unshared variables.
        """
        factory = enc.factory
        records = [c.record for c in cands] + origins
        fold, chosen_all = fold_best(factory, records, prefer,
                                     name=f"{name}.{proto}.sel")
        export_rec = enc.best_export.get((name, proto))
        if export_rec is None:
            export_rec = factory.fresh(f"{self._ns}{name}.{proto}.exp")
            enc.best_export[(name, proto)] = export_rec
        enc.add(*factory.equate(export_rec, fold))
        self._naive_prefix_constraint(enc, export_rec)
        input_chosen = chosen_all[:len(cands)]
        input_won = or_(*input_chosen)
        fib_fold = fold.with_(valid=and_(fold.valid, input_won))
        fib_rec = enc.best_fib.get((name, proto))
        if fib_rec is None:
            fib_rec = factory.fresh(f"{self._ns}{name}.{proto}.fib")
            enc.best_fib[(name, proto)] = fib_rec
        enc.add(*factory.equate(fib_rec, fib_fold))
        self._naive_prefix_constraint(enc, fib_rec)
        return fib_rec, input_chosen

    def _naive_prefix_constraint(self, enc: EncodedNetwork,
                                 rec: SymbolicRecord) -> None:
        """Unoptimized mode: every materialized record carries an explicit
        advertised prefix that must cover the packet destination — the
        expensive symbolic FBM the §6.1 hoisting eliminates."""
        if self.options.hoist_prefixes or rec.prefix is None:
            return
        enc.add(implies(rec.valid,
                        fbm_symbolic(rec.prefix, enc.dst_ip,
                                     rec.prefix_len)))

    def _redistribution_source(self, enc: EncodedNetwork, name: str,
                               dev: DeviceConfig,
                               proto: str) -> Optional[SymbolicRecord]:
        """Best record of the redistribution source protocol."""
        factory = enc.factory
        if proto == "connected":
            cands = self._connected_candidates(enc, name, dev)
            if not cands:
                return None
            best, _ = fold_best(factory, [c.record for c in cands],
                                prefer_igp, name=f"{name}.connsrc")
            return best
        if proto == "static":
            cands = self._static_candidates(enc, name, dev)
            if not cands:
                return None
            best, _ = fold_best(factory, [c.record for c in cands],
                                prefer_igp, name=f"{name}.staticsrc")
            return best
        if proto in ("ospf", "bgp"):
            # Redistribution draws from the protocol's *routing table*
            # (learned routes — the FIB best), never from its export best:
            # a protocol's own redistributed product is not in its table,
            # so same-router BGP→OSPF→BGP feedback cannot self-justify
            # ghost routes in a stable state.
            if proto == "ospf" and dev.ospf is None:
                return None
            if proto == "bgp" and dev.bgp is None:
                return None
            key = (name, proto)
            rec = enc.best_fib.get(key)
            if rec is None:
                rec = factory.fresh(f"{self._ns}{name}.{proto}.fib")
                enc.best_fib[key] = rec
            return rec
        return None

    # -- BGP session input --------------------------------------------------

    def _bgp_session_input(self, enc: EncodedNetwork, name: str,
                           dev: DeviceConfig,
                           nbr: BgpNeighbor) -> Optional["_Candidate"]:
        peer_name = self.network.device_owning(nbr.peer_ip)
        if peer_name is None:
            return self._bgp_external_input(enc, name, dev, nbr)
        peer_dev = self.network.device(peer_name)
        if peer_dev.bgp is None:
            return None
        internal = nbr.remote_as == dev.bgp.asn
        factory = enc.factory
        best = enc.best_export.get((peer_name, "bgp"))
        if best is None:
            best = factory.fresh(f"{self._ns}{peer_name}.bgp.exp")
            enc.best_export[(peer_name, "bgp")] = best

        # Sender-side export transform.
        my_address = _address_facing(dev, nbr.peer_ip)
        reverse = peer_dev.bgp.neighbor(my_address) if my_address else None
        exported = best
        valid_parts: List[Term] = [best.valid]
        if internal:
            if not self.options.model_ibgp:
                return None
            up = self._ibgp_sessions.get((name, nbr.peer_ip))
            if up is None:
                return None
            valid_parts.append(up)
            is_reflector = reverse is not None and \
                reverse.route_reflector_client
            if not is_reflector:
                valid_parts.append(not_(best.bgp_internal))
            elif best.originator is not None:
                valid_parts.append(or_(
                    not_(best.bgp_internal),
                    not_(eq(best.originator,
                            bv_val(self.router_index[name],
                                   self.widths.router_id)))))
        else:
            edge = _edge_toward(self.network, name, nbr.peer_ip)
            if edge is None:
                return None
            valid_parts.append(not_(enc.link_failed(name, peer_name)))
        if reverse is not None and reverse.route_map_out:
            exported = apply_route_map(
                factory, peer_dev,
                peer_dev.route_maps.get(reverse.route_map_out),
                exported, enc.dst_ip, self.options.hoist_prefixes,
                name=f"{name}.in[{peer_name}].out")
            if reverse.route_map_out not in peer_dev.route_maps:
                return None
            valid_parts.append(exported.valid)
        # Aggregation at export (§4).
        exported = self._apply_aggregation(enc, peer_dev, exported)
        updates: Dict[str, object] = {}
        if internal:
            updates["ad"] = bv_val(IBGP_AD, self.widths.ad)
            updates["bgp_internal"] = TRUE
            if best.originator is not None:
                updates["originator"] = ite(
                    best.bgp_internal, best.originator,
                    bv_val(self.router_index[peer_name],
                           self.widths.router_id))
        else:
            no_overflow = ule(exported.metric,
                              factory.metric_const(MAX_BGP_PATH - 1))
            valid_parts.append(no_overflow)
            updates["metric"] = factory.metric_plus(exported.metric, 1)
            updates["ad"] = bv_val(DEFAULT_AD["bgp"], self.widths.ad)
            updates["bgp_internal"] = FALSE
            updates["local_pref"] = factory.lp_const(DEFAULT_LOCAL_PREF)
            if reverse is None or not reverse.route_map_out:
                updates["med"] = bv_val(0, self.widths.med)
            if self.fields.neighbor_asn:
                updates["neighbor_asn"] = bv_val(peer_dev.bgp.asn,
                                                 self.widths.asn)
        updates["router_id"] = bv_val(self.router_index[peer_name],
                                      self.widths.router_id)
        updates["valid"] = and_(*valid_parts)
        record = exported.with_(name=f"{name}.bgp.in[{peer_name}]",
                                **updates)
        record = self._import_side(enc, name, dev, nbr, record, peer_name)
        if record is None:
            return None
        enc.bgp_inputs[(name, peer_name)] = record
        return _Candidate(record=record, kind="bgp-session",
                          target=peer_name, session_ip=nbr.peer_ip,
                          internal=internal)

    def _bgp_external_input(self, enc: EncodedNetwork, name: str,
                            dev: DeviceConfig,
                            nbr: BgpNeighbor) -> Optional["_Candidate"]:
        peer = next((p for p in self.network.externals_at(name)
                     if p.peer_ip == nbr.peer_ip), None)
        if peer is None:
            return None
        factory = enc.factory
        env = enc.env[peer.name]
        link_up = not_(enc.failed_ext.get((name, peer.name), FALSE))
        updates: Dict[str, object] = {
            "valid": and_(env.valid, link_up),
            "ad": bv_val(DEFAULT_AD["bgp"], self.widths.ad),
            "local_pref": factory.lp_const(DEFAULT_LOCAL_PREF),
            "bgp_internal": FALSE,
            "router_id": bv_val(self.peer_index[peer.name],
                                self.widths.router_id),
        }
        if self.fields.neighbor_asn:
            updates["neighbor_asn"] = bv_val(peer.asn, self.widths.asn)
        if self.fields.originator:
            updates["originator"] = bv_val(self.peer_index[peer.name],
                                           self.widths.router_id)
        record = env.with_(name=f"{name}.bgp.in[{peer.name}]", **updates)
        record = self._import_side(enc, name, dev, nbr, record, peer.name)
        if record is None:
            return None
        enc.bgp_inputs[(name, peer.name)] = record
        return _Candidate(record=record, kind="bgp-session",
                          target=peer.name, session_ip=nbr.peer_ip,
                          internal=False)

    def _import_side(self, enc: EncodedNetwork, name: str,
                     dev: DeviceConfig, nbr: BgpNeighbor,
                     record: SymbolicRecord,
                     sender: str) -> Optional[SymbolicRecord]:
        if nbr.route_map_in:
            rmap = dev.route_maps.get(nbr.route_map_in)
            if rmap is None:
                # Dangling reference blocks the session (deny-all import).
                _report_dangling(dev, nbr.route_map_in, nbr, "in")
                return None
            record = apply_route_map(enc.factory, dev, rmap, record,
                                     enc.dst_ip,
                                     self.options.hoist_prefixes,
                                     name=f"{name}.in[{sender}].im")
        if not self.options.merge_edge_records:
            # Naive encoding: a fresh record per session with equality
            # constraints instead of shared functional terms.
            fresh = enc.factory.fresh(
                f"{self._ns}{name}.bgp.inrec[{sender}]")
            enc.add(*enc.factory.equate(fresh, record))
            self._naive_prefix_constraint(enc, fresh)
            record = fresh
        return record

    def _apply_aggregation(self, enc: EncodedNetwork,
                           sender_dev: DeviceConfig,
                           record: SymbolicRecord) -> SymbolicRecord:
        if sender_dev.bgp is None or not sender_dev.bgp.aggregates:
            return record
        out = record
        for agg_net, agg_len in sender_dev.bgp.aggregates:
            applies = and_(
                fbm_const(enc.dst_ip, agg_net, agg_len),
                ule(bv_val(agg_len + 1, self.widths.prefix_len),
                    out.prefix_len))
            out = out.with_(prefix_len=ite(
                applies, enc.factory.len_const(agg_len), out.prefix_len))
        return out

    # -- forwarding wiring ---------------------------------------------------

    def _wire_candidate(self, enc: EncodedNetwork, name: str,
                        dev: DeviceConfig, cand: "_Candidate", active: Term,
                        null_terms: List[Term],
                        local_terms: List[Term]) -> None:
        if cand.kind == "static-drop":
            null_terms.append(active)
            return
        if cand.kind in ("connected", "static-iface"):
            iface = dev.interfaces[cand.iface_name]
            self._wire_subnet_delivery(enc, name, dev, iface, active,
                                       local_terms)
            return
        if cand.kind == "static-next-hop":
            self._emit_fwd(enc, name, dev, cand.target, active)
            return
        if cand.kind == "igp-edge":
            self._emit_fwd(enc, name, dev, cand.target, active)
            return
        if cand.kind == "bgp-session":
            target = cand.target
            if target in self.network.devices and \
                    self.network.edge_between(name, target) is None:
                # Multihop iBGP: recursive lookup through the IGP (§4).
                self._wire_recursive(enc, name, dev, target,
                                     cand.session_ip, active)
            else:
                self._emit_fwd(enc, name, dev, target, active)
            return
        raise AssertionError(f"unknown candidate kind {cand.kind}")

    def _wire_subnet_delivery(self, enc: EncodedNetwork, name: str,
                              dev: DeviceConfig, iface, active: Term,
                              local_terms: List[Term]) -> None:
        """A connected/interface route: the destination may be a neighbor
        device on the subnet, an external peer, or a host."""
        subnet, length = iface.subnet
        other_addrs: List[Term] = []
        for edge in self.network.edges_from(name):
            if edge.source_iface != iface.name:
                continue
            peer_addr = self.network.peer_address_on(edge)
            if peer_addr is None:
                continue
            is_peer = eq(enc.dst_ip, bv_val(peer_addr, 32))
            other_addrs.append(is_peer)
            self._emit_fwd(enc, name, dev, edge.target,
                           and_(active, is_peer))
        for peer in self.network.externals_at(name):
            if peer.router_iface != iface.name:
                continue
            is_peer = eq(enc.dst_ip, bv_val(peer.peer_ip, 32))
            other_addrs.append(is_peer)
            self._emit_fwd(enc, name, dev, peer.name,
                           and_(active, is_peer))
        # Hosts on the subnet: delivered locally.
        local_terms.append(and_(active, not_(or_(*other_addrs))))

    def _wire_recursive(self, enc: EncodedNetwork, name: str,
                        dev: DeviceConfig, ibgp_peer: str, session_ip: int,
                        active: Term) -> None:
        copy_fwd = self._copy_forwarding(enc, name, session_ip)
        if copy_fwd is None:
            return
        for target, fwd_term in copy_fwd.items():
            self._emit_fwd(enc, name, dev, target, and_(active, fwd_term))

    def _copy_forwarding(self, enc: EncodedNetwork, name: str,
                         session_ip: int) -> Optional[Dict[str, Term]]:
        """First-hop forwarding toward a multihop iBGP peer address."""
        stored = self._fwd_copies.get((name, session_ip))
        if stored is not None:
            return stored
        # No symbolic copy was built (k = 0): consult the IGP simulator.
        from repro.sim.environment import Environment
        from repro.sim.simulator import ControlPlaneSimulator

        stripped = _igp_only_network(self.network)
        result = ControlPlaneSimulator(stripped, Environment.empty()).run()
        routes = result.fib_lookup(name, session_ip)
        out: Dict[str, Term] = {}
        for route in routes:
            if route.next_hop is not None:
                out[route.next_hop] = TRUE
        return out or None

    def _emit_fwd(self, enc: EncodedNetwork, name: str, dev: DeviceConfig,
                  target: str, control: Term) -> None:
        """Register control/data forwarding terms for one adjacency,
        applying egress and ingress ACLs (paper §3 step 7)."""
        data = control
        egress_iface = self._egress_iface(name, dev, target)
        if egress_iface is not None and egress_iface.acl_out:
            acl = dev.acls.get(egress_iface.acl_out)
            permit = acl_term(acl, enc.packet) if acl else FALSE
            data = and_(data, permit)
        if target in self.network.devices:
            edge = self.network.edge_between(name, target)
            if edge is not None:
                tgt_dev = self.network.device(target)
                in_iface = tgt_dev.interfaces.get(edge.target_iface)
                if in_iface is not None and in_iface.acl_in:
                    acl = tgt_dev.acls.get(in_iface.acl_in)
                    permit = acl_term(acl, enc.packet) if acl else FALSE
                    data = and_(data, permit)
        if self.options.merge_fwd:
            enc.add_fwd(name, target, control, data)
        else:
            # Naive encoding: dedicated boolean variables per edge with
            # defining constraints (what the merge slice removes).
            cvar = enc.fresh_bool(f"{self._ns}controlfwd[{name},{target}]")
            dvar = enc.fresh_bool(f"{self._ns}datafwd[{name},{target}]")
            enc.add(iff(cvar, control), iff(dvar, data))
            enc.add_fwd(name, target, cvar, dvar)

    def _egress_iface(self, name: str, dev: DeviceConfig, target: str):
        if target in self.network.devices:
            edge = self.network.edge_between(name, target)
            return dev.interfaces.get(edge.source_iface) if edge else None
        peer = next((p for p in self.network.externals_at(name)
                     if p.name == target), None)
        return dev.interfaces.get(peer.router_iface) if peer else None

    # -- exports toward external peers ---------------------------------------

    def _encode_external_exports(self, enc: EncodedNetwork, name: str,
                                 dev: DeviceConfig) -> None:
        if dev.bgp is None:
            return
        best = enc.best_export.get((name, "bgp"))
        if best is None:
            return
        for peer in self.network.externals_at(name):
            nbr = dev.bgp.neighbor(peer.peer_ip)
            if nbr is None:
                continue
            exported = best
            valid_parts = [best.valid,
                           not_(enc.failed_ext.get((name, peer.name),
                                                   FALSE))]
            if nbr.route_map_out:
                rmap = dev.route_maps.get(nbr.route_map_out)
                exported = apply_route_map(
                    enc.factory, dev, rmap, exported, enc.dst_ip,
                    self.options.hoist_prefixes,
                    name=f"{name}.out[{peer.name}]")
                if rmap is None:
                    _report_dangling(dev, nbr.route_map_out, nbr, "out")
                    valid_parts.append(FALSE)
                valid_parts.append(exported.valid)
            exported = self._apply_aggregation(enc, dev, exported)
            no_overflow = ule(exported.metric,
                              enc.factory.metric_const(MAX_BGP_PATH - 1))
            updates: Dict[str, object] = dict(
                valid=and_(*valid_parts, no_overflow),
                metric=enc.factory.metric_plus(exported.metric, 1),
                bgp_internal=FALSE)
            if not nbr.route_map_out:
                # MED is non-transitive across AS boundaries unless an
                # export policy sets it (mirrors the simulator).
                updates["med"] = bv_val(0, self.widths.med)
            record = exported.with_(name=f"{name}.exp[{peer.name}]",
                                    **updates)
            enc.export_to_ext[(name, peer.name)] = record


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

@dataclass
class _Candidate:
    """A route candidate plus how to forward if it is chosen."""

    record: SymbolicRecord
    kind: str
    target: Optional[str] = None
    iface_name: Optional[str] = None
    session_ip: Optional[int] = None
    internal: bool = False


def _report_dangling(dev: DeviceConfig, map_name: str, nbr: BgpNeighbor,
                     direction: str) -> None:
    """Signal an undefined route-map on a BGP session (the encoder
    treats it as deny-all; strict mode refuses to encode)."""
    from repro.analysis.hazards import dangling_reference

    line = nbr.route_map_in_line if direction == "in" \
        else nbr.route_map_out_line
    dangling_reference(
        device=dev.hostname, kind="route-map", name=map_name,
        context=f"neighbor {iplib.format_ip(nbr.peer_ip)} "
                f"route-map {direction}",
        line=line or nbr.line)


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _edge_toward(network: Network, name: str, peer_ip: int):
    for edge in network.edges_from(name):
        if network.peer_address_on(edge) == peer_ip:
            return edge
    return None


def _address_facing(dev: DeviceConfig, peer_ip: int) -> Optional[int]:
    iface = dev.interface_for_subnet(peer_ip)
    if iface is not None:
        return iface.address
    addresses = [i.address for i in dev.interfaces.values() if i.address]
    return addresses[0] if addresses else None


def _static_target(network: Network, name: str, dev: DeviceConfig,
                   next_hop_ip: Optional[int]) -> Optional[str]:
    if next_hop_ip is None:
        return None
    for edge in network.edges_from(name):
        if network.peer_address_on(edge) == next_hop_ip:
            return edge.target
    for peer in network.externals_at(name):
        if peer.peer_ip == next_hop_ip:
            return peer.name
    return None


def _igp_only_network(network: Network) -> Network:
    """A copy of the network with BGP removed (for iBGP lookup copies)."""
    import copy as copymod

    devices = []
    for dev in network.devices.values():
        clone = copymod.deepcopy(dev)
        clone.bgp = None
        devices.append(clone)
    return Network(devices)


def _multipath_enabled(dev: DeviceConfig, proto: str) -> bool:
    if proto == "bgp":
        return bool(dev.bgp and dev.bgp.multipath)
    if proto == "ospf":
        return bool(dev.ospf and dev.ospf.multipath)
    return False


def _med_mode(dev: DeviceConfig) -> str:
    return dev.bgp.med_mode if dev.bgp else "always"

