"""Local equivalence of two routers (§5).

Encodes the two routers *in isolation* with shared symbolic inputs: a
symbolic packet, one shared symbolic route record per paired BGP session,
and a shared symbolic best route for the export direction.  The routers
are equivalent when, for every input, paired import filters produce equal
records, paired export filters produce equal records, and paired interface
ACLs make identical packet decisions.

Sessions are paired in sorted order (external peers first, then internal,
by address); interfaces are paired by sorted name — the convention the
role-based checks of §8.1 rely on (same-role devices are generated from
the same template, so ordering is stable).
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.device import DeviceConfig
from repro.net.topology import Network
from repro.smt import (
    FALSE,
    SAT,
    Solver,
    Term,
    TRUE,
    UNKNOWN,
    UNSAT,
    and_,
    bv_var,
    iff,
    not_,
    or_,
)
from .encoder import EncoderOptions
from .policy_smt import PacketVars, acl_term, apply_route_map
from .records import FieldSet, RecordFactory, Widths

__all__ = ["check_local_equivalence"]


def check_local_equivalence(network: Network, router_a: str, router_b: str,
                            options: Optional[EncoderOptions] = None,
                            conflict_budget: Optional[int] = None,
                            iface_pairing: str = "sorted"):
    """``iface_pairing`` controls how interfaces are matched:

    * ``"sorted"`` (default) — position-wise over name-sorted interfaces;
      differing interface counts are a structural inequivalence.
    * ``"by-name"`` — only interfaces present on both routers under the
      same name are compared (role checks over asymmetric topologies:
      the role-defining ``mgmt``/``rack`` interfaces pair up, point-to-
      point link interfaces are ignored).
    """
    from .verifier import VerificationResult

    options = options or EncoderOptions()
    dev_a = network.device(router_a)
    dev_b = network.device(router_b)
    name = f"LocalEquivalence[{router_a},{router_b}]"

    structural = _structural_mismatch(dev_a, dev_b,
                                      check_ifaces=iface_pairing == "sorted")
    if structural is not None:
        return VerificationResult(property_name=name, holds=False,
                                  message=structural)

    factory = RecordFactory(Widths(), _field_set(network, options))
    packet = PacketVars(
        dst_ip=bv_var("eqv.pkt.dstIp", 32),
        src_ip=bv_var("eqv.pkt.srcIp", 32),
        protocol=bv_var("eqv.pkt.proto", 8),
        dst_port=bv_var("eqv.pkt.dstPort", 16),
        src_port=bv_var("eqv.pkt.srcPort", 16),
    )
    differences: List[Term] = []

    # Paired interfaces: ACL decisions on the symbolic packet must agree.
    if iface_pairing == "by-name":
        shared = sorted(set(dev_a.interfaces) & set(dev_b.interfaces))
        pairs = [(dev_a.interfaces[n], dev_b.interfaces[n])
                 for n in shared]
    else:
        pairs = list(zip(_sorted_ifaces(dev_a), _sorted_ifaces(dev_b)))
    for if_a, if_b in pairs:
        for attr in ("acl_in", "acl_out"):
            term_a = _acl_decision(dev_a, getattr(if_a, attr), packet)
            term_b = _acl_decision(dev_b, getattr(if_b, attr), packet)
            differences.append(not_(iff(term_a, term_b)))

    # Paired BGP sessions: shared symbolic input through each import
    # filter, shared symbolic best through each export filter.
    sessions_a = _sorted_sessions(network, dev_a)
    sessions_b = _sorted_sessions(network, dev_b)
    hoisted = options.hoist_prefixes
    for i, (nbr_a, nbr_b) in enumerate(zip(sessions_a, sessions_b)):
        shared_in = factory.fresh(f"eqv.in[{i}]")
        imported_a = _through_map(factory, dev_a, nbr_a.route_map_in,
                                  shared_in, packet, hoisted, f"a.imp{i}")
        imported_b = _through_map(factory, dev_b, nbr_b.route_map_in,
                                  shared_in, packet, hoisted, f"b.imp{i}")
        differences.append(not_(and_(
            *factory.equate(imported_a, imported_b))))
        shared_best = factory.fresh(f"eqv.best[{i}]")
        exported_a = _through_map(factory, dev_a, nbr_a.route_map_out,
                                  shared_best, packet, hoisted, f"a.exp{i}")
        exported_b = _through_map(factory, dev_b, nbr_b.route_map_out,
                                  shared_best, packet, hoisted, f"b.exp{i}")
        differences.append(not_(and_(
            *factory.equate(exported_a, exported_b))))

    solver = Solver(conflict_budget=conflict_budget,
                    preprocess=options.preprocess,
                    portfolio=options.portfolio)
    solver.add(or_(*differences) if differences else FALSE)
    outcome = solver.check()
    if outcome is UNSAT:
        return VerificationResult(property_name=name, holds=True,
                                  num_variables=solver.num_variables,
                                  num_clauses=solver.num_clauses)
    if outcome is UNKNOWN:
        return VerificationResult(property_name=name, holds=None,
                                  message="budget exhausted",
                                  num_variables=solver.num_variables,
                                  num_clauses=solver.num_clauses)
    model = solver.model()
    from repro.net import ip as iplib

    dst = model.eval(packet.dst_ip)
    return VerificationResult(
        property_name=name, holds=False,
        message=(f"{router_a} and {router_b} differ, e.g. for "
                 f"dstIp={iplib.format_ip(dst)}"),
        num_variables=solver.num_variables,
        num_clauses=solver.num_clauses)


def _structural_mismatch(dev_a: DeviceConfig, dev_b: DeviceConfig,
                         check_ifaces: bool = True) -> Optional[str]:
    if check_ifaces and len(dev_a.interfaces) != len(dev_b.interfaces):
        return "different interface counts"
    sessions_a = len(dev_a.bgp.neighbors) if dev_a.bgp else 0
    sessions_b = len(dev_b.bgp.neighbors) if dev_b.bgp else 0
    if sessions_a != sessions_b:
        return "different BGP session counts"
    if (dev_a.bgp is None) != (dev_b.bgp is None):
        return "BGP enabled on only one router"
    if (dev_a.ospf is None) != (dev_b.ospf is None):
        return "OSPF enabled on only one router"
    return None


def _field_set(network: Network, options: EncoderOptions) -> FieldSet:
    communities = set()
    for dev in network.devices.values():
        for rmap in dev.route_maps.values():
            for clause in rmap.clauses:
                communities.update(clause.add_communities)
                communities.update(clause.delete_communities)
        for clist in dev.community_lists.values():
            communities.update(clist.communities)
    return FieldSet(local_pref=True, med=True,
                    communities=tuple(sorted(communities)),
                    explicit_prefix=not options.hoist_prefixes)


def _sorted_ifaces(dev: DeviceConfig):
    return [dev.interfaces[name] for name in sorted(dev.interfaces)]


def _sorted_sessions(network: Network, dev: DeviceConfig):
    if dev.bgp is None:
        return []

    def key(nbr):
        external = network.device_owning(nbr.peer_ip) is None
        return (0 if external else 1, nbr.peer_ip)

    return sorted(dev.bgp.neighbors, key=key)


def _acl_decision(dev: DeviceConfig, acl_name: Optional[str],
                  packet: PacketVars) -> Term:
    if acl_name is None:
        return TRUE
    acl = dev.acls.get(acl_name)
    if acl is None:
        return FALSE
    return acl_term(acl, packet)


def _through_map(factory: RecordFactory, dev: DeviceConfig,
                 map_name: Optional[str], record, packet: PacketVars,
                 hoisted: bool, tag: str):
    if map_name is None:
        return record
    rmap = dev.route_maps.get(map_name)
    if rmap is None:
        return factory.invalid(f"{tag}.dangling")
    return apply_route_map(factory, dev, rmap, record, packet.dst_ip,
                           hoisted, name=tag)
