"""Batch verification engine: many queries, shared work.

Minesweeper's headline workloads are many-query audits (the paper's §8.1
four-check battery over 152 networks; pairwise reachability fanning out
over every (source, destination-prefix) pair).  Running each query through
the full encode → bit-blast → Tseitin → fresh-CDCL pipeline repeats the
dominant cost — network constraint generation — once per query even when
queries only differ in the property term.

This engine exploits two levers:

* **Shared-encoding incremental solving.**  Queries are grouped by
  (destination prefix, effective failure bound); the group's network is
  encoded once and loaded into one :class:`Solver`.  Each property's
  instrumentation is asserted *guarded by a fresh activation literal*
  (``act → c`` for every instrumentation constraint ``c``) and the check
  runs under ``assumptions=[act, ¬P]``.  Guarding matters: property
  instrumentation such as path-length counters is not always a
  conservative extension (a multipath state with unequal branch lengths
  contradicts the hop-counter equations), so left unguarded it would
  silently shrink the state space seen by later queries in the group.
  With guards, earlier instrumentation is inert — the solver simply sets
  its activation literal false — and every answer is identical to a
  fresh per-query solve.

* **Process-pool parallelism across groups.**  Groups are independent
  (they share no solver), so with ``workers > 1`` they run under a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results are reordered
  to query order regardless of completion order, and any pool failure
  (spawn errors, pickling issues) falls back to the serial path.

Lazy properties (``prop.lazy``, e.g. :class:`LoadBalanced`) enumerate
stable states with destructive blocking clauses and therefore cannot share
a solver; they are routed through ``Verifier.verify`` individually.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import log as obslog
from repro.net import ip as iplib
from repro.net.topology import Network
from repro.smt import Solver, UNKNOWN, UNSAT, implies, not_
from .counterexample import extract_counterexample
from .encoder import EncoderOptions, NetworkEncoder
from .properties import Property
from .verifier import (
    VerificationResult,
    Verifier,
    _budget_message,
    effective_max_failures,
)

__all__ = ["BatchQuery", "BatchEngine", "GroupEncoding", "verify_batch"]


@dataclass(frozen=True)
class BatchQuery:
    """One query of a batch: a property plus per-query knobs.

    ``max_failures`` follows ``Verifier.verify`` semantics: an explicit
    value (including 0) overrides the engine-level option default, and
    ``prop.failures_needed`` wins only when larger.  ``assumptions`` are
    callables ``enc -> Term`` (e.g. :func:`repro.core.properties.announces`)
    applied per-check, so they never leak into sibling queries.
    """

    prop: Property
    max_failures: Optional[int] = None
    assumptions: Tuple = ()
    label: Optional[str] = None

    def name(self) -> str:
        return self.label or type(self.prop).__name__


# Group key: (dst_prefix, effective max_failures).  Options are engine-wide
# and identical across groups except for the failure bound.
_GroupKey = Tuple[Optional[Tuple[int, int]], int]

# A cached GroupEncoding accretes activation-guarded instrumentation
# clauses with every query it discharges; they are inert for later
# queries but still occupy the clause DB and slow propagation.  A
# cached encoding that has discharged this many queries is treated as
# a miss and rebuilt fresh instead of reused.
_GROUP_RECYCLE_QUERIES = 256


class GroupEncoding:
    """The shared, reusable state of one query group: the encoded
    network plus an incremental solver loaded with its constraints.

    This is the expensive artifact batch verification amortizes — and
    the unit a long-lived service (``repro serve``) caches across
    requests.  Because property instrumentation is always asserted
    behind a fresh activation literal (see the module docstring),
    instrumentation from earlier queries is inert for later ones: a
    ``GroupEncoding`` can discharge any number of queries, in any
    order, across any number of requests, and every answer is
    identical to a fresh per-query solve.

    Thread safety: the CDCL solver is single-threaded state, so
    :meth:`solve_one` serializes on an internal lock — concurrent
    requests against one cached encoding queue up rather than corrupt
    the solver.
    """

    def __init__(self, network: Network, options: EncoderOptions,
                 conflict_budget: Optional[int] = None,
                 dst_prefix: Optional[Tuple[int, int]] = None,
                 tracer=None) -> None:
        tracer = tracer if tracer is not None else obs.active()
        self.network = network
        self.options = options
        self.dst_prefix = dst_prefix
        self.lock = threading.Lock()
        #: queries discharged over the lifetime of this encoding (grows
        #: across requests when the encoding is cached and reused)
        self.queries_discharged = 0
        with tracer.span("verify.encode", shared=True) as sp:
            encoder = NetworkEncoder(network, options)
            self.enc = encoder.encode(dst_prefix=dst_prefix)
            self.solver = Solver(conflict_budget=conflict_budget,
                                 preprocess=options.preprocess,
                                 portfolio=options.portfolio)
            self.solver.add(*self.enc.constraints, label="network")
            self.base_mark = self.enc.checkpoint()
        #: one-time cost of building this encoding (the cost a warm
        #: cache hit skips entirely)
        self.encode_seconds = sp.duration

    def cache_size(self) -> int:
        """Byte-size estimate for cache budgeting.

        Exact deep sizes of term graphs are unaffordable to compute;
        this estimate is linear in the CNF footprint (the dominant
        allocation) and only needs to be monotone for LRU budgeting to
        be meaningful.
        """
        return (4096 + 48 * self.solver.num_variables
                + 96 * self.solver.num_clauses)

    def solve_one(self, query: "BatchQuery", tracer=None,
                  shared_share: float = 0.0) -> VerificationResult:
        """Discharge one query against the shared solver.

        ``shared_share`` is the slice of the one-time encoding cost
        attributed to this query's stats (0.0 when the encoding was
        reused from a cache — the query then paid no encode cost).
        """
        tracer = tracer if tracer is not None else obs.active()
        enc, solver = self.enc, self.solver
        with self.lock:
            self.queries_discharged += 1
            qspan = tracer.span("batch.query", query=query.name())
            with qspan:
                with tracer.span("verify.property",
                                 property=query.name()) as sp_query:
                    prop_term = query.prop.encode(enc)
                    instrumentation = enc.constraints_since(self.base_mark)
                    enc.rollback(self.base_mark)
                    act = enc.fresh_bool("batch.act")
                    solver.add(*[implies(act, c) for c in instrumentation],
                               label="instrumentation")
                    assumptions = [act, not_(prop_term)]
                    for assumption in query.assumptions:
                        assumptions.append(assumption(enc))
                with tracer.span("verify.solve") as sp_solve:
                    outcome = solver.check(assumptions=assumptions)
                if outcome is not UNSAT and outcome is not UNKNOWN:
                    with tracer.span("verify.model"):
                        model = solver.model()
                        counterexample = extract_counterexample(enc, model)
                        message = query.prop.describe_violation(enc, model)
            stats = dict(
                seconds=shared_share + qspan.duration,
                num_variables=solver.num_variables,
                num_clauses=solver.num_clauses,
                encode_seconds=shared_share + sp_query.duration,
                encode_shared_seconds=shared_share,
                encode_query_seconds=sp_query.duration,
                solve_seconds=sp_solve.duration,
                conflicts=solver.last_check_conflicts)
            if outcome is UNSAT:
                return VerificationResult(property_name=query.name(),
                                          holds=True, **stats)
            if outcome is UNKNOWN:
                return VerificationResult(
                    property_name=query.name(), holds=None,
                    message=_budget_message(solver), **stats)
            return VerificationResult(
                property_name=query.name(), holds=False,
                counterexample=counterexample, message=message,
                **stats)


class BatchEngine:
    """Plans and executes a batch of verification queries."""

    def __init__(self, network: Network,
                 options: Optional[EncoderOptions] = None,
                 conflict_budget: Optional[int] = None,
                 workers: int = 1,
                 verdict_cache=None,
                 encoding_cache=None,
                 encoding_scope: str = "") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.network = network
        self.options = options or EncoderOptions()
        self.conflict_budget = conflict_budget
        self.workers = workers
        # Any mapping-like object with .get(key) / .put(key, record)
        # (e.g. repro.diff.VerdictCache).  Records replay as results
        # with ``cached=True``; see repro.analysis.deps for the
        # soundness argument behind the keys.
        self.verdict_cache = verdict_cache
        # Cross-run reuse of whole group encodings: an object with
        # ``get(key)`` / ``put(key, value, size_bytes)`` (e.g.
        # ``repro.serve.TTLLRUCache``) holding :class:`GroupEncoding`
        # instances.  ``encoding_scope`` namespaces the keys (the
        # service uses ``{tenant}/{snapshot}/``) so unrelated networks
        # never collide.  Solvers cannot cross process boundaries, so
        # the cache is consulted only on the serial path; with
        # ``workers > 1`` it is ignored.
        self.encoding_cache = encoding_cache
        self.encoding_scope = encoding_scope
        #: per-run encoding-cache outcome, ``{"hits": n, "misses": m}``
        #: (reset by :meth:`run`) — lets a serving layer report whether
        #: a request skipped parse/build/encode without scraping the
        #: process-wide metrics
        self.last_encoding_stats = {"hits": 0, "misses": 0}

    # ------------------------------------------------------------------

    def run(self, queries: Sequence) -> List[VerificationResult]:
        """Execute all queries; results are returned in query order."""
        tracer = obs.active()
        self.last_encoding_stats = {"hits": 0, "misses": 0}
        with tracer.span("batch.run", queries=len(queries),
                         workers=self.workers) as root:
            batch = [q if isinstance(q, BatchQuery) else BatchQuery(prop=q)
                     for q in queries]
            results: List[Optional[VerificationResult]] = \
                [None] * len(batch)
            groups: Dict[_GroupKey, List[Tuple[int, BatchQuery]]] = {}
            lazy: List[Tuple[int, BatchQuery]] = []
            cache_keys: Dict[int, str] = {}
            metrics = obs.metrics()
            with tracer.span("batch.plan"):
                for index, query in enumerate(batch):
                    if getattr(query.prop, "lazy", False):
                        lazy.append((index, query))
                        continue
                    if self.verdict_cache is not None:
                        ckey = self._cache_key(query)
                        if ckey is not None:
                            hit = self.verdict_cache.get(ckey)
                            if hit is not None:
                                results[index] = VerificationResult(
                                    property_name=query.name(),
                                    holds=hit["holds"],
                                    message=hit.get("message", ""),
                                    cached=True)
                                metrics.counter("diff.cache_hit").inc()
                                continue
                            cache_keys[index] = ckey
                        metrics.counter("diff.reverified").inc()
                    key = (query.prop.dst_prefix(),
                           effective_max_failures(query.prop,
                                                  query.max_failures,
                                                  self.options))
                    groups.setdefault(key, []).append((index, query))
            root.set(groups=len(groups), lazy=len(lazy))
            metrics.counter("batch.queries").inc(len(batch))
            metrics.counter("batch.groups").inc(len(groups))

            if (self.workers > 1 and len(groups) > 1
                    and self.encoding_cache is None):
                done = self._run_parallel(groups, results)
            else:
                done = False
            if not done:
                for key, members in groups.items():
                    pairs, _ = self._run_group(key, members)
                    for index, result in pairs:
                        results[index] = result

            if lazy:
                verifier = Verifier(self.network, options=self.options,
                                    conflict_budget=self.conflict_budget)
                for index, query in lazy:
                    result = verifier.verify(
                        query.prop, max_failures=query.max_failures,
                        assumptions=query.assumptions)
                    if query.label:
                        result.property_name = query.label
                    results[index] = result

            if self.verdict_cache is not None:
                for index, ckey in cache_keys.items():
                    result = results[index]
                    # UNKNOWN is budget-dependent, never cached.
                    if result is not None and result.holds is not None:
                        self.verdict_cache.put(ckey, {
                            "holds": result.holds,
                            "message": result.message,
                        })
        return results  # type: ignore[return-value]

    def _cache_key(self, query: BatchQuery) -> Optional[str]:
        """The verdict-cache key for one query, or None (not cacheable).

        Key computation is conservative: any analysis failure downgrades
        to a fresh solve rather than risking a stale verdict.
        """
        from repro.analysis.deps import cache_key

        try:
            return cache_key(self.network, query.prop,
                             max_failures=query.max_failures,
                             assumptions=query.assumptions,
                             options=self.options)
        except Exception as exc:
            obslog.warn_event(
                "engine.dep_analysis_failed",
                f"dependency analysis failed for "
                f"{query.name()} ({exc!r}); re-verifying",
                query=query.name(), error=repr(exc))
            return None

    # ------------------------------------------------------------------

    def _group_options(self, key: _GroupKey) -> EncoderOptions:
        _, k = key
        options = self.options
        if k != options.max_failures:
            options = replace(options, max_failures=k)
        return options

    def encoding_cache_key(self, key: _GroupKey) -> str:
        """The scoped cache key of one group's encoding:
        ``{scope}enc/{dst-prefix}/k{failures}/{options-digest}``."""
        from repro.analysis.deps import options_digest

        dst, k = key
        prefix = iplib.format_prefix(*dst) if dst else "any"
        digest = options_digest(self._group_options(key))
        return f"{self.encoding_scope}enc/{prefix}/k{k}/{digest}"

    def _cached_group(self, key: _GroupKey, ckey: str
                      ) -> Tuple[GroupEncoding, bool]:
        """Fetch (or build and insert) the group's encoding via the
        encoding cache.  Returns ``(group, reused)``: a reused group
        already paid its encode cost in some earlier run, so stats for
        this run's queries attribute zero shared encoding time."""
        group = self.encoding_cache.get(ckey)
        metrics = obs.metrics()
        if group is not None:
            if group.queries_discharged < _GROUP_RECYCLE_QUERIES:
                self.last_encoding_stats["hits"] += 1
                metrics.counter("engine.encoding_cache_hit").inc()
                return group, True
            # Too much inert per-query instrumentation has piled up in
            # the shared solver; rebuild rather than keep degrading.
            metrics.counter("engine.encoding_recycled").inc()
        self.last_encoding_stats["misses"] += 1
        metrics.counter("engine.encoding_cache_miss").inc()
        group = GroupEncoding(self.network, self._group_options(key),
                              self.conflict_budget, key[0])
        self.encoding_cache.put(ckey, group, group.cache_size())
        return group, False

    def _run_group(self, key: _GroupKey,
                   members: List[Tuple[int, BatchQuery]],
                   ) -> Tuple[List[Tuple[int, VerificationResult]],
                              Optional[Dict]]:
        group, reused, ckey = None, False, None
        if self.encoding_cache is not None:
            ckey = self.encoding_cache_key(key)
            group, reused = self._cached_group(key, ckey)
        out = _solve_group(self.network, self._group_options(key),
                           self.conflict_budget, key[0], members,
                           group=group, group_reused=reused)
        if group is not None:
            # This run's queries grew the solver's clause DB; re-insert
            # with a fresh size estimate so the cache's byte accounting
            # tracks the entry's real footprint over its lifetime (an
            # entry grown past the whole budget gets dropped here and
            # rebuilt fresh by the next request).
            self.encoding_cache.put(ckey, group, group.cache_size())
        return out

    def _run_parallel(self, groups, results) -> bool:
        """Run groups in a process pool.  Returns False (leaving
        ``results`` to be recomputed serially) if the pool cannot be
        spawned or any group fails to ship/execute.

        With tracing enabled, each worker buffers its own spans/metrics
        (the parent's tracer is invisible across the process boundary)
        and ships them back with its results; they are merged here, at
        join, each group on its own lane.
        """
        items = list(groups.items())
        workers = min(self.workers, len(items))
        tracer = obs.active()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_solve_group, self.network,
                                self._group_options(key),
                                self.conflict_budget, key[0], members,
                                collect_trace=tracer.enabled,
                                run_id=obslog.run_id())
                    for key, members in items]
                for future in as_completed(futures):
                    pairs, trace_payload = future.result()
                    for index, result in pairs:
                        results[index] = result
                    if trace_payload is not None:
                        tracer.merge(trace_payload)
        except Exception as exc:
            # A silent fallback hides real environment problems (broken
            # spawn method, unpicklable networks) behind a mysterious
            # serial slowdown — make it loud and countable.
            obs.metrics().counter("engine.pool_fallback").inc()
            obslog.warn_event(
                "engine.pool_fallback",
                f"batch process pool failed ({exc!r}); "
                f"re-running {len(items)} groups serially",
                groups=len(items), workers=workers, error=repr(exc))
            return False
        return True


def _group_lane(dst_prefix: Optional[Tuple[int, int]], k: int) -> str:
    prefix = (iplib.format_prefix(*dst_prefix) if dst_prefix
              else "any-prefix")
    return f"group {prefix} k={k}"


def _solve_group(network: Network, options: EncoderOptions,
                 conflict_budget: Optional[int],
                 dst_prefix: Optional[Tuple[int, int]],
                 members: List[Tuple[int, BatchQuery]],
                 collect_trace: bool = False,
                 run_id: Optional[str] = None,
                 group: Optional[GroupEncoding] = None,
                 group_reused: bool = False,
                 ) -> Tuple[List[Tuple[int, VerificationResult]],
                            Optional[Dict]]:
    """Encode the network once and discharge every query of the group.

    Module-level so it can be pickled to process-pool workers (the
    pool path never ships ``group`` — a live solver cannot cross a
    process boundary).  Returns the per-query results plus — with
    ``collect_trace`` (the process-pool path under an enabled tracer) —
    the worker-side span buffer for the parent to merge at join time.
    ``run_id`` carries the parent's log correlation id across the
    process boundary so worker log records join the same run.
    """
    if run_id is not None:
        obslog.set_run_id(run_id)
    lane = _group_lane(dst_prefix, options.max_failures)
    if collect_trace:
        tracer = obs.Tracer(lane=lane)
        with obs.use(tracer):
            pairs = _solve_group_traced(tracer, network, options,
                                        conflict_budget, dst_prefix,
                                        members)
        return pairs, tracer.export()
    tracer = obs.active()
    if not tracer.enabled:
        # Stats-only throwaway tracer: per-result timing fields always
        # come from spans, traced or not.
        tracer = obs.Tracer(lane=lane)
    return (_solve_group_traced(tracer, network, options, conflict_budget,
                                dst_prefix, members, group=group,
                                group_reused=group_reused), None)


def _solve_group_traced(tracer, network: Network, options: EncoderOptions,
                        conflict_budget: Optional[int],
                        dst_prefix: Optional[Tuple[int, int]],
                        members: List[Tuple[int, BatchQuery]],
                        group: Optional[GroupEncoding] = None,
                        group_reused: bool = False,
                        ) -> List[Tuple[int, VerificationResult]]:
    group_span = tracer.span("batch.group", queries=len(members),
                             max_failures=options.max_failures,
                             reused=group_reused,
                             dst_prefix=_group_lane(dst_prefix,
                                                    options.max_failures))
    out: List[Tuple[int, VerificationResult]] = []
    with group_span:
        if group is None:
            group = GroupEncoding(network, options, conflict_budget,
                                  dst_prefix, tracer=tracer)
        # The one-time shared encoding is amortized evenly; each result
        # carries its share in ``encode_shared_seconds`` so batch totals
        # sum to real wall time without double-counting.  A reused
        # (cache-hit) encoding paid nothing this run: its queries carry
        # a zero share, which is exactly the parse/build/encode work
        # the warm path skipped.
        shared_share = (0.0 if group_reused
                        else group.encode_seconds / len(members))
        for index, query in members:
            out.append((index, group.solve_one(query, tracer=tracer,
                                               shared_share=shared_share)))
    return out


def verify_batch(network: Network, queries: Sequence,
                 options: Optional[EncoderOptions] = None,
                 conflict_budget: Optional[int] = None,
                 workers: int = 1,
                 verdict_cache=None) -> List[VerificationResult]:
    """Functional convenience wrapper over :class:`BatchEngine`."""
    engine = BatchEngine(network, options=options,
                         conflict_budget=conflict_budget, workers=workers,
                         verdict_cache=verdict_cache)
    return engine.run(queries)
