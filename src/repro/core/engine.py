"""Batch verification engine: many queries, shared work.

Minesweeper's headline workloads are many-query audits (the paper's §8.1
four-check battery over 152 networks; pairwise reachability fanning out
over every (source, destination-prefix) pair).  Running each query through
the full encode → bit-blast → Tseitin → fresh-CDCL pipeline repeats the
dominant cost — network constraint generation — once per query even when
queries only differ in the property term.

This engine exploits two levers:

* **Shared-encoding incremental solving.**  Queries are grouped by
  (destination prefix, effective failure bound); the group's network is
  encoded once and loaded into one :class:`Solver`.  Each property's
  instrumentation is asserted *guarded by a fresh activation literal*
  (``act → c`` for every instrumentation constraint ``c``) and the check
  runs under ``assumptions=[act, ¬P]``.  Guarding matters: property
  instrumentation such as path-length counters is not always a
  conservative extension (a multipath state with unequal branch lengths
  contradicts the hop-counter equations), so left unguarded it would
  silently shrink the state space seen by later queries in the group.
  With guards, earlier instrumentation is inert — the solver simply sets
  its activation literal false — and every answer is identical to a
  fresh per-query solve.

* **Process-pool parallelism across groups.**  Groups are independent
  (they share no solver), so with ``workers > 1`` they run under a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results are reordered
  to query order regardless of completion order, and any pool failure
  (spawn errors, pickling issues) falls back to the serial path.

Lazy properties (``prop.lazy``, e.g. :class:`LoadBalanced`) enumerate
stable states with destructive blocking clauses and therefore cannot share
a solver; they are routed through ``Verifier.verify`` individually.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.topology import Network
from repro.smt import Solver, UNKNOWN, UNSAT, implies, not_
from .counterexample import extract_counterexample
from .encoder import EncoderOptions, NetworkEncoder
from .properties import Property
from .verifier import (
    VerificationResult,
    Verifier,
    effective_max_failures,
)

__all__ = ["BatchQuery", "BatchEngine", "verify_batch"]


@dataclass(frozen=True)
class BatchQuery:
    """One query of a batch: a property plus per-query knobs.

    ``max_failures`` follows ``Verifier.verify`` semantics: an explicit
    value (including 0) overrides the engine-level option default, and
    ``prop.failures_needed`` wins only when larger.  ``assumptions`` are
    callables ``enc -> Term`` (e.g. :func:`repro.core.properties.announces`)
    applied per-check, so they never leak into sibling queries.
    """

    prop: Property
    max_failures: Optional[int] = None
    assumptions: Tuple = ()
    label: Optional[str] = None

    def name(self) -> str:
        return self.label or type(self.prop).__name__


# Group key: (dst_prefix, effective max_failures).  Options are engine-wide
# and identical across groups except for the failure bound.
_GroupKey = Tuple[Optional[Tuple[int, int]], int]


class BatchEngine:
    """Plans and executes a batch of verification queries."""

    def __init__(self, network: Network,
                 options: Optional[EncoderOptions] = None,
                 conflict_budget: Optional[int] = None,
                 workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.network = network
        self.options = options or EncoderOptions()
        self.conflict_budget = conflict_budget
        self.workers = workers

    # ------------------------------------------------------------------

    def run(self, queries: Sequence) -> List[VerificationResult]:
        """Execute all queries; results are returned in query order."""
        batch = [q if isinstance(q, BatchQuery) else BatchQuery(prop=q)
                 for q in queries]
        groups: Dict[_GroupKey, List[Tuple[int, BatchQuery]]] = {}
        lazy: List[Tuple[int, BatchQuery]] = []
        for index, query in enumerate(batch):
            if getattr(query.prop, "lazy", False):
                lazy.append((index, query))
                continue
            key = (query.prop.dst_prefix(),
                   effective_max_failures(query.prop, query.max_failures,
                                          self.options))
            groups.setdefault(key, []).append((index, query))

        results: List[Optional[VerificationResult]] = [None] * len(batch)
        if self.workers > 1 and len(groups) > 1:
            done = self._run_parallel(groups, results)
        else:
            done = False
        if not done:
            for key, members in groups.items():
                for index, result in self._run_group(key, members):
                    results[index] = result

        if lazy:
            verifier = Verifier(self.network, options=self.options,
                                conflict_budget=self.conflict_budget)
            for index, query in lazy:
                result = verifier.verify(query.prop,
                                         max_failures=query.max_failures,
                                         assumptions=query.assumptions)
                if query.label:
                    result.property_name = query.label
                results[index] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _group_options(self, key: _GroupKey) -> EncoderOptions:
        _, k = key
        options = self.options
        if k != options.max_failures:
            options = replace(options, max_failures=k)
        return options

    def _run_group(self, key: _GroupKey,
                   members: List[Tuple[int, BatchQuery]],
                   ) -> List[Tuple[int, VerificationResult]]:
        return _solve_group(self.network, self._group_options(key),
                            self.conflict_budget, key[0], members)

    def _run_parallel(self, groups, results) -> bool:
        """Run groups in a process pool.  Returns False (leaving
        ``results`` to be recomputed serially) if the pool cannot be
        spawned or any group fails to ship/execute."""
        items = list(groups.items())
        workers = min(self.workers, len(items))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_solve_group, self.network,
                                self._group_options(key),
                                self.conflict_budget, key[0], members)
                    for key, members in items]
                for future in as_completed(futures):
                    for index, result in future.result():
                        results[index] = result
        except Exception:
            return False
        return True


def _solve_group(network: Network, options: EncoderOptions,
                 conflict_budget: Optional[int],
                 dst_prefix: Optional[Tuple[int, int]],
                 members: List[Tuple[int, BatchQuery]],
                 ) -> List[Tuple[int, VerificationResult]]:
    """Encode the network once and discharge every query of the group.

    Module-level so it can be pickled to process-pool workers.
    """
    shared_start = time.perf_counter()
    encoder = NetworkEncoder(network, options)
    enc = encoder.encode(dst_prefix=dst_prefix)
    solver = Solver(conflict_budget=conflict_budget)
    solver.add(*enc.constraints)
    base_mark = enc.checkpoint()
    shared_share = (time.perf_counter() - shared_start) / len(members)

    out: List[Tuple[int, VerificationResult]] = []
    for index, query in members:
        query_start = time.perf_counter()
        prop_term = query.prop.encode(enc)
        instrumentation = enc.constraints_since(base_mark)
        enc.rollback(base_mark)
        act = enc.fresh_bool("batch.act")
        solver.add(*[implies(act, c) for c in instrumentation])
        assumptions = [act, not_(prop_term)]
        for assumption in query.assumptions:
            assumptions.append(assumption(enc))
        encode_seconds = shared_share + time.perf_counter() - query_start
        outcome = solver.check(assumptions=assumptions)
        stats = dict(
            seconds=shared_share + time.perf_counter() - query_start,
            num_variables=solver.num_variables,
            num_clauses=solver.num_clauses,
            encode_seconds=encode_seconds,
            solve_seconds=solver.last_check_seconds,
            conflicts=solver.last_check_conflicts)
        if outcome is UNSAT:
            result = VerificationResult(property_name=query.name(),
                                        holds=True, **stats)
        elif outcome is UNKNOWN:
            result = VerificationResult(property_name=query.name(),
                                        holds=None,
                                        message="conflict budget exhausted",
                                        **stats)
        else:
            model = solver.model()
            result = VerificationResult(
                property_name=query.name(), holds=False,
                counterexample=extract_counterexample(enc, model),
                message=query.prop.describe_violation(enc, model),
                **stats)
        out.append((index, result))
    return out


def verify_batch(network: Network, queries: Sequence,
                 options: Optional[EncoderOptions] = None,
                 conflict_budget: Optional[int] = None,
                 workers: int = 1) -> List[VerificationResult]:
    """Functional convenience wrapper over :class:`BatchEngine`."""
    engine = BatchEngine(network, options=options,
                         conflict_budget=conflict_budget, workers=workers)
    return engine.run(queries)
