"""The public verification API.

``Verifier.verify(property)`` translates the network plus the negated
property into CNF and asks the CDCL core for a satisfying assignment:
SAT means some stable state violates the property (a counterexample is
extracted from the model), UNSAT means the property holds in every stable
state.

Also implements the §5 checks that need more than one encoding: local and
full equivalence, fault tolerance and fault-invariance testing, and the
lazy refinement loop for load balancing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.net import ip as iplib
from repro.net.topology import Network
from repro.smt import (
    FALSE,
    SAT,
    Solver,
    Term,
    UNKNOWN,
    UNSAT,
    and_,
    iff,
    not_,
    or_,
)
from .counterexample import Counterexample, extract_counterexample
from .encoder import EncodedNetwork, EncoderOptions, NetworkEncoder
from .properties import Property, reach_instrumentation

__all__ = ["Verifier", "VerificationResult", "effective_max_failures"]


def effective_max_failures(prop: Property,
                           max_failures: Optional[int],
                           options: EncoderOptions) -> int:
    """Resolve the failure bound for one query.

    An explicit per-query ``max_failures`` overrides the verifier-level
    ``options.max_failures`` default (so an explicit 0 is expressible);
    ``prop.failures_needed`` wins only when larger than the explicit
    value, since the property cannot be encoded below it.
    """
    if max_failures is not None:
        if max_failures < 0:
            raise ValueError("max_failures must be >= 0")
        return max(max_failures, prop.failures_needed)
    return max(options.max_failures, prop.failures_needed)


def _query_tracer():
    """The globally installed tracer, or a throwaway local one.

    Every query is timed through span objects either way, so result
    statistics are always a view over the same telemetry that feeds
    trace files; the throwaway tracer just never gets exported.
    """
    tracer = obs.active()
    return tracer if tracer.enabled else obs.Tracer(lane="verify")


def _span_stats(root, sp_shared, sp_query, sp_solve,
                solver: Solver) -> Dict:
    """Result statistics derived from the query's closed spans."""
    return dict(
        seconds=root.duration,
        num_variables=solver.num_variables,
        num_clauses=solver.num_clauses,
        encode_seconds=sp_shared.duration + sp_query.duration,
        encode_shared_seconds=sp_shared.duration,
        encode_query_seconds=sp_query.duration,
        solve_seconds=sp_solve.duration,
        conflicts=solver.last_check_conflicts)


def _budget_message(solver: Solver) -> str:
    """UNKNOWN diagnostics, fed by the solver's periodic progress hook."""
    msg = (f"conflict budget exhausted after "
           f"{solver.last_check_conflicts} conflicts")
    samples = solver.last_check_progress
    if samples:
        last = samples[-1]
        msg += (f" (at last sample: {last['decisions']} decisions, "
                f"{last['propagations']} propagations, "
                f"{last['restarts']} restarts, "
                f"{last['learned']} learned clauses)")
    return msg


@dataclass
class VerificationResult:
    """Outcome of one verification query.

    Timing fields are views over the span telemetry recorded while the
    query ran (see :mod:`repro.obs`): ``seconds`` is total wall time and
    ``encode_seconds``/``solve_seconds`` split it into constraint
    generation (network encoding, property instrumentation and CNF
    translation) and SAT search.

    Encoding cost is further split so batch accounting is explicit:
    ``encode_shared_seconds`` is the network-encoding cost attributed to
    this query — the full cost for a standalone :meth:`Verifier.verify`,
    or this query's even share of its group's one-time shared encoding
    in batch mode — and ``encode_query_seconds`` is the cost specific to
    this query (property instrumentation plus its CNF translation).
    ``encode_seconds`` is always their sum, so summing it across a batch
    reflects the real total encoding time without double-counting.
    """

    property_name: str
    holds: Optional[bool]            # None = unknown (budget exhausted)
    counterexample: Optional[Counterexample] = None
    message: str = ""
    seconds: float = 0.0
    num_variables: int = 0
    num_clauses: int = 0
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    conflicts: int = 0
    encode_shared_seconds: float = 0.0
    encode_query_seconds: float = 0.0
    #: True when the verdict was replayed from a verdict cache (the
    #: query's dependency slice was untouched) instead of solved fresh.
    cached: bool = False

    def __bool__(self) -> bool:
        return bool(self.holds)

    def __repr__(self) -> str:
        status = {True: "HOLDS", False: "VIOLATED", None: "UNKNOWN"}
        text = status[self.holds]
        if self.message:
            text += f": {self.message}"
        if self.cached:
            text += " [cached]"
        return f"<{self.property_name} {text} ({self.seconds * 1e3:.1f} ms)>"


class Verifier:
    """Verify §5 properties of a network's configurations.

    With ``preflight=True`` (the default) the syntactic lint rules run
    over the network at construction time: errors (dangling references,
    session mismatches, ...) are surfaced as a
    :class:`~repro.analysis.ConfigAnalysisWarning` — or, with
    ``strict=True``, raise :class:`~repro.analysis.AnalysisError` before
    any formula is built, since such defects silently skew verification
    results.  The report is kept on ``preflight_report``.
    """

    def __init__(self, network: Network,
                 options: Optional[EncoderOptions] = None,
                 conflict_budget: Optional[int] = None,
                 preflight: bool = True,
                 strict: bool = False) -> None:
        self.network = network
        self.options = options or EncoderOptions()
        self.conflict_budget = conflict_budget
        self.preflight_report = None
        #: Encoding-cache hits/misses of the most recent
        #: :meth:`verify_batch` call (mirrors the engine's counters).
        self.last_encoding_stats = {"hits": 0, "misses": 0}
        if preflight or strict:
            self.preflight_report = self._preflight(strict)

    def _preflight(self, strict: bool):
        import warnings as _warnings

        from repro.analysis import (
            AnalysisError,
            ConfigAnalysisWarning,
            Severity,
        )
        from repro.analysis.engine import analyze_network

        # Syntactic rules only: the SMT-backed shadow checks are opt-in
        # via the analyze CLI — construction must stay cheap.
        with obs.span("analysis.preflight", strict=strict) as sp:
            report = analyze_network(self.network, smt=False)
            sp.set(diagnostics=len(report.diagnostics))
        errors = report.count(Severity.ERROR)
        if errors and strict:
            raise AnalysisError(report)
        if errors or report.count(Severity.WARNING):
            worst = report.max_severity
            _warnings.warn(
                f"configuration analysis found "
                f"{len(report.diagnostics)} issue(s), worst: {worst} "
                f"(see Verifier.preflight_report)",
                ConfigAnalysisWarning, stacklevel=3)
        return report

    # ------------------------------------------------------------------

    def verify(self, prop: Property,
               max_failures: Optional[int] = None,
               assumptions: Sequence = ()) -> VerificationResult:
        """Check a property over all stable states (and, with
        ``max_failures=k``, all environments with at most k link failures
        — the §5 fault-tolerance form).

        ``assumptions`` are callables ``enc -> Term`` restricting the
        environments considered (e.g. :func:`announces` to require that
        some external peer advertises the destination).

        An explicit ``max_failures`` wins over the verifier's configured
        ``options.max_failures`` (so ``max_failures=0`` expresses a
        zero-failure query on a verifier configured with a failure
        bound); ``prop.failures_needed`` still raises the bound when the
        property structurally requires more failures than requested.
        """
        tracer = _query_tracer()
        name = type(prop).__name__
        options = self.options
        k = effective_max_failures(prop, max_failures, options)
        if k != options.max_failures:
            options = replace(options, max_failures=k)
        root = tracer.span("verify", property=name, max_failures=k)
        with root:
            with tracer.span("verify.encode") as sp_shared:
                encoder = NetworkEncoder(self.network, options)
                enc = encoder.encode(dst_prefix=prop.dst_prefix())
                solver = Solver(conflict_budget=self.conflict_budget,
                                preprocess=self.options.preprocess,
                                portfolio=self.options.portfolio)
                solver.add(*enc.constraints, label="network")
                base_mark = enc.checkpoint()
            with tracer.span("verify.property", property=name) as sp_query:
                prop_term = prop.encode(enc)
                # Property encoding may append instrumentation constraints
                # (e.g. reach bits) to the encoding; assert just those.
                solver.add(*enc.constraints_since(base_mark),
                           label="instrumentation")
                for assumption in assumptions:
                    solver.add(assumption(enc), label="assumptions")
                if getattr(prop, "lazy", False):
                    return self._lazy_verify(prop, enc, solver,
                                             tracer, root)
                solver.add(not_(prop_term), label="property")
            with tracer.span("verify.solve") as sp_solve:
                outcome = solver.check()
            if outcome is SAT:
                with tracer.span("verify.model"):
                    model = solver.model()
                    counterexample = extract_counterexample(enc, model)
                    message = prop.describe_violation(enc, model)
        stats = _span_stats(root, sp_shared, sp_query, sp_solve, solver)
        if outcome is UNSAT:
            return VerificationResult(
                property_name=name, holds=True, **stats)
        if outcome is UNKNOWN:
            return VerificationResult(
                property_name=name, holds=None,
                message=_budget_message(solver), **stats)
        return VerificationResult(
            property_name=name, holds=False,
            counterexample=counterexample, message=message, **stats)

    # ------------------------------------------------------------------
    # Batch verification (shared-encoding incremental + parallel groups)
    # ------------------------------------------------------------------

    def verify_batch(self, queries: Sequence,
                     workers: int = 1,
                     verdict_cache=None,
                     encoding_cache=None,
                     encoding_scope: str = "") -> List[VerificationResult]:
        """Verify many queries, exploiting cross-query sharing.

        ``queries`` is a sequence of :class:`Property` instances or
        :class:`repro.core.engine.BatchQuery` objects (which add a
        per-query failure bound, assumptions and a label).  Queries are
        grouped by (destination prefix, effective failure bound); each
        group encodes the network once and discharges every property in
        it via assumption-based incremental checks.  With ``workers > 1``
        groups run in a process pool; results always come back in query
        order, identical to per-query :meth:`verify` answers.

        ``verdict_cache`` (e.g. :class:`repro.diff.VerdictCache`)
        enables slice-aware planning: queries whose dependency-slice
        hash matches a cached entry replay the stored verdict
        (``result.cached`` is True) instead of being solved.

        ``encoding_cache`` (e.g. :class:`repro.serve.TTLLRUCache`)
        makes whole group encodings — encoded network plus loaded
        incremental solver — outlive this call: a later batch over the
        same groups skips encode entirely.  ``encoding_scope`` prefixes
        the cache keys (see :meth:`BatchEngine.encoding_cache_key`).
        """
        from .engine import BatchEngine

        engine = BatchEngine(self.network, options=self.options,
                             conflict_budget=self.conflict_budget,
                             workers=workers,
                             verdict_cache=verdict_cache,
                             encoding_cache=encoding_cache,
                             encoding_scope=encoding_scope)
        results = engine.run(queries)
        self.last_encoding_stats = dict(engine.last_encoding_stats)
        return results

    # ------------------------------------------------------------------
    # Lazy load-balancing loop (linear arithmetic outside the SAT core)
    # ------------------------------------------------------------------

    def _lazy_verify(self, prop, enc: EncodedNetwork, solver: Solver,
                     tracer, root,
                     max_iterations: int = 200) -> VerificationResult:
        def elapsed() -> float:
            return time.perf_counter() - root.start

        for iteration in range(max_iterations):
            with tracer.span("verify.solve", lazy_iteration=iteration):
                outcome = solver.check()
            if outcome is UNSAT:
                return VerificationResult(
                    property_name=type(prop).__name__, holds=True,
                    seconds=elapsed(),
                    num_variables=solver.num_variables,
                    num_clauses=solver.num_clauses)
            if outcome is UNKNOWN:
                break
            model = solver.model()
            violation = prop.check_model(enc, model)
            if violation is not None:
                return VerificationResult(
                    property_name=type(prop).__name__, holds=False,
                    counterexample=extract_counterexample(enc, model),
                    message=violation,
                    seconds=elapsed(),
                    num_variables=solver.num_variables,
                    num_clauses=solver.num_clauses)
            # Block this forwarding configuration and search for another
            # stable state.
            block = []
            for key in enc.fwd:
                term = enc.data_fwd(*key)
                value = model.eval(term)
                block.append(not_(term) if value else term)
            if not block:
                break
            solver.add(or_(*block), label="refinement")
        return VerificationResult(
            property_name=type(prop).__name__, holds=None,
            message="lazy refinement budget exhausted",
            seconds=elapsed(),
            num_variables=solver.num_variables,
            num_clauses=solver.num_clauses)

    # ------------------------------------------------------------------
    # Fault-invariance (§5): P holds with no failures iff it holds with k
    # ------------------------------------------------------------------

    def verify_fault_invariance(self, prop: Property,
                                k: int = 1) -> VerificationResult:
        """Check that ``prop`` holds in the failure-free network exactly
        when it holds under any ``k`` failures (two encoding copies with a
        shared environment)."""
        tracer = _query_tracer()
        name = f"FaultInvariance[{type(prop).__name__}, k={k}]"
        root = tracer.span("verify.fault_invariance", property=name, k=k)
        with root:
            with tracer.span("verify.encode") as sp_shared:
                base_encoder = NetworkEncoder(
                    self.network, replace(self.options, max_failures=0))
                fail_encoder = NetworkEncoder(
                    self.network, replace(self.options, max_failures=k))
                enc0 = base_encoder.encode(dst_prefix=prop.dst_prefix(),
                                           ns="c0.")
                enc1 = fail_encoder.encode(dst_prefix=prop.dst_prefix(),
                                           ns="c1.")
                solver = Solver(conflict_budget=self.conflict_budget,
                                preprocess=self.options.preprocess,
                                portfolio=self.options.portfolio)
                solver.add(*enc0.constraints, label="network")
                solver.add(*enc1.constraints, label="network")
                mark0 = enc0.checkpoint()
                mark1 = enc1.checkpoint()
            with tracer.span("verify.property", property=name) as sp_query:
                term0 = prop.encode(enc0)
                term1 = prop.encode(enc1)
                solver.add(*enc0.constraints_since(mark0),
                           label="instrumentation")
                solver.add(*enc1.constraints_since(mark1),
                           label="instrumentation")
                # Same packet and same external announcements in both
                # copies.
                solver.add(*_equate_packets(enc0, enc1), label="property")
                solver.add(*_equate_environments(enc0, enc1),
                           label="property")
                solver.add(not_(iff(term0, term1)), label="property")
            with tracer.span("verify.solve") as sp_solve:
                outcome = solver.check()
            if outcome is SAT:
                with tracer.span("verify.model"):
                    model = solver.model()
                    failed = [key for key, term in enc1.failed.items()
                              if model.eval(term)]
                    failed += [key for key, term in enc1.failed_ext.items()
                               if model.eval(term)]
                    counterexample = extract_counterexample(enc1, model)
        stats = _span_stats(root, sp_shared, sp_query, sp_solve, solver)
        if outcome is UNSAT:
            return VerificationResult(property_name=name, holds=True,
                                      **stats)
        if outcome is UNKNOWN:
            return VerificationResult(property_name=name, holds=None,
                                      message=_budget_message(solver),
                                      **stats)
        return VerificationResult(
            property_name=name, holds=False,
            counterexample=counterexample,
            message=f"behaviour differs when links {failed} fail",
            **stats)

    # ------------------------------------------------------------------
    # Pairwise fault-invariant reachability (the §8.1 check)
    # ------------------------------------------------------------------

    def verify_pairwise_fault_invariance(self, k: int = 1,
                                         dest_prefix: Optional[str] = None,
                                         ) -> VerificationResult:
        """All router pairs are reachable exactly when they are reachable
        after any single failure (the paper's fourth real-network check).

        One query: reach bits are instrumented in both copies and required
        to agree for every source.
        """
        tracer = _query_tracer()
        name = f"PairwiseFaultInvariance[k={k}]"
        root = tracer.span("verify.pairwise_fault_invariance",
                           property=name, k=k)
        with root:
            with tracer.span("verify.encode") as sp_shared:
                prefix = (iplib.parse_prefix(dest_prefix)
                          if dest_prefix else None)
                enc0 = NetworkEncoder(
                    self.network,
                    replace(self.options, max_failures=0)).encode(
                        prefix, ns="c0.")
                # Failures range over internal links: an external session
                # flap changes the environment, not the network, and both
                # copies share one environment (matching the paper's
                # zero-violation finding).
                enc1 = NetworkEncoder(
                    self.network,
                    replace(self.options, max_failures=k,
                            fail_external=False)).encode(prefix, ns="c1.")
            with tracer.span("verify.property", property=name) as sp_query:
                # Instrument both copies before loading the solver so the
                # instrumentation constraints are included.
                base0 = {r: enc0.local_deliver.get(r, FALSE)
                         for r in enc0.routers()}
                base1 = {r: enc1.local_deliver.get(r, FALSE)
                         for r in enc1.routers()}
                reach0 = reach_instrumentation(enc0, base0, tag="fi0")
                reach1 = reach_instrumentation(enc1, base1, tag="fi1")
                mismatch = or_(*[not_(iff(reach0[r], reach1[r]))
                                 for r in enc0.routers()])
                solver = Solver(conflict_budget=self.conflict_budget,
                                preprocess=self.options.preprocess,
                                portfolio=self.options.portfolio)
                solver.add(*enc0.constraints, label="network")
                solver.add(*enc1.constraints, label="network")
                solver.add(*_equate_packets(enc0, enc1), label="property")
                solver.add(*_equate_environments(enc0, enc1),
                           label="property")
                solver.add(mismatch, label="property")
            with tracer.span("verify.solve") as sp_solve:
                outcome = solver.check()
            if outcome is SAT:
                with tracer.span("verify.model"):
                    model = solver.model()
                    diff = [r for r in enc0.routers()
                            if model.eval(reach0[r]) != model.eval(
                                reach1[r])]
                    counterexample = extract_counterexample(enc1, model)
        stats = _span_stats(root, sp_shared, sp_query, sp_solve, solver)
        if outcome is UNSAT:
            return VerificationResult(property_name=name, holds=True,
                                      **stats)
        if outcome is UNKNOWN:
            return VerificationResult(property_name=name, holds=None,
                                      message=_budget_message(solver),
                                      **stats)
        return VerificationResult(
            property_name=name, holds=False,
            counterexample=counterexample,
            message=f"reachability of {diff} changes under failure",
            **stats)

    # ------------------------------------------------------------------
    # Local equivalence (§5): isolated routers on symbolic inputs
    # ------------------------------------------------------------------

    def verify_local_equivalence(self, router_a: str, router_b: str,
                                 iface_pairing: str = "sorted",
                                 ) -> VerificationResult:
        """Do two routers make identical decisions given identical
        environments?  Encodes each router in isolation with shared
        symbolic session inputs and a shared symbolic packet, then compares
        forwarding decisions and exports pairwise (paper §5).

        ``iface_pairing="by-name"`` restricts the ACL comparison to
        same-named interfaces (role checks over asymmetric topologies).
        """
        from .equivalence import check_local_equivalence

        tracer = _query_tracer()
        root = tracer.span("verify.local_equivalence",
                           routers=f"{router_a},{router_b}")
        with root:
            result = check_local_equivalence(
                self.network, router_a, router_b,
                options=self.options, conflict_budget=self.conflict_budget,
                iface_pairing=iface_pairing)
        result.seconds = root.duration
        return result

    # ------------------------------------------------------------------
    # Full equivalence of two networks (§5)
    # ------------------------------------------------------------------

    def verify_full_equivalence(self, other: Network,
                                ) -> VerificationResult:
        """Are two whole networks behaviourally equivalent?  External
        peers are paired by name; all data-plane forwarding decisions and
        exports to externals must agree."""
        tracer = _query_tracer()
        name = "FullEquivalence"
        root = tracer.span("verify.full_equivalence")
        with root:
            with tracer.span("verify.encode") as sp_shared:
                enc_a = NetworkEncoder(self.network,
                                       self.options).encode(ns="A.")
                enc_b = NetworkEncoder(other, self.options).encode(ns="B.")
                solver = Solver(conflict_budget=self.conflict_budget,
                                preprocess=self.options.preprocess,
                                portfolio=self.options.portfolio)
                solver.add(*enc_a.constraints, label="network")
                solver.add(*enc_b.constraints, label="network")
            with tracer.span("verify.property", property=name) as sp_query:
                solver.add(*_equate_packets(enc_a, enc_b),
                           label="property")
                solver.add(*_equate_environments(enc_a, enc_b),
                           label="property")
                differences: List[Term] = []
                for key in set(enc_a.fwd) | set(enc_b.fwd):
                    differences.append(not_(iff(enc_a.data_fwd(*key),
                                                enc_b.data_fwd(*key))))
                for key in (set(enc_a.export_to_ext)
                            & set(enc_b.export_to_ext)):
                    rec_a = enc_a.export_to_ext[key]
                    rec_b = enc_b.export_to_ext[key]
                    differences.append(not_(and_(
                        *enc_a.factory.equate(rec_a, rec_b))))
                solver.add(or_(*differences) if differences else FALSE,
                           label="property")
            with tracer.span("verify.solve") as sp_solve:
                outcome = solver.check()
            if outcome is SAT:
                with tracer.span("verify.model"):
                    model = solver.model()
                    counterexample = extract_counterexample(enc_a, model)
        stats = _span_stats(root, sp_shared, sp_query, sp_solve, solver)
        if outcome is UNSAT:
            return VerificationResult(property_name=name, holds=True,
                                      **stats)
        if outcome is UNKNOWN:
            return VerificationResult(property_name=name, holds=None,
                                      message=_budget_message(solver),
                                      **stats)
        return VerificationResult(
            property_name=name, holds=False,
            counterexample=counterexample,
            message="networks diverge on some packet/environment",
            **stats)


def _equate_packets(a: EncodedNetwork, b: EncodedNetwork) -> List[Term]:
    from repro.smt import eq

    out = [eq(a.packet.dst_ip, b.packet.dst_ip)]
    for fa, fb in ((a.packet.src_ip, b.packet.src_ip),
                   (a.packet.protocol, b.packet.protocol),
                   (a.packet.dst_port, b.packet.dst_port),
                   (a.packet.src_port, b.packet.src_port)):
        if fa.kind != "bvval" or fb.kind != "bvval":
            if fa.sort == fb.sort:
                out.append(eq(fa, fb))
    return out


def _equate_environments(a: EncodedNetwork,
                         b: EncodedNetwork) -> List[Term]:
    out: List[Term] = []
    for peer, rec_a in a.env.items():
        rec_b = b.env.get(peer)
        if rec_b is not None:
            out.extend(a.factory.equate(rec_a, rec_b))
    return out
