"""The §5 property suite.

Each property contributes (a) an optional destination-prefix restriction,
(b) instrumentation constraints added to the encoding (reachability bits,
path-length counters, waypoint automata, ...), and (c) a boolean *property
term* P.  The verifier asserts the network constraints, the instrumentation
and ¬P; a satisfying assignment is a stable state violating the property.

Reachability-style instrumentation uses the paper's bi-implication form
(``canReach_r ⇔ deliver_r ∨ ⋁ (datafwd ∧ canReach_n)``); its fixpoints
are exact except in the presence of data-plane forwarding loops, which the
dedicated :class:`NoForwardingLoops` property detects exactly (a cycle of
reach bits requires a cycle of datafwd edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.net import ip as iplib
from repro.smt import (
    FALSE,
    TRUE,
    Term,
    and_,
    bv_val,
    eq,
    iff,
    implies,
    ite,
    not_,
    or_,
    ule,
    ult,
)
from .encoder import EncodedNetwork

__all__ = [
    "announces",
    "silent",
    "no_failures",
    "Property",
    "Reachability",
    "Isolation",
    "Waypointing",
    "BoundedPathLength",
    "EqualPathLengths",
    "DisjointPaths",
    "NoForwardingLoops",
    "NoBlackHoles",
    "MultipathConsistency",
    "NeighborPreference",
    "PathPreference",
    "NoPrefixLeak",
    "LoadBalanced",
    "reach_instrumentation",
    "path_length_instrumentation",
]

PATHLEN_WIDTH = 8


class Property:
    """Base class; subclasses implement :meth:`encode`."""

    #: minimum number of failures the encoding must model
    failures_needed: int = 0

    def dst_prefix(self) -> Optional[Tuple[int, int]]:
        """Optional (network, length) restriction on the packet."""
        return None

    def encode(self, enc: EncodedNetwork) -> Term:
        """Add instrumentation to ``enc`` and return the property term P."""
        raise NotImplementedError

    def describe_violation(self, enc: EncodedNetwork, model) -> str:
        """One-line interpretation of a counterexample model."""
        return f"{type(self).__name__} violated"


# ---------------------------------------------------------------------------
# Instrumentation helpers
# ---------------------------------------------------------------------------

def _internal_targets(enc: EncodedNetwork, router: str) -> List[str]:
    return [t for t in enc.targets_of(router) if t in enc.network.devices]


def reach_instrumentation(enc: EncodedNetwork,
                          base: Dict[str, Term],
                          tag: str) -> Dict[str, Term]:
    """Per-router ``canReach`` bits over the data-plane forwarding relation
    (§3 step 8).  ``base`` gives each router's direct-delivery condition."""
    reach = {r: enc.fresh_bool(f"reach.{tag}[{r}]") for r in enc.routers()}
    for router in enc.routers():
        hops = [and_(enc.data_fwd(router, t), reach[t])
                for t in _internal_targets(enc, router)]
        enc.add(iff(reach[router],
                    or_(base.get(router, FALSE), *hops)))
    return reach


def path_length_instrumentation(enc: EncodedNetwork,
                                reach: Dict[str, Term],
                                tag: str) -> Dict[str, Term]:
    """Per-router hop counters: delivery is length 0; forwarding to a
    reaching neighbor adds one (§5 bounded/equal path length)."""
    length = {r: enc.fresh_bv(f"plen.{tag}[{r}]", PATHLEN_WIDTH)
              for r in enc.routers()}
    one = bv_val(1, PATHLEN_WIDTH)
    for router in enc.routers():
        enc.add(implies(enc.local_deliver.get(router, FALSE),
                        eq(length[router], bv_val(0, PATHLEN_WIDTH))))
        for target in enc.targets_of(router):
            if target in enc.network.devices:
                enc.add(implies(
                    and_(enc.data_fwd(router, target), reach[target]),
                    eq(length[router],
                       _bv_inc(length[target]))))
            else:
                # Exit edges count as a single hop.
                enc.add(implies(enc.data_fwd(router, target),
                                eq(length[router], one)))
    return length


def _bv_inc(term: Term) -> Term:
    from repro.smt import bv_add
    return bv_add(term, bv_val(1, PATHLEN_WIDTH))


def _delivery_base(enc: EncodedNetwork,
                   dest_peer: Optional[str]) -> Dict[str, Term]:
    """Direct-delivery condition per router: local delivery for prefix
    destinations, or the exit edge toward a named external peer."""
    base: Dict[str, Term] = {}
    for router in enc.routers():
        if dest_peer is None:
            base[router] = enc.local_deliver.get(router, FALSE)
        else:
            base[router] = enc.data_fwd(router, dest_peer)
    return base


def _parse_dst(prefix: Optional[str]) -> Optional[Tuple[int, int]]:
    if prefix is None:
        return None
    return iplib.parse_prefix(prefix)


# ---------------------------------------------------------------------------
# Reachability / isolation
# ---------------------------------------------------------------------------

@dataclass
class Reachability(Property):
    """Sources can reach the destination in every stable state.

    The destination is a prefix (delivered to a matching subnet/interface)
    or a named external peer (traffic exits through that peer).  Leaving
    ``sources`` as ``"all"`` checks every router in a single query — the
    graph-based advantage the paper highlights in §5/§8.
    """

    sources: Union[str, Sequence[str]] = "all"
    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None
    failures_needed: int = 0

    def __post_init__(self):
        if self.dest_prefix_text is None and self.dest_peer is None:
            raise ValueError("Reachability needs a destination")

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def source_list(self, enc: EncodedNetwork) -> List[str]:
        if self.sources == "all":
            return enc.routers()
        return list(self.sources)

    def encode(self, enc: EncodedNetwork) -> Term:
        base = _delivery_base(enc, self.dest_peer)
        reach = reach_instrumentation(enc, base, tag="main")
        self._reach = reach
        return and_(*[reach[s] for s in self.source_list(enc)])

    def describe_violation(self, enc, model) -> str:
        missing = [s for s in self.source_list(enc)
                   if not model.eval(self._reach[s])]
        dst = model.eval(enc.dst_ip)
        return (f"unreachable from {', '.join(missing)} "
                f"for dstIp={iplib.format_ip(dst)}")


@dataclass
class Isolation(Property):
    """Sources can never reach the destination (in any stable state)."""

    sources: Sequence[str] = ()
    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None
    failures_needed: int = 0

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        base = _delivery_base(enc, self.dest_peer)
        reach = reach_instrumentation(enc, base, tag="iso")
        self._reach = reach
        return and_(*[not_(reach[s]) for s in self.sources])

    def describe_violation(self, enc, model) -> str:
        leaky = [s for s in self.sources if model.eval(self._reach[s])]
        dst = model.eval(enc.dst_ip)
        return (f"isolation breached from {', '.join(leaky)} "
                f"for dstIp={iplib.format_ip(dst)}")


# ---------------------------------------------------------------------------
# Waypointing
# ---------------------------------------------------------------------------

@dataclass
class Waypointing(Property):
    """All delivered traffic from ``source`` traverses the waypoint chain
    ``waypoints`` in order (§5: k bits per router)."""

    source: str = ""
    waypoints: Sequence[str] = ()
    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        base = _delivery_base(enc, self.dest_peer)
        chain = list(self.waypoints)
        k = len(chain)
        # bad[j][r]: some forwarding branch from r delivers while fewer
        # than the remaining waypoints chain[j:] have been visited in
        # order.  The property is the absence of such a branch from the
        # source (over ALL multipath branches, unlike a some-path check).
        bad: List[Dict[str, Term]] = [
            {r: enc.fresh_bool(f"wpbad{j}[{r}]") for r in enc.routers()}
            for j in range(k)
        ]
        for router in enc.routers():
            for j in range(k):
                branches = []
                for target in _internal_targets(enc, router):
                    nxt = j + 1 if target == chain[j] else j
                    escapes = FALSE if nxt >= k else bad[nxt][target]
                    branches.append(and_(enc.data_fwd(router, target),
                                         escapes))
                premature = base.get(router, FALSE)
                enc.add(iff(bad[j][router], or_(premature, *branches)))
        start = 1 if chain and self.source == chain[0] else 0
        self._ok = TRUE if start >= k else not_(bad[start][self.source])
        return self._ok

    def describe_violation(self, enc, model) -> str:
        return (f"traffic from {self.source} reaches the destination "
                f"bypassing waypoints {list(self.waypoints)}")


# ---------------------------------------------------------------------------
# Path lengths
# ---------------------------------------------------------------------------

@dataclass
class BoundedPathLength(Property):
    """Delivered traffic from the sources takes at most ``bound`` hops."""

    sources: Union[str, Sequence[str]] = "all"
    bound: int = 4
    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        base = _delivery_base(enc, self.dest_peer)
        reach = reach_instrumentation(enc, base, tag="bpl")
        length = path_length_instrumentation(enc, reach, tag="bpl")
        sources = enc.routers() if self.sources == "all" \
            else list(self.sources)
        limit = bv_val(self.bound, PATHLEN_WIDTH)
        self._reach, self._length = reach, length
        return and_(*[implies(reach[s], ule(length[s], limit))
                      for s in sources])

    def describe_violation(self, enc, model) -> str:
        sources = enc.routers() if self.sources == "all" \
            else list(self.sources)
        bad = [(s, model.eval(self._length[s])) for s in sources
               if model.eval(self._reach[s])
               and model.eval(self._length[s]) > self.bound]
        return f"path length bound {self.bound} exceeded: {bad}"


@dataclass
class EqualPathLengths(Property):
    """All given routers use equal-length paths to the destination."""

    routers: Sequence[str] = ()
    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        base = _delivery_base(enc, self.dest_peer)
        reach = reach_instrumentation(enc, base, tag="eql")
        length = path_length_instrumentation(enc, reach, tag="eql")
        group = list(self.routers)
        parts = []
        for a, b in zip(group, group[1:]):
            parts.append(implies(and_(reach[a], reach[b]),
                                 eq(length[a], length[b])))
        self._reach, self._length = reach, length
        return and_(*parts)

    def describe_violation(self, enc, model) -> str:
        lens = {r: model.eval(self._length[r]) for r in self.routers
                if model.eval(self._reach[r])}
        return f"unequal path lengths: {lens}"


# ---------------------------------------------------------------------------
# Disjoint paths
# ---------------------------------------------------------------------------

@dataclass
class DisjointPaths(Property):
    """Two routers use link-disjoint forwarding paths (§5)."""

    router_a: str = ""
    router_b: str = ""
    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        used = {}
        for tag, start in (("a", self.router_a), ("b", self.router_b)):
            on_path = {r: enc.fresh_bool(f"onpath.{tag}[{r}]")
                       for r in enc.routers()}
            for router in enc.routers():
                feeds = [and_(on_path[s], enc.data_fwd(s, router))
                         for s in enc.routers()
                         if router in enc.targets_of(s)]
                base = TRUE if router == start else FALSE
                enc.add(iff(on_path[router], or_(base, *feeds)))
            used[tag] = on_path
        # A path uses an undirected link if it forwards along either
        # direction of it; disjointness forbids both paths using one link.
        parts = []
        seen = set()
        for (router, target) in list(enc.fwd):
            if target not in enc.network.devices:
                continue
            key = tuple(sorted((router, target)))
            if key in seen:
                continue
            seen.add(key)
            def uses(tag: str) -> Term:
                return or_(
                    and_(used[tag][router], enc.data_fwd(router, target)),
                    and_(used[tag][target], enc.data_fwd(target, router)))
            parts.append(not_(and_(uses("a"), uses("b"))))
        return and_(*parts)


# ---------------------------------------------------------------------------
# Loops and black holes
# ---------------------------------------------------------------------------

@dataclass
class NoForwardingLoops(Property):
    """No data-plane forwarding loop exists (exact; §5).

    ``candidates`` limits the per-router instrumentation to routers where
    loops are possible.  The default applies the paper's §5 optimization:
    loops require static routes or route redistribution somewhere in the
    network, and only routers carrying one of those features (or policies
    overriding path preferences) need a pivot bit — when no router
    qualifies, every router is instrumented as a safe fallback.
    """

    candidates: Optional[Sequence[str]] = None
    dest_prefix_text: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    @staticmethod
    def default_candidates(enc: EncodedNetwork) -> List[str]:
        risky = []
        for name in enc.routers():
            dev = enc.network.device(name)
            redistributes = (dev.bgp and dev.bgp.redistribute) or \
                (dev.ospf and dev.ospf.redistribute)
            sets_pref = any(
                clause.set_local_pref is not None
                for rmap in dev.route_maps.values()
                for clause in rmap.clauses)
            if dev.static_routes or redistributes or sets_pref:
                risky.append(name)
        return risky or enc.routers()

    def encode(self, enc: EncodedNetwork) -> Term:
        routers = list(self.candidates) if self.candidates is not None \
            else self.default_candidates(enc)
        parts = []
        self._loop_bits = {}
        for pivot in routers:
            through = {r: enc.fresh_bool(f"thru.{pivot}[{r}]")
                       for r in enc.routers()}
            for router in enc.routers():
                hops = []
                for target in _internal_targets(enc, router):
                    arrives = TRUE if target == pivot else through[target]
                    hops.append(and_(enc.data_fwd(router, target), arrives))
                enc.add(iff(through[router], or_(*hops)))
            self._loop_bits[pivot] = through[pivot]
            parts.append(not_(through[pivot]))
        return and_(*parts)

    def describe_violation(self, enc, model) -> str:
        looped = [p for p, bit in self._loop_bits.items()
                  if model.eval(bit)]
        dst = model.eval(enc.dst_ip)
        return (f"forwarding loop through {', '.join(looped)} for "
                f"dstIp={iplib.format_ip(dst)}")


@dataclass
class NoBlackHoles(Property):
    """Traffic never arrives at a router that drops it (§5).

    ``allowed`` lists routers where dropping is acceptable (e.g. the edge
    routers applying ingress policy in the §8.1 check).
    """

    allowed: Sequence[str] = ()
    dest_prefix_text: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        allowed = set(self.allowed)
        parts = []
        self._holes = {}
        for router in enc.routers():
            if router in allowed:
                continue
            incoming = [enc.data_fwd(s, router) for s in enc.routers()
                        if router in enc.targets_of(s)]
            if not incoming:
                continue
            outgoing = [enc.data_fwd(router, t)
                        for t in enc.targets_of(router)]
            hole = and_(or_(*incoming),
                        not_(or_(enc.local_deliver.get(router, FALSE),
                                 *outgoing)))
            self._holes[router] = hole
            parts.append(not_(hole))
        return and_(*parts)

    def describe_violation(self, enc, model) -> str:
        holes = [r for r, h in self._holes.items() if model.eval(h)]
        dst = model.eval(enc.dst_ip)
        return (f"black hole at {', '.join(holes)} for "
                f"dstIp={iplib.format_ip(dst)}")


# ---------------------------------------------------------------------------
# Multipath consistency
# ---------------------------------------------------------------------------

@dataclass
class MultipathConsistency(Property):
    """Traffic is treated identically along all multipath branches (§5)."""

    dest_prefix_text: Optional[str] = None
    dest_peer: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        base = _delivery_base(enc, self.dest_peer)
        reach = reach_instrumentation(enc, base, tag="mpc")
        parts = []
        for router in enc.routers():
            for target in enc.targets_of(router):
                follow = enc.data_fwd(router, target)
                if target in enc.network.devices:
                    follow = and_(follow, reach[target])
                elif self.dest_peer is not None and target != self.dest_peer:
                    follow = FALSE
                parts.append(implies(
                    and_(reach[router], enc.control_fwd(router, target)),
                    follow))
        self._reach = reach
        return and_(*parts)

    def describe_violation(self, enc, model) -> str:
        return "multipath branches disagree (one delivers, one drops)"


# ---------------------------------------------------------------------------
# Preferences
# ---------------------------------------------------------------------------

@dataclass
class NeighborPreference(Property):
    """``router`` prefers its external neighbors in the given order (§5)."""

    router: str = ""
    peers_in_order: Sequence[str] = ()
    dest_prefix_text: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        parts = []
        records = []
        for peer in self.peers_in_order:
            rec = enc.bgp_inputs.get((self.router, peer))
            if rec is None:
                raise ValueError(f"no BGP session {self.router} <- {peer}")
            records.append(rec)
        for i, peer in enumerate(self.peers_in_order):
            more_preferred_absent = and_(
                *[not_(records[j].valid) for j in range(i)])
            # Longest-prefix match precedes policy preference: the check
            # applies only when no other candidate out-prefixes this one.
            not_outprefixed = and_(*[
                implies(records[j].valid,
                        ule(records[j].prefix_len, records[i].prefix_len))
                for j in range(len(records)) if j != i])
            parts.append(implies(
                and_(records[i].valid, more_preferred_absent,
                     not_outprefixed),
                enc.control_fwd(self.router, peer)))
        return and_(*parts)


@dataclass
class PathPreference(Property):
    """Traffic uses ``preferred`` unless an advertisement was rejected
    along it (§5: path-level preferences).

    Scope the check with ``dest_prefix_text`` (e.g. the external space the
    preference applies to); otherwise packets addressed to link
    infrastructure follow connected routes, which trivially "violates"
    any policy-path preference.
    """

    preferred: Sequence[str] = ()      # routers, traffic order
    fallback: Sequence[str] = ()
    dest_prefix_text: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        fallback_used = and_(*[
            enc.control_fwd(a, b)
            for a, b in zip(self.fallback, self.fallback[1:])])
        fallback_recs = [
            enc.bgp_inputs[(a, b)]
            for a, b in zip(self.fallback, self.fallback[1:])
            if (a, b) in enc.bgp_inputs]
        excused = []
        for a, b in zip(self.preferred, self.preferred[1:]):
            rec = enc.bgp_inputs.get((a, b))
            if rec is None:
                excused.append(TRUE)
                continue
            # The advertisement was rejected along the preferred path, or
            # longest-prefix match overrode policy (a fallback record
            # carries a strictly longer prefix).
            out_prefixed = [and_(fb.valid,
                                 ult(rec.prefix_len, fb.prefix_len))
                            for fb in fallback_recs]
            excused.append(or_(not_(rec.valid), *out_prefixed))
        return implies(fallback_used, or_(*excused))


# ---------------------------------------------------------------------------
# Prefix leaks / aggregation
# ---------------------------------------------------------------------------

@dataclass
class NoPrefixLeak(Property):
    """No advertisement longer than ``max_length`` escapes to external
    peers (§5 aggregation: e.g. a /32 must never leak).

    With an unconstrained environment, routes *learned* from one external
    peer may be re-exported to another at their announced length; to check
    only internally-originated advertisements, verify under
    :func:`silent` assumptions for the external peers.
    """

    max_length: int = 24
    routers: Optional[Sequence[str]] = None
    dest_prefix_text: Optional[str] = None

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        parts = []
        self._leaks = {}
        for (router, peer), record in enc.export_to_ext.items():
            if self.routers is not None and router not in self.routers:
                continue
            leak = and_(record.valid,
                        not_(ule(record.prefix_len,
                                 enc.factory.len_const(self.max_length))))
            self._leaks[(router, peer)] = leak
            parts.append(not_(leak))
        return and_(*parts)

    def describe_violation(self, enc, model) -> str:
        leaked = [f"{r}->{p}" for (r, p), term in self._leaks.items()
                  if model.eval(term)]
        return f"prefix longer than /{self.max_length} leaked: {leaked}"


# ---------------------------------------------------------------------------
# Load balancing (checked by the verifier's lazy refinement loop)
# ---------------------------------------------------------------------------

@dataclass
class LoadBalanced(Property):
    """Traffic load difference between two routers stays within a
    threshold (§5).  Uses exact rational flow computation per stable state
    via the verifier's lazy refinement loop rather than a direct SMT
    encoding (the arithmetic is linear real, not boolean).
    """

    source_loads: Dict[str, float] = field(default_factory=dict)
    monitor: Sequence[Tuple[str, str]] = ()
    threshold: float = 0.0
    dest_prefix_text: Optional[str] = None

    lazy = True  # handled specially by the Verifier

    def dst_prefix(self):
        return _parse_dst(self.dest_prefix_text)

    def encode(self, enc: EncodedNetwork) -> Term:
        # No boolean property term: the verifier enumerates stable states
        # and checks flows concretely.
        return TRUE

    def check_model(self, enc: EncodedNetwork, model) -> Optional[str]:
        """Exact flow check for one stable state; returns a violation
        message or None."""
        from fractions import Fraction

        from repro.smt import LinExpr, solve_linear_system

        equations = []
        incoming: Dict[str, List[LinExpr]] = {r: [] for r in enc.routers()}
        for router in enc.routers():
            targets = [t for t in enc.targets_of(router)
                       if model.eval(enc.data_fwd(router, t))]
            share = LinExpr.var(f"share[{router}]")
            outs = []
            for target in targets:
                out = LinExpr.var(f"out[{router},{target}]")
                equations.append((out, share))
                outs.append(out)
                if target in incoming:
                    incoming[target].append(out)
            total = LinExpr.var(f"total[{router}]")
            if outs:
                equations.append((sum(outs[1:], outs[0]), total))
            else:
                equations.append((share, LinExpr.constant(0)))
        for router in enc.routers():
            inject = Fraction(str(self.source_loads.get(router, 0)))
            total = LinExpr.var(f"total[{router}]")
            acc = LinExpr.constant(inject)
            for term in incoming[router]:
                acc = acc + term
            equations.append((total, acc))
        env = solve_linear_system(equations)
        if env is None:
            return "flow equations inconsistent (forwarding loop?)"
        threshold = Fraction(str(self.threshold))
        for a, b in self.monitor:
            ta = env.get(f"total[{a}]", Fraction(0))
            tb = env.get(f"total[{b}]", Fraction(0))
            if abs(ta - tb) > threshold:
                return (f"load imbalance {a}={ta} vs {b}={tb} "
                        f"exceeds {self.threshold}")
        return None


# ---------------------------------------------------------------------------
# Environment assumptions (used with Verifier.verify(..., assumptions=...))
# ---------------------------------------------------------------------------

# Assumptions are callable dataclasses rather than closures so that batch
# queries carrying them can be pickled to worker processes.

@dataclass(frozen=True)
class _Announces:
    peer: str
    min_length: int = 0
    max_length: int = 32
    max_path: Optional[int] = None

    def __call__(self, enc: EncodedNetwork) -> Term:
        record = enc.env[self.peer]
        width = record.prefix_len.width
        parts = [record.valid,
                 ule(bv_val(self.min_length, width), record.prefix_len),
                 ule(record.prefix_len, bv_val(self.max_length, width))]
        if self.max_path is not None:
            parts.append(ule(record.metric,
                             enc.factory.metric_const(self.max_path)))
        return and_(*parts)


@dataclass(frozen=True)
class _Silent:
    peer: str

    def __call__(self, enc: EncodedNetwork) -> Term:
        return not_(enc.env[self.peer].valid)


@dataclass(frozen=True)
class _NoFailures:
    def __call__(self, enc: EncodedNetwork) -> Term:
        bits = list(enc.failed.values()) + list(enc.failed_ext.values())
        return and_(*[not_(b) for b in bits])


def announces(peer: str, min_length: int = 0, max_length: int = 32,
              max_path: Optional[int] = None):
    """Assumption: the named external peer advertises a route covering the
    packet's destination, with the given prefix-length window."""
    return _Announces(peer, min_length, max_length, max_path)


def silent(peer: str):
    """Assumption: the named external peer advertises nothing."""
    return _Silent(peer)


def no_failures():
    """Assumption: every modeled link is up."""
    return _NoFailures()
