"""Bridging symbolic encodings and concrete simulator environments.

Two directions:

* :func:`pin_environment` — constrain an encoding's symbolic environment
  to one concrete :class:`~repro.sim.environment.Environment` (used by the
  encoder-vs-simulator agreement tests: with a pinned environment the
  encoding's stable states must match the simulator's fixpoint).
* :func:`counterexample_environment` — turn a verifier counterexample back
  into a concrete environment, so violations can be replayed through the
  simulator and the data plane.
"""

from __future__ import annotations

from typing import List

from repro.net import ip as iplib
from repro.sim.environment import Environment, ExternalAnnouncement
from repro.smt import Term, bv_val, eq, not_
from .counterexample import Counterexample
from .encoder import EncodedNetwork

__all__ = ["pin_environment", "counterexample_environment"]


def pin_environment(enc: EncodedNetwork, environment: Environment,
                    dst_ip: int) -> List[Term]:
    """Constraints fixing the symbolic environment to a concrete one, for
    a concrete packet destination.

    Each external peer's record is pinned to its longest announcement
    covering ``dst_ip`` (the one longest-prefix-match forwarding would
    use), or forced silent when none covers it.
    """
    constraints: List[Term] = [eq(enc.dst_ip, bv_val(dst_ip, 32))]
    factory = enc.factory
    for peer_name, record in enc.env.items():
        covering = [
            ann for ann in environment.announcements_from(peer_name)
            if iplib.prefix_contains(ann.network, ann.length, dst_ip)
        ]
        if not covering:
            constraints.append(not_(record.valid))
            continue
        ann = max(covering, key=lambda a: a.length)
        constraints.append(record.valid)
        constraints.append(eq(record.prefix_len,
                              factory.len_const(ann.length)))
        constraints.append(eq(record.metric,
                              factory.metric_const(len(ann.as_path))))
        if record.med.kind != "bvval":
            # Sliced fields are constants the encoding never compares;
            # pinning them would contradict for no semantic reason.
            constraints.append(eq(record.med,
                                  bv_val(ann.med, factory.widths.med)))
        for name, term in record.communities.items():
            want = name in ann.communities
            constraints.append(term if want else not_(term))
        if record.prefix is not None:
            constraints.append(eq(record.prefix,
                                  bv_val(ann.network,
                                         factory.widths.prefix)))
    for key, term in enc.failed.items():
        down = environment.link_failed(*key)
        constraints.append(term if down else not_(term))
    for (router, peer), term in enc.failed_ext.items():
        constraints.append(not_(term))
    return constraints


def counterexample_environment(cex: Counterexample) -> Environment:
    """A concrete environment reproducing a counterexample's announcements
    and failures (prefixes are reconstructed from the packet destination
    and each announcement's prefix length)."""
    # External-link failures are not a simulator concept: suppress the
    # announcements of peers whose session link failed instead.
    failed_peers = {pair[1] for pair in cex.failed_links
                    if any(a.peer == pair[1] for a in cex.announcements)}
    announcements = []
    for ann in cex.announcements:
        if ann.peer in failed_peers:
            continue
        network = iplib.network_of(cex.dst_ip, ann.prefix_length)
        announcements.append(ExternalAnnouncement(
            peer=ann.peer,
            network=network,
            length=ann.prefix_length,
            med=ann.med,
            as_path=tuple(64512 + i
                          for i in range(max(ann.path_length, 1))),
            communities=frozenset(ann.communities),
        ))
    failed = [tuple(pair) for pair in cex.failed_links]
    return Environment.of(announcements, failed)
