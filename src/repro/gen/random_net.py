"""Random well-formed networks for fuzzing and agreement testing.

Generates connected topologies with a random mix of OSPF, eBGP/iBGP,
static routes and simple import policies, restricted to configurations
with deterministic, convergent control planes (no preference cycles), so
the simulator fixpoint and the symbolic encoding's stable state can be
compared directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.net import ip as iplib
from repro.net.builder import NetworkBuilder
from repro.net.policy import PrefixListEntry, RouteMapClause
from repro.net.topology import Network
from repro.sim.environment import Environment, ExternalAnnouncement

__all__ = ["RandomScenario", "random_scenario"]


@dataclass
class RandomScenario:
    """A random network plus a matching random concrete environment and
    interesting destination addresses to probe."""

    seed: int
    network: Network
    environment: Environment
    probe_destinations: List[int]


def random_scenario(seed: int, max_routers: int = 6) -> RandomScenario:
    rng = random.Random(seed)
    n = rng.randint(2, max_routers)
    builder = NetworkBuilder()
    names = [f"r{i}" for i in range(n)]
    use_bgp = rng.random() < 0.7
    asn = 65001

    for name in names:
        dev = builder.device(name)
        dev.enable_ospf(multipath=rng.random() < 0.3)
        dev.ospf_network("10.0.0.0/8")
        if use_bgp:
            dev.enable_bgp(asn, multipath=False)

    # Random connected topology: a spanning tree plus extra edges.
    for i in range(1, n):
        builder.link(names[i], names[rng.randrange(i)],
                     ospf_cost=rng.randint(1, 5))
    extra = rng.randint(0, n // 2)
    for _ in range(extra):
        a, b = rng.sample(names, 2)
        if builder.device(a) is not builder.device(b):
            builder.link(a, b, ospf_cost=rng.randint(1, 5))

    # Host subnets.
    probes: List[int] = []
    for i, name in enumerate(names):
        if rng.random() < 0.8:
            subnet = iplib.parse_ip(f"10.{seed % 200}.{i}.0")
            builder.device(name).interface(
                f"host{i}", f"{iplib.format_ip(subnet + 1)}/24")
            probes.append(subnet + 7)

    # Statics: occasional discard or next-hop routes.
    for name in names:
        if rng.random() < 0.25:
            target = iplib.parse_ip(f"172.{16 + rng.randrange(4)}.0.0")
            builder.device(name).static_route(
                f"{iplib.format_ip(target)}/16", drop=True)
            probes.append(target + 3)

    announcements = []
    if use_bgp:
        # iBGP full mesh over adjacent pairs; externals on some routers.
        linked = {tuple(sorted((e.source, e.target)))
                  for e in builder.build().edges}
        # Note: build() above is only for adjacency inspection; rebuild
        # below picks up the BGP sessions added afterwards.
        for a, b in sorted(linked):
            builder.ibgp_session(a, b)
        n_ext = rng.randint(1, 2)
        ext_names = []
        for i in range(n_ext):
            router = rng.choice(names)
            dev = builder.device(router)
            map_name = None
            if rng.random() < 0.5:
                map_name = f"IMP{i}"
                dev.prefix_list(f"PL{i}", [
                    PrefixListEntry("deny",
                                    iplib.parse_ip("192.168.0.0"), 16,
                                    ge=16, le=32),
                    PrefixListEntry("permit", 0, 0, le=32),
                ])
                clauses = [RouteMapClause(
                    seq=10, action="permit",
                    match_prefix_list=f"PL{i}",
                    set_local_pref=(150 if rng.random() < 0.5 else None))]
                dev.route_map(map_name, clauses)
            peer = builder.external_peer(router, asn=64700 + i,
                                         name=f"ext{i}",
                                         route_map_in=map_name)
            ext_names.append(peer)
            dev.redistribute("ospf", "bgp", metric=20)
        for i, peer in enumerate(ext_names):
            if rng.random() < 0.8:
                prefix_net = iplib.parse_ip(f"8.{i}.0.0")
                length = rng.choice([8, 16, 24])
                announcements.append(ExternalAnnouncement(
                    peer=peer,
                    network=iplib.network_of(prefix_net, length),
                    length=length,
                    med=rng.choice([0, 0, 10]),
                    as_path=tuple(64512 + j
                                  for j in range(rng.randint(1, 3))),
                ))
                probes.append(iplib.network_of(prefix_net, length) + 9)

    network = builder.build()
    environment = Environment.of(announcements)
    if not probes:
        probes.append(iplib.parse_ip("10.255.255.1"))
    return RandomScenario(seed=seed, network=network,
                          environment=environment,
                          probe_destinations=sorted(set(probes)))
