"""Synthetic network generators for benchmarks and fuzzing."""

from .cloud import CloudNetwork, SUITE_SIZE, build_cloud_network, cloud_suite
from .fattree import FatTree, build_fattree, fattree_router_count
from .random_net import RandomScenario, random_scenario

__all__ = [
    "FatTree", "build_fattree", "fattree_router_count",
    "CloudNetwork", "build_cloud_network", "cloud_suite", "SUITE_SIZE",
    "RandomScenario", "random_scenario",
]
