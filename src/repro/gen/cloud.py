"""Generator of "cloud-provider-like" networks for the §8.1 experiments.

The paper analyzed 152 proprietary networks (2–25 routers, 1–23K config
lines) and found 120 violations of four properties.  We cannot obtain that
data set, so this module generates 152 networks in the same size range with
the same structure the paper describes (core/aggregation/ToR roles, OSPF +
eBGP + iBGP + statics + ACLs + redistribution, management interfaces) and
*seeds the same bug classes* in matching proportions:

* **management-interface hijack** — cores lack an inbound filter covering
  the management space, so a crafted external /32 announcement diverts
  management traffic (67 networks in the paper);
* **local-equivalence drift** — one router of a role carries an extra or
  missing ACL entry, a copy-paste artifact (29 networks);
* **deep black hole** — a Null0 discard configured on an interior router
  rather than at the edge (24 networks);
* fault-invariance violations — none (matching the paper's zero).

The generator is deterministic per index, so the benchmark harness and the
tests agree on which networks carry which bugs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net import ip as iplib
from repro.net.builder import NetworkBuilder
from repro.net.policy import AclRule, PrefixListEntry, RouteMapClause
from repro.net.topology import Network

__all__ = ["CloudNetwork", "build_cloud_network", "cloud_suite",
           "SUITE_SIZE"]

SUITE_SIZE = 152

# Bug-class assignment: indices chosen deterministically so the suite
# reproduces the paper's violation counts (67 / 29 / 24 / 0 out of 152).
_HIJACK_COUNT = 67
_EQUIV_COUNT = 29
_BLACKHOLE_COUNT = 24


@dataclass
class CloudNetwork:
    """A generated network plus its ground-truth bug labels."""

    index: int
    network: Network
    roles: Dict[str, List[str]]
    management_prefixes: List[str]
    seeded_hijack: bool
    seeded_equiv_drift: bool
    seeded_blackhole: bool
    blackhole_router: Optional[str] = None
    drift_pair: Optional[Tuple[str, str]] = None

    @property
    def name(self) -> str:
        return f"cloud{self.index:03d}"


def _bug_flags(index: int) -> Tuple[bool, bool, bool]:
    """Deterministic, disjoint bug assignment: indices 0..66 hijack,
    67..95 equivalence drift, 96..119 black hole, 120..151 clean —
    exactly the paper's 67 + 29 + 24 violations over 152 networks."""
    hijack = index < _HIJACK_COUNT
    drift = _HIJACK_COUNT <= index < _HIJACK_COUNT + _EQUIV_COUNT
    hole_start = _HIJACK_COUNT + _EQUIV_COUNT
    hole = hole_start <= index < hole_start + _BLACKHOLE_COUNT
    return hijack, drift, hole


def build_cloud_network(index: int) -> CloudNetwork:
    """Build network ``index`` (0..151) of the suite."""
    rng = random.Random(0xC10D + index)
    hijack, drift, hole = _bug_flags(index)

    # Size: 3..25 routers, skewed small like the paper's population.
    n_routers = min(25, max(3, 2 + int(rng.expovariate(1 / 6.0))))
    if drift or hole:
        # These bug classes need an interior/role structure to live in.
        n_routers = max(n_routers, 6)
    n_cores = 1 if n_routers < 6 else 2
    n_aggs = 0 if n_routers < 4 else min(4, max(0, (n_routers - 2) // 3))
    n_tors = max(0, n_routers - n_cores - n_aggs)

    builder = NetworkBuilder()
    cores = [f"core{i}" for i in range(n_cores)]
    aggs = [f"agg{i}" for i in range(n_aggs)]
    tors = [f"tor{i}" for i in range(n_tors)]
    roles = {"core": cores, "agg": aggs, "tor": tors}

    mgmt_prefixes: List[str] = []
    all_names = cores + aggs + tors
    for i, name in enumerate(all_names):
        dev = builder.device(name)
        dev.enable_ospf()
        dev.ospf_network("10.0.0.0/8")
        dev.ospf_network("172.16.0.0/12")
        mgmt = f"172.16.{index % 120}.{i + 1}"
        dev.interface("mgmt", f"{mgmt}/32", management=True)
        mgmt_prefixes.append(f"{mgmt}/32")

    # Topology: a ring over all routers guarantees 2-edge-connectivity
    # (so single failures never partition — the paper found zero
    # fault-invariance violations), plus hierarchical links for realism:
    # cores meshed, aggs homed to every core, tors homed to two uplinks.
    linked = set()

    def link_once(a: str, b: str) -> None:
        key = tuple(sorted((a, b)))
        if a != b and key not in linked:
            linked.add(key)
            builder.link(a, b)

    ring = cores + aggs + tors
    for a, b in zip(ring, ring[1:] + ring[:1]):
        link_once(a, b)
    for i, a in enumerate(cores):
        for b in cores[i + 1:]:
            link_once(a, b)
    uplinks = aggs if aggs else cores
    for agg in aggs:
        for core in cores:
            link_once(agg, core)
    for i, tor in enumerate(tors):
        link_once(tor, uplinks[i % len(uplinks)])
        link_once(tor, uplinks[(i + 1) % len(uplinks)])

    # Rack subnets on ToRs (or on the cores of tiny networks).
    racks = tors if tors else cores
    for i, name in enumerate(racks):
        builder.device(name).interface(
            "rack", f"10.{index % 120}.{i}.1/24")

    # Cores run eBGP to one upstream each, redistribute both ways, and
    # (in correct networks) filter the management space inbound.
    # Cores redistribute BGP into OSPF so interior routers can reach
    # external space.  They do NOT redistribute OSPF into BGP: locally
    # sourced BGP routes would out-prefer (suppress) learned eBGP routes
    # and mask the hijack — the paper's vulnerable networks evidently
    # leave internal space un-redistributed too.
    # Every network filters its internal *data* space inbound (standard
    # hygiene, and what keeps fault-invariance clean); the hijack bug
    # class forgets to cover the *management* space — exactly the
    # oversight the paper found in 67 of 152 networks.
    for i, core in enumerate(cores):
        dev = builder.device(core)
        dev.enable_bgp(65000 + index % 500)
        dev.redistribute("ospf", "bgp", metric=20)
        entries = [PrefixListEntry("deny", iplib.parse_ip("10.0.0.0"), 8,
                                   ge=8, le=32)]
        if not hijack:
            entries.append(PrefixListEntry(
                "deny", iplib.parse_ip("172.16.0.0"), 12, ge=12, le=32))
        entries.append(PrefixListEntry("permit", 0, 0, le=32))
        dev.prefix_list("EDGE_FILTER", entries)
        dev.route_map("EDGE_IN", [RouteMapClause(
            seq=10, action="permit", match_prefix_list="EDGE_FILTER")])
        builder.external_peer(core, asn=64900 + i,
                              name=f"upstream{i}",
                              route_map_in="EDGE_IN")

    # Role ACLs on rack interfaces (the §8.1 local-equivalence subject).
    guard_rules = [
        AclRule("deny", dst_network=iplib.parse_ip("192.168.0.0"),
                dst_length=16),
        AclRule("deny", dst_network=iplib.parse_ip("169.254.0.0"),
                dst_length=16),
        AclRule("permit"),
    ]
    drift_pair = None
    for i, name in enumerate(racks):
        dev = builder.device(name)
        rules = list(guard_rules)
        if drift and i == len(racks) - 1 and len(racks) >= 2:
            # Copy-paste drift: the last same-role router misses an entry.
            rules = rules[1:]
            drift_pair = (racks[0], name)
        dev.acl("RACK_GUARD", rules)
        dev.config.interfaces["rack"].acl_in = "RACK_GUARD"
    if drift_pair is None:
        drift = False

    # Deep black hole: an interior router discards a rack sub-prefix.
    blackhole_router = None
    if hole and aggs:
        blackhole_router = aggs[0]
        builder.device(blackhole_router).static_route(
            f"10.{index % 120}.0.128/25", drop=True)
    elif hole and len(cores) > 1:
        blackhole_router = cores[1]
        builder.device(blackhole_router).static_route(
            f"10.{index % 120}.0.128/25", drop=True)
    else:
        hole = False

    network = builder.build()
    return CloudNetwork(
        index=index,
        network=network,
        roles=roles,
        management_prefixes=mgmt_prefixes,
        seeded_hijack=hijack,
        seeded_equiv_drift=drift,
        seeded_blackhole=hole,
        blackhole_router=blackhole_router,
        drift_pair=drift_pair,
    )


def cloud_suite(count: int = SUITE_SIZE) -> List[CloudNetwork]:
    """The full 152-network suite (or a prefix of it)."""
    return [build_cloud_network(i) for i in range(count)]
