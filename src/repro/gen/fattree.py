"""Folded-Clos (fat-tree) BGP data centers — the §8.2 synthetic workload.

Matches the paper's sizing: for ``pods = p`` (even), the network has
``p`` pods of ``p/2`` aggregation + ``p/2`` top-of-rack routers plus
``(p/2)²`` core (spine) routers — 5 routers for 2 pods, 45 for 6,
125 for 10, 245 for 14, 405 for 18, exactly the x-axis of Figure 8.

Configuration follows the paper's description of its Propane-like
networks: BGP everywhere (a private ASN per router), multipath enabled on
all routers, each ToR announcing a /24 for its rack, and spine routers
peering with an external backbone through route filters that block
internal-space advertisements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net import ip as iplib
from repro.net.builder import NetworkBuilder
from repro.net.policy import PrefixListEntry, RouteMapClause
from repro.net.topology import Network

__all__ = ["FatTree", "build_fattree", "fattree_router_count"]

BASE_ASN = 64600


def fattree_router_count(pods: int) -> int:
    """Router count for a given pod parameter (must be even)."""
    half = pods // 2
    return pods * (half + half) + half * half


@dataclass
class FatTree:
    """A generated fat-tree plus its landmark names."""

    network: Network
    pods: int
    tors: List[str]
    aggs: List[str]
    cores: List[str]
    backbone_peers: List[str]

    def tor_subnet(self, tor: str) -> str:
        """The /24 announced by a ToR."""
        return self._subnets[tor]

    def pod_of(self, router: str) -> int:
        return int(router.split("_")[1])


def build_fattree(pods: int, with_backbone: bool = True) -> FatTree:
    """Build a ``pods``-pod fat-tree (pods must be even and >= 2)."""
    if pods < 2 or pods % 2:
        raise ValueError("pods must be an even integer >= 2")
    half = pods // 2
    builder = NetworkBuilder()
    asn = _asn_allocator()

    tors: List[str] = []
    aggs: List[str] = []
    cores: List[str] = []
    subnets: Dict[str, str] = {}

    for pod in range(pods):
        for i in range(half):
            name = f"agg_{pod}_{i}"
            aggs.append(name)
            dev = builder.device(name)
            dev.enable_bgp(asn(name), multipath=True)
        for i in range(half):
            name = f"tor_{pod}_{i}"
            tors.append(name)
            dev = builder.device(name)
            dev.enable_bgp(asn(name), multipath=True)
            subnet = f"10.{pod}.{i}.0/24"
            host = f"10.{pod}.{i}.1/24"
            dev.interface("rack", host)
            dev.bgp_network(subnet)
            subnets[name] = subnet
    for i in range(half * half):
        name = f"core_{i // half}_{i % half}"
        cores.append(name)
        dev = builder.device(name)
        dev.enable_bgp(asn(name), multipath=True)

    # Pod wiring: full bipartite ToR <-> Agg inside each pod.
    for pod in range(pods):
        for t in range(half):
            for a in range(half):
                _bgp_link(builder, f"tor_{pod}_{t}", f"agg_{pod}_{a}")
    # Core wiring: agg i of each pod connects to core row i.
    for pod in range(pods):
        for a in range(half):
            for c in range(half):
                _bgp_link(builder, f"agg_{pod}_{a}", f"core_{a}_{c}")

    backbone_peers: List[str] = []
    if with_backbone:
        # Spine routers filter advertisements from the backbone: internal
        # rack space must not be announced *to* us from outside (and our
        # more-specific internal routes are not leaked out).
        for core in cores:
            dev = builder.device(core)
            dev.prefix_list("BLOCK_INTERNAL", [
                PrefixListEntry("deny", iplib.parse_ip("10.0.0.0"), 8,
                                ge=8, le=32),
                PrefixListEntry("permit", 0, 0, le=32),
            ])
            dev.route_map("BACKBONE_IN", [
                RouteMapClause(seq=10, action="permit",
                               match_prefix_list="BLOCK_INTERNAL"),
            ])
            peer = builder.external_peer(
                core, asn=65000, name=f"bb_{core}",
                route_map_in="BACKBONE_IN")
            backbone_peers.append(peer)

    tree = FatTree(network=builder.build(), pods=pods, tors=tors,
                   aggs=aggs, cores=cores, backbone_peers=backbone_peers)
    tree._subnets = subnets
    return tree


def _bgp_link(builder: NetworkBuilder, a: str, b: str) -> None:
    if_a, if_b = builder.link(a, b)
    dev_a = builder.device(a)
    dev_b = builder.device(b)
    addr_a = iplib.format_ip(if_a.address)
    addr_b = iplib.format_ip(if_b.address)
    dev_a.bgp_neighbor(addr_b, remote_as=dev_b.config.bgp.asn)
    dev_b.bgp_neighbor(addr_a, remote_as=dev_a.config.bgp.asn)


def _asn_allocator():
    counter = {"next": BASE_ASN}

    def allocate(_name: str) -> int:
        counter["next"] += 1
        return counter["next"]

    return allocate
