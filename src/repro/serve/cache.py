"""Scoped-key TTL + LRU cache with a byte-size budget.

The serving daemon's working set — built :class:`~repro.net.topology.
Network` objects and :class:`~repro.core.engine.GroupEncoding`
instances — is expensive to build and cheap to rebuild *correctly*
(everything is derived from the snapshot's config texts, which the
registry always keeps).  That makes a lossy cache the right shape: any
entry may vanish at any time and the only cost is a rebuild.

Keys are slash-scoped strings, ``{tenant}/{snapshot}/enc/{dst}/k{k}/
{options-digest}`` for encodings and ``{tenant}/{snapshot}/net`` for
built networks.  Scoping does double duty:

* **Tenancy** — every key is prefixed by the owning tenant, and the
  registry only ever composes keys for the tenant named in the
  request, so one tenant's entries are unreachable (and unevictable
  except via the shared LRU pressure) from another's requests.
* **Invalidation** — deleting or refreshing a snapshot drops the whole
  ``{tenant}/{snapshot}/`` scope in one call.

Eviction: entries expire ``ttl_seconds`` after last use (lazily, on
access or insert) and the least-recently-used entries are evicted when
the byte budget overflows.  Sizes are caller-supplied estimates (see
``GroupEncoding.cache_size``); an entry larger than the whole budget
is refused outright rather than evicting everything else.

All mutation happens under one lock — the daemon's
``ThreadingHTTPServer`` handles each request on its own thread.
Counters are mirrored both into the process metrics registry
(``serve.cache.*``, scraped at ``/metrics``) and into instance fields
(deterministic, test-friendly).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro import obs

__all__ = ["TTLLRUCache"]


class _Entry:
    __slots__ = ("value", "size", "expires_at")

    def __init__(self, value: Any, size: int, expires_at: float) -> None:
        self.value = value
        self.size = size
        self.expires_at = expires_at


class TTLLRUCache:
    """Byte-budgeted TTL + LRU mapping of scoped keys to values.

    Satisfies the duck-typed interface of
    :class:`~repro.core.engine.BatchEngine`'s ``encoding_cache``:
    ``get(key)`` and ``put(key, value, size_bytes)``.
    """

    def __init__(
        self,
        max_bytes: int = 256 * 1024 * 1024,
        ttl_seconds: float = 3600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.total_bytes = 0
        # Deterministic instance counters (the metrics registry mirrors
        # them process-wide, but tests and per-request reporting need
        # values that do not depend on which tracer is installed).
        self.hits = 0
        self.misses = 0
        self.evicted_lru = 0
        self.evicted_ttl = 0
        self.evicted_scope = 0
        self.rejected = 0

    # -- internal (lock held) -------------------------------------------

    def _metrics(self):
        return obs.metrics()

    def _drop(self, key: str, reason: str) -> None:
        entry = self._entries.pop(key)
        self.total_bytes -= entry.size
        if reason == "lru":
            self.evicted_lru += 1
        elif reason == "ttl":
            self.evicted_ttl += 1
        else:
            self.evicted_scope += 1
        self._metrics().counter("serve.cache.evicted", reason=reason).inc()

    def _expire(self, now: float) -> None:
        # TTL is since last use, so expired entries cluster at the LRU
        # end: stop at the first live one.
        while self._entries:
            key = next(iter(self._entries))
            if self._entries[key].expires_at > now:
                break
            self._drop(key, "ttl")

    def _publish_gauges(self) -> None:
        metrics = self._metrics()
        metrics.gauge("serve.cache.bytes").set(self.total_bytes)
        metrics.gauge("serve.cache.entries").set(len(self._entries))

    # -- public ----------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The live entry for ``key`` (refreshing its recency and TTL),
        or None on miss/expiry."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._metrics().counter("serve.cache.miss").inc()
                return None
            self.hits += 1
            self._metrics().counter("serve.cache.hit").inc()
            entry.expires_at = now + self.ttl_seconds
            self._entries.move_to_end(key)
            return entry.value

    def put(self, key: str, value: Any, size_bytes: int) -> bool:
        """Insert (or replace) an entry; evicts LRU entries past the
        byte budget.  Returns False when the entry alone exceeds the
        whole budget and was refused."""
        size = max(0, int(size_bytes))
        now = self._clock()
        with self._lock:
            self._expire(now)
            if size > self.max_bytes:
                self.rejected += 1
                self._metrics().counter("serve.cache.rejected").inc()
                # An oversized entry must not silently shadow a stale
                # smaller one under the same key.
                if key in self._entries:
                    self._drop(key, "scope")
                self._publish_gauges()
                return False
            if key in self._entries:
                self._drop(key, "scope")
            self._entries[key] = _Entry(value, size, now + self.ttl_seconds)
            self.total_bytes += size
            while self.total_bytes > self.max_bytes:
                self._drop(next(iter(self._entries)), "lru")
            self._publish_gauges()
            return True

    def evict_scope(self, prefix: str) -> int:
        """Drop every entry whose key starts with ``prefix`` (snapshot
        delete/refresh).  Returns the number of entries dropped."""
        with self._lock:
            doomed = [k for k in self._entries if k.startswith(prefix)]
            for key in doomed:
                self._drop(key, "scope")
            if doomed:
                self._publish_gauges()
            return len(doomed)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "ttl_seconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "evicted_lru": self.evicted_lru,
                "evicted_ttl": self.evicted_ttl,
                "evicted_scope": self.evicted_scope,
                "rejected": self.rejected,
            }

    def keys(self):
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.expires_at > self._clock()
