"""Tenant-namespaced snapshot registry.

A *snapshot* is an immutable config set owned by a tenant: the raw
texts plus derived identity (``snapshot_id`` = the first 12 hex chars
of :func:`repro.obs.ledger.network_hash` over the parsed network, so
identical configs always get the same id).  The registry is the
daemon's source of truth; everything derived from a snapshot — the
built :class:`~repro.net.topology.Network`, per-group
:class:`~repro.core.engine.GroupEncoding` state — lives in the shared
:class:`~repro.serve.cache.TTLLRUCache` under the snapshot's
``{tenant}/{snapshot_id}/`` scope and can be dropped at any time.

Each snapshot also owns a persistent :class:`~repro.diff.VerdictCache`
(PR 7's differential-verification cache).  Because verdict keys encode
the query's dependency-slice hash, the cache survives ``refresh``
unchanged: after swapping in edited configs, the next verify replays
every verdict whose slice the edit did not touch and re-solves only the
rest — refresh *is* continuous differential verification.

With a ``state_dir`` the registry persists each snapshot as
``tenants/{tenant}/{name}/{meta.json,configs/,verdicts.json}`` and
reloads them on startup, so a restarted daemon serves the same
snapshots (with warm verdict caches, cold encodings).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core import Verifier
from repro.core.encoder import EncoderOptions
from repro.diff import VerdictCache
from repro.diff.differ import changed_devices
from repro.net.loader import network_from_texts
from repro.net.topology import Network
from repro.obs.ledger import network_hash
from repro.obs.log import event as log_event
from repro.serve.cache import TTLLRUCache
from repro.serve.schemas import ApiError, validate_label

__all__ = ["Snapshot", "SnapshotRegistry"]

_META_VERSION = 1


def _safe_filename(name: str) -> str:
    if (
        not name
        or name.startswith(".")
        or "/" in name
        or "\\" in name
        or len(name) > 128
    ):
        raise ApiError(400, f"unsafe config file name {name!r}")
    return name


def _network_size(texts: Dict[str, str]) -> int:
    # Parsed models are a small constant factor over the raw text.
    return 64 * 1024 + 8 * sum(len(t) for t in texts.values())


@dataclass
class Snapshot:
    """One ingested config set and its bookkeeping."""

    tenant: str
    name: str
    snapshot_id: str
    config_hash: str
    files: int
    routers: int
    created: float
    refreshed: float
    refreshes: int = 0
    queries_run: int = 0
    replayed: int = 0
    texts: Dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def scope(self) -> str:
        """The cache-key prefix owning every derived entry."""
        return f"{self.tenant}/{self.snapshot_id}/"

    def to_json(self) -> Dict:
        return {
            "tenant": self.tenant,
            "name": self.name,
            "snapshot_id": self.snapshot_id,
            "config_hash": self.config_hash,
            "files": self.files,
            "routers": self.routers,
            "created": self.created,
            "refreshed": self.refreshed,
            "refreshes": self.refreshes,
            "queries_run": self.queries_run,
            "replayed": self.replayed,
        }


class SnapshotRegistry:
    """Snapshots by ``(tenant, name)``, with derived-state caching.

    Thread-safe: registry mutations happen under one lock; verification
    itself runs outside it (concurrent verifies against one snapshot
    are serialized per group by ``GroupEncoding.lock``, not here).
    """

    def __init__(
        self,
        cache: Optional[TTLLRUCache] = None,
        options: Optional[EncoderOptions] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.cache = cache if cache is not None else TTLLRUCache()
        self.options = options or EncoderOptions()
        self.state_dir = Path(state_dir) if state_dir else None
        self._lock = threading.Lock()
        # Serializes on-disk writes (meta, configs, verdicts, delete):
        # concurrent verify requests against one snapshot otherwise
        # race on the same files.  Never acquired while holding
        # ``_lock`` (``_persist`` nests ``_lock`` *inside* it).
        self._io_lock = threading.Lock()
        self._snapshots: Dict[Tuple[str, str], Snapshot] = {}
        self._verdicts: Dict[Tuple[str, str], VerdictCache] = {}
        if self.state_dir is not None:
            self._restore()

    # -- persistence -----------------------------------------------------

    def _snapshot_dir(self, tenant: str, name: str) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / "tenants" / tenant / name

    def _persist(self, snap: Snapshot) -> None:
        base = self._snapshot_dir(snap.tenant, snap.name)
        if base is None:
            return
        with self._io_lock:
            with self._lock:
                if self._snapshots.get((snap.tenant, snap.name)) is not snap:
                    return  # deleted concurrently; do not resurrect on disk
                meta = dict(snap.to_json(), version=_META_VERSION)
                texts = snap.texts
            configs = base / "configs"
            configs.mkdir(parents=True, exist_ok=True)
            for stale in configs.iterdir():
                if stale.name not in texts:
                    stale.unlink()
            for filename, text in texts.items():
                (configs / filename).write_text(text)
            fd, tmp = tempfile.mkstemp(dir=base, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(meta, handle, indent=1, sort_keys=True)
                os.replace(tmp, base / "meta.json")
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def _restore(self) -> None:
        root = self.state_dir / "tenants"
        if not root.is_dir():
            return
        for meta_path in sorted(root.glob("*/*/meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(meta, dict):
                continue
            if meta.get("version") != _META_VERSION:
                continue
            base = meta_path.parent
            texts = {
                entry.name: entry.read_text()
                for entry in sorted((base / "configs").glob("*"))
                if entry.is_file()
            }
            if not texts:
                continue
            snap = Snapshot(
                tenant=meta["tenant"],
                name=meta["name"],
                snapshot_id=meta["snapshot_id"],
                config_hash=meta["config_hash"],
                files=len(texts),
                routers=meta.get("routers", 0),
                created=meta.get("created", 0.0),
                refreshed=meta.get("refreshed", 0.0),
                refreshes=meta.get("refreshes", 0),
                queries_run=meta.get("queries_run", 0),
                replayed=meta.get("replayed", 0),
                texts=texts,
            )
            key = (snap.tenant, snap.name)
            self._snapshots[key] = snap
            self._verdicts[key] = VerdictCache.load(
                str(base / "verdicts.json"),
            )
            log_event(
                "serve.snapshot.restored",
                tenant=snap.tenant,
                snapshot=snap.name,
                snapshot_id=snap.snapshot_id,
            )

    def _save_verdicts(self, snap: Snapshot) -> None:
        base = self._snapshot_dir(snap.tenant, snap.name)
        if base is None:
            return
        with self._io_lock:
            with self._lock:
                if self._snapshots.get((snap.tenant, snap.name)) is not snap:
                    return  # deleted concurrently
                vc = self._verdicts.get((snap.tenant, snap.name))
            if vc is None or not vc.dirty:
                return
            vc.save(str(base / "verdicts.json"))

    # -- lifecycle -------------------------------------------------------

    def _build(self, texts: Dict[str, str]) -> Network:
        try:
            return network_from_texts(texts)
        except ValueError as exc:
            raise ApiError(400, f"config parse failed: {exc}") from exc

    def ingest(
        self,
        tenant: str,
        texts: Dict[str, str],
        name: Optional[str] = None,
    ) -> Snapshot:
        """Create a snapshot from config texts; 409 on a name clash."""
        validate_label("tenant", tenant)
        texts = {_safe_filename(k): v for k, v in texts.items()}
        network = self._build(texts)
        config_hash = network_hash(network)
        sid = config_hash[:12]
        now = time.time()
        snap = Snapshot(
            tenant=tenant,
            name=name or sid,
            snapshot_id=sid,
            config_hash=config_hash,
            files=len(texts),
            routers=len(network.devices),
            created=now,
            refreshed=now,
            texts=texts,
        )
        key = (tenant, snap.name)
        with self._lock:
            if key in self._snapshots:
                raise ApiError(
                    409,
                    f"snapshot {snap.name!r} already exists for "
                    f"tenant {tenant!r} (use refresh or delete)",
                )
            self._snapshots[key] = snap
            self._verdicts[key] = VerdictCache()
        self.cache.put(snap.scope + "net", network, _network_size(texts))
        self._persist(snap)
        obs.metrics().counter("serve.snapshots.ingested").inc()
        log_event(
            "serve.snapshot.ingested",
            tenant=tenant,
            snapshot=snap.name,
            snapshot_id=sid,
            routers=snap.routers,
        )
        return snap

    def refresh(
        self,
        snap: Snapshot,
        texts: Dict[str, str],
    ) -> Tuple[Snapshot, Dict]:
        """Swap a snapshot's configs in place, keeping its verdict
        cache so the next verify is differential.  Returns the updated
        snapshot plus a device-level change summary."""
        texts = {_safe_filename(k): v for k, v in texts.items()}
        network = self._build(texts)
        with self._lock:
            old_scope, old_texts = snap.scope, snap.texts
        old_network = self._network_at(old_scope, old_texts)
        changed, added, removed = changed_devices(old_network, network)
        with self._lock:
            snap.config_hash = network_hash(network)
            snap.snapshot_id = snap.config_hash[:12]
            snap.texts = texts
            snap.files = len(texts)
            snap.routers = len(network.devices)
            snap.refreshed = time.time()
            snap.refreshes += 1
        self.cache.evict_scope(old_scope)
        self.cache.put(snap.scope + "net", network, _network_size(texts))
        self._persist(snap)
        obs.metrics().counter("serve.snapshots.refreshed").inc()
        log_event(
            "serve.snapshot.refreshed",
            tenant=snap.tenant,
            snapshot=snap.name,
            snapshot_id=snap.snapshot_id,
            changed=len(changed),
            added=len(added),
            removed=len(removed),
        )
        return snap, {
            "changed_devices": changed,
            "added": added,
            "removed": removed,
        }

    def delete(self, snap: Snapshot) -> None:
        key = (snap.tenant, snap.name)
        with self._lock:
            self._snapshots.pop(key, None)
            self._verdicts.pop(key, None)
        self.cache.evict_scope(snap.scope)
        base = self._snapshot_dir(snap.tenant, snap.name)
        if base is not None:
            with self._io_lock:
                if base.is_dir():
                    shutil.rmtree(base)
        log_event(
            "serve.snapshot.deleted",
            tenant=snap.tenant,
            snapshot=snap.name,
            snapshot_id=snap.snapshot_id,
        )

    def resolve(self, tenant: str, ref: str) -> Snapshot:
        """A tenant's snapshot by name or by snapshot id."""
        validate_label("tenant", tenant)
        with self._lock:
            snap = self._snapshots.get((tenant, ref))
            if snap is None:
                for candidate in self._snapshots.values():
                    if (
                        candidate.tenant == tenant
                        and candidate.snapshot_id == ref
                    ):
                        snap = candidate
                        break
        if snap is None:
            raise ApiError(404, f"no snapshot {ref!r} for tenant {tenant!r}")
        return snap

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def list(self, tenant: str) -> List[Snapshot]:
        validate_label("tenant", tenant)
        with self._lock:
            return sorted(
                (s for (t, _), s in self._snapshots.items() if t == tenant),
                key=lambda s: s.name,
            )

    # -- verification ----------------------------------------------------

    def _network_at(self, scope: str, texts: Dict[str, str]) -> Network:
        """The built network for one captured (scope, texts) revision,
        from cache when warm.  Scope and texts must come from the same
        atomic read of the snapshot: the scope is content-addressed
        (``snapshot_id`` hashes the configs), so a network built from
        one revision's texts must only ever be cached under that same
        revision's scope."""
        key = scope + "net"
        network = self.cache.get(key)
        if network is None:
            network = self._build(texts)
            self.cache.put(key, network, _network_size(texts))
        return network

    def network(self, snap: Snapshot) -> Network:
        """The snapshot's built network, from cache when warm."""
        with self._lock:
            scope, texts = snap.scope, snap.texts
        return self._network_at(scope, texts)

    def verify(self, snap: Snapshot, queries) -> Tuple[List, Dict]:
        """Run a batch against a snapshot through every cache layer.

        Returns ``(results, stats)`` where stats reports the request's
        own verdict replays and encoding-cache hits/misses (from
        :attr:`BatchEngine.last_encoding_stats`, so concurrent requests
        do not bleed into each other's numbers).
        """
        # Capture one consistent revision under the registry lock: a
        # concurrent refresh() swaps snapshot_id and texts together,
        # and encodings built from this network must never be cached
        # under a different revision's scope (stale-verdict poisoning).
        with self._lock:
            scope, texts = snap.scope, snap.texts
            verdict_cache = self._verdicts.get((snap.tenant, snap.name))
        network = self._network_at(scope, texts)
        # Preflight ran semantically at ingest via parse validation;
        # per-request lint would re-analyze an unchanged network.
        verifier = Verifier(network, options=self.options, preflight=False)
        results = verifier.verify_batch(
            queries,
            verdict_cache=verdict_cache,
            encoding_cache=self.cache,
            encoding_scope=scope,
        )
        stats = dict(verifier.last_encoding_stats)
        replayed = sum(1 for r in results if r.cached)
        stats["verdicts_replayed"] = replayed
        with self._lock:
            snap.queries_run += len(results)
            snap.replayed += replayed
        self._save_verdicts(snap)
        self._persist(snap)
        return results, stats
