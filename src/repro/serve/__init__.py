"""Verification-as-a-service: the ``repro serve`` daemon.

Long-lived HTTP front end over the batch verifier.  Tenants ingest
config *snapshots* once; every later query against a warm snapshot
reuses the parsed network and per-group incremental solvers from a
shared TTL+LRU cache, skipping parse/build/encode entirely — the
monolithic encoding becomes a resident service asset instead of a
per-invocation cost.  See ``docs/SERVING.md``.
"""

from .cache import TTLLRUCache
from .registry import Snapshot, SnapshotRegistry
from .schemas import ApiError
from .server import ReproServer, make_server

__all__ = [
    "ApiError",
    "ReproServer",
    "Snapshot",
    "SnapshotRegistry",
    "TTLLRUCache",
    "make_server",
]
