"""The ``repro serve`` HTTP daemon — stdlib only.

One :class:`ReproServer` (a ``ThreadingHTTPServer``) owns the shared
pieces: the :class:`~repro.serve.registry.SnapshotRegistry` (and
through it the cross-request :class:`~repro.serve.cache.TTLLRUCache`),
the process-wide :class:`~repro.obs.Tracer` whose metrics registry
backs ``GET /metrics``, and the run ledger path.  Request handling is
thread-per-request; everything the handlers touch is either immutable,
lock-protected (registry, cache, per-group solvers), or thread-scoped
(run ids, span stacks).

API (all bodies JSON; tenant from the ``X-Repro-Tenant`` header,
default ``"default"``):

=======  ================================  ===============================
method   path                              action
=======  ================================  ===============================
GET      /healthz                          liveness + uptime
GET      /metrics                          Prometheus exposition
GET      /v1/snapshots                     list tenant's snapshots
POST     /v1/snapshots                     ingest configs -> snapshot id
GET      /v1/snapshots/{ref}               snapshot metadata
DELETE   /v1/snapshots/{ref}               drop snapshot + derived state
POST     /v1/snapshots/{ref}/verify        run one query
POST     /v1/snapshots/{ref}/verify-batch  run a query batch
POST     /v1/snapshots/{ref}/refresh       swap configs, keep verdicts
=======  ================================  ===============================

``{ref}`` is a snapshot name or id.  Every verify/refresh request gets
a fresh run id (returned in the response and the ``X-Repro-Run-Id``
header), its structured log records carry it, and verify requests are
appended to the run ledger under it — the existing ``repro history``
CLI reads service traffic exactly like CLI runs.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.obs.ledger import RunLedger, build_record
from repro.obs.log import event as log_event
from repro.obs.log import new_run_id, set_run_id
from repro.obs.promexport import to_prometheus
from repro.serve.registry import SnapshotRegistry
from repro.serve.schemas import (
    ApiError,
    parse_queries,
    parse_snapshot_body,
    result_to_json,
    validate_label,
)

__all__ = ["ReproServer", "make_server"]

_MAX_BODY = 64 * 1024 * 1024
_DEFAULT_TENANT = "default"


class ReproServer(ThreadingHTTPServer):
    """HTTP front end over a snapshot registry."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        registry: SnapshotRegistry,
        ledger_path: Optional[str] = None,
        local_dir_root: Optional[str] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.registry = registry
        self.ledger_path = ledger_path
        # Server-side opt-in for {"directory": ...} ingest bodies: the
        # root below which clients may point the daemon at config
        # trees.  None (the default) disables directory ingest — an
        # unrestricted form would let any client read server-local
        # files into a snapshot.
        self.local_dir_root = local_dir_root
        self.started = time.time()
        self.requests_served = 0
        self._ledger_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # The daemon owns the process tracer: engine spans and cache
        # counters from every request land in one registry, which
        # /metrics renders.  server_close restores the previous one.
        self._previous_tracer = obs.active()
        self.tracer = obs.enable()

    def server_close(self) -> None:  # pragma: no cover - exercised via CLI
        super().server_close()
        if self._previous_tracer is obs.NULL_TRACER:
            obs.disable()
        else:
            obs.enable(self._previous_tracer)

    # -- helpers used by the handler ------------------------------------

    def count_request(self) -> None:
        with self._stats_lock:
            self.requests_served += 1

    def record_run(self, record) -> None:
        """Append to the ledger.  SQLite connections are thread-bound,
        so each append opens (and closes) its own under a lock."""
        if self.ledger_path is None:
            return
        with self._ledger_lock:
            try:
                with RunLedger(self.ledger_path) as ledger:
                    ledger.append(record)
            except Exception as exc:
                log_event(
                    "serve.ledger.error",
                    str(exc),
                    level=logging.WARNING,
                )


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Default handler writes to stderr; route through the
        # structured log instead so daemon output stays one format.
        log_event("serve.http", format % args, client=self.client_address[0])

    def _tenant(self) -> str:
        return validate_label(
            "tenant",
            self.headers.get("X-Repro-Tenant", _DEFAULT_TENANT),
        )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "request body required")
        if length > _MAX_BODY:
            raise ApiError(413, f"body exceeds {_MAX_BODY} bytes")
        raw = self.rfile.read(length)
        self._body_consumed = True
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"malformed JSON body: {exc}") from exc

    def _drain_body(self) -> bool:
        """Consume any unread request body so the HTTP/1.1 keep-alive
        connection stays framed: a handler that errors before reading
        the body (404 on resolve, 405 routing) would otherwise leave
        the bytes to be parsed as the *next* request.  Returns False
        when draining is impossible (oversized, bad framing) — the
        caller must then close the connection instead of reusing it."""
        if self._body_consumed:
            return True
        if self.headers.get("Transfer-Encoding"):
            return False  # chunked framing is never parsed here
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return False
        if length <= 0:
            return True
        if length > _MAX_BODY:
            return False
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 64 * 1024))
            if not chunk:
                return False
            remaining -= len(chunk)
        self._body_consumed = True
        return True

    def _reply(
        self,
        status: int,
        doc: Dict[str, Any],
        run_id: Optional[str] = None,
    ) -> None:
        payload = json.dumps(doc, sort_keys=True).encode()
        keep_alive = self._drain_body()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if run_id:
            self.send_header("X-Repro-Run-Id", run_id)
        if not keep_alive:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(payload)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode()
        keep_alive = self._drain_body()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if not keep_alive:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, method: str) -> None:
        self.server.count_request()
        # Per-request state; the handler instance is reused across
        # requests on one keep-alive connection.
        self._body_consumed = False
        started = time.time()
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            status = self._route(method, path)
        except ApiError as exc:
            status = exc.status
            self._reply(exc.status, {"error": exc.message})
        except Exception as exc:  # daemon must not die on one request
            status = 500
            log_event(
                "serve.error",
                f"{type(exc).__name__}: {exc}",
                level=logging.ERROR,
                path=path,
            )
            message = f"internal error: {type(exc).__name__}: {exc}"
            self._reply(500, {"error": message})
        log_event(
            "serve.request",
            method=method,
            path=path,
            status=status,
            seconds=round(time.time() - started, 6),
        )
        set_run_id(None, thread_only=True)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- routing ---------------------------------------------------------

    def _route(self, method: str, path: str) -> int:
        if path == "/healthz":
            if method != "GET":
                raise ApiError(405, "healthz is GET-only")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise ApiError(405, "metrics is GET-only")
            return self._metrics()
        if path == "/v1/snapshots":
            if method == "GET":
                return self._list()
            if method == "POST":
                return self._ingest()
            raise ApiError(405, f"{method} not supported here")
        if path.startswith("/v1/snapshots/"):
            rest = path.removeprefix("/v1/snapshots/")
            parts = rest.split("/")
            if len(parts) == 1:
                if method == "GET":
                    return self._show(parts[0])
                if method == "DELETE":
                    return self._delete(parts[0])
                raise ApiError(405, f"{method} not supported here")
            if len(parts) == 2 and method == "POST":
                ref, action = parts
                if action == "verify":
                    return self._verify(ref, batch=False)
                if action == "verify-batch":
                    return self._verify(ref, batch=True)
                if action == "refresh":
                    return self._refresh(ref)
            raise ApiError(404, f"no route for {method} {path}")
        raise ApiError(404, f"no route for {method} {path}")

    # -- endpoints -------------------------------------------------------

    def _healthz(self) -> int:
        registry = self.server.registry
        uptime = round(time.time() - self.server.started, 3)
        self._reply(
            200,
            {
                "status": "ok",
                "uptime_seconds": uptime,
                "requests": self.server.requests_served,
                "cache": registry.cache.stats(),
            },
        )
        return 200

    def _metrics(self) -> int:
        self._reply_text(
            200,
            to_prometheus(obs.metrics()),
            "text/plain; version=0.0.4",
        )
        return 200

    def _list(self) -> int:
        snaps = self.server.registry.list(self._tenant())
        self._reply(200, {"snapshots": [s.to_json() for s in snaps]})
        return 200

    def _ingest(self) -> int:
        tenant = self._tenant()
        texts, name = parse_snapshot_body(
            self._read_body(),
            local_dir_root=self.server.local_dir_root,
        )
        snap = self.server.registry.ingest(tenant, texts, name=name)
        self._reply(201, {"snapshot": snap.to_json()})
        return 201

    def _show(self, ref: str) -> int:
        snap = self.server.registry.resolve(self._tenant(), ref)
        self._reply(200, {"snapshot": snap.to_json()})
        return 200

    def _delete(self, ref: str) -> int:
        registry = self.server.registry
        snap = registry.resolve(self._tenant(), ref)
        registry.delete(snap)
        self._reply(200, {"deleted": snap.snapshot_id})
        return 200

    def _refresh(self, ref: str) -> int:
        run_id = new_run_id()
        set_run_id(run_id, thread_only=True)
        registry = self.server.registry
        snap = registry.resolve(self._tenant(), ref)
        texts, _ = parse_snapshot_body(
            self._read_body(),
            local_dir_root=self.server.local_dir_root,
        )
        snap, changes = registry.refresh(snap, texts)
        self._reply(
            200,
            {
                "run_id": run_id,
                "snapshot": snap.to_json(),
                "changes": changes,
            },
            run_id=run_id,
        )
        return 200

    def _verify(self, ref: str, batch: bool) -> int:
        run_id = new_run_id()
        set_run_id(run_id, thread_only=True)
        started = time.time()
        registry = self.server.registry
        snap = registry.resolve(self._tenant(), ref)
        queries = parse_queries(self._read_body(), batch=batch)
        results, stats = registry.verify(snap, queries)
        record = build_record(
            "serve.verify" if not batch else "serve.verify-batch",
            argv=[self.path],
            run_id=run_id,
            results=results,
            started=started,
            config_hash=snap.config_hash,
            extra={
                "tenant": snap.tenant,
                "snapshot": snap.snapshot_id,
                "snapshot_name": snap.name,
                "encoding_cache": stats,
            },
        )
        self.server.record_run(record)
        doc = {
            "run_id": run_id,
            "snapshot": snap.snapshot_id,
            "stats": dict(stats, seconds=round(time.time() - started, 6)),
            "results": [result_to_json(r) for r in results],
        }
        if not batch:
            doc["result"] = doc["results"][0]
        self._reply(200, doc, run_id=run_id)
        return 200


def make_server(
    host: str,
    port: int,
    registry: SnapshotRegistry,
    ledger_path: Optional[str] = None,
    local_dir_root: Optional[str] = None,
) -> ReproServer:
    """Bind a :class:`ReproServer` (port 0 picks a free port)."""
    return ReproServer(
        (host, port),
        registry,
        ledger_path=ledger_path,
        local_dir_root=local_dir_root,
    )
