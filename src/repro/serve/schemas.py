"""JSON API schemas: request validation and response serialization.

Kept free of any HTTP machinery so both the daemon and the CLI share
one definition of a *query spec* — the flat JSON object (``{"property":
"reachability", "sources": [...], "dest_prefix": ...}``) accepted by
``repro verify-batch --spec``, ``repro diff --spec`` and the service's
``/verify`` / ``/verify-batch`` bodies.

Validation failures raise :class:`ApiError` carrying the HTTP status
the server should answer with; the CLI maps the same errors onto
``SystemExit`` messages.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core import BatchQuery, properties as P

__all__ = [
    "ApiError",
    "PROPERTY_CHOICES",
    "parse_queries",
    "parse_snapshot_body",
    "property_from_spec",
    "result_to_json",
    "validate_label",
]

PROPERTY_CHOICES = [
    "reachability",
    "isolation",
    "blackholes",
    "loops",
    "bounded-length",
    "waypoint",
    "prefix-leak",
]

#: Tenant and snapshot names become cache-key scopes and state-dir
#: path components, so the grammar is deliberately narrow.
_LABEL_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ApiError(Exception):
    """A request the API refuses, with the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def validate_label(kind: str, value: Any) -> str:
    """A tenant or snapshot name: short, path- and key-safe."""
    if not isinstance(value, str) or not _LABEL_RE.match(value):
        raise ApiError(
            400,
            f"invalid {kind} {value!r}: expected 1-64 characters of "
            "[A-Za-z0-9._-], starting with a letter or digit",
        )
    return value


def property_from_spec(kind: Optional[str], spec: Dict[str, Any]):
    """Build a property from a flat spec dict (CLI flags, JSON spec
    entries, and service request bodies all share this shape)."""
    sources = spec.get("sources")
    dest_prefix = spec.get("dest_prefix")
    dest_peer = spec.get("dest_peer")
    if kind == "reachability":
        return P.Reachability(
            sources=sources or "all",
            dest_prefix_text=dest_prefix,
            dest_peer=dest_peer,
        )
    if kind == "isolation":
        return P.Isolation(
            sources=sources or [],
            dest_prefix_text=dest_prefix,
            dest_peer=dest_peer,
        )
    if kind == "blackholes":
        return P.NoBlackHoles(
            allowed=spec.get("allowed", ()),
            dest_prefix_text=dest_prefix,
        )
    if kind == "loops":
        return P.NoForwardingLoops(dest_prefix_text=dest_prefix)
    if kind == "bounded-length":
        return P.BoundedPathLength(
            sources=sources or "all",
            bound=spec.get("bound", 4),
            dest_prefix_text=dest_prefix,
            dest_peer=dest_peer,
        )
    if kind == "waypoint":
        sources = sources or []
        if len(sources) != 1:
            raise ApiError(400, "waypoint needs exactly one sources router")
        return P.Waypointing(
            source=sources[0],
            waypoints=spec.get("waypoints", []),
            dest_prefix_text=dest_prefix,
            dest_peer=dest_peer,
        )
    if kind == "prefix-leak":
        return P.NoPrefixLeak(
            max_length=spec.get("max_leak_length", 24),
            dest_prefix_text=dest_prefix,
        )
    raise ApiError(
        400,
        f"unknown property {kind!r} "
        f"(choose from {', '.join(PROPERTY_CHOICES)})",
    )


def query_from_spec(spec: Any, index: int = 0) -> BatchQuery:
    """One :class:`BatchQuery` from one spec entry."""
    if not isinstance(spec, dict):
        raise ApiError(
            400,
            f"query {index}: expected an object, "
            f"got {type(spec).__name__}",
        )
    announced = spec.get("announced_by", [])
    if not isinstance(announced, list):
        raise ApiError(400, f"query {index}: announced_by must be a list")
    try:
        prop = property_from_spec(spec.get("property"), spec)
        max_failures = spec.get("max_failures")
        if max_failures is not None and (
            not isinstance(max_failures, int) or max_failures < 0
        ):
            raise ApiError(
                400,
                f"query {index}: max_failures must be "
                "a non-negative integer",
            )
        return BatchQuery(
            prop=prop,
            max_failures=max_failures,
            assumptions=tuple(P.announces(peer) for peer in announced),
            label=spec.get("label"),
        )
    except ApiError:
        raise
    except (TypeError, ValueError) as exc:
        raise ApiError(400, f"query {index}: {exc}") from exc


def parse_queries(doc: Any, batch: bool) -> List[BatchQuery]:
    """Queries from a ``/verify`` (one spec object) or ``/verify-batch``
    (``{"queries": [spec, ...]}``) request body."""
    if not isinstance(doc, dict):
        raise ApiError(400, "request body must be a JSON object")
    if not batch:
        return [query_from_spec(doc)]
    entries = doc.get("queries")
    if not isinstance(entries, list) or not entries:
        raise ApiError(
            400,
            'verify-batch body needs a non-empty "queries" list',
        )
    return [query_from_spec(entry, i) for i, entry in enumerate(entries)]


def parse_snapshot_body(
    doc: Any,
    local_dir_root: Optional[str] = None,
) -> Tuple[Dict[str, str], Optional[str]]:
    """``(config texts, optional snapshot name)`` from an ingest or
    refresh body: inline ``{"configs": {filename: text}}`` or a
    server-local ``{"directory": path}``.

    Directory mode is a server-side opt-in: it reads files the *daemon*
    can see, so an unrestricted form hands any HTTP client a
    local-file-disclosure primitive (parse errors and verify output
    echo config contents).  ``local_dir_root`` — ``repro serve
    --allow-local-dirs ROOT`` — enables it and confines every request
    to paths under ROOT after symlink resolution; without it the mode
    answers 403."""
    if not isinstance(doc, dict):
        raise ApiError(400, "request body must be a JSON object")
    name = doc.get("name")
    if name is not None:
        name = validate_label("snapshot name", name)
    configs = doc.get("configs")
    directory = doc.get("directory")
    if (configs is None) == (directory is None):
        raise ApiError(
            400,
            'ingest body needs exactly one of "configs" '
            '(inline texts) or "directory" (server-local '
            "path)",
        )
    if configs is not None:
        if (
            not isinstance(configs, dict)
            or not configs
            or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in configs.items()
            )
        ):
            raise ApiError(
                400,
                '"configs" must be a non-empty object of '
                "filename -> config text",
            )
        return dict(configs), name
    if not isinstance(directory, str) or not directory:
        raise ApiError(400, '"directory" must be a non-empty path string')
    if local_dir_root is None:
        raise ApiError(
            403,
            "directory ingest is disabled; start the server with "
            "--allow-local-dirs ROOT to enable it",
        )
    root = Path(local_dir_root).resolve()
    requested = Path(directory)
    if not requested.is_absolute():
        requested = root / requested
    base = requested.resolve()
    if base != root and root not in base.parents:
        raise ApiError(
            403,
            f"directory {directory!r} is outside the allowed root",
        )
    if not base.is_dir():
        raise ApiError(400, f"not a directory: {directory}")
    suffixes = (".cfg", ".conf", ".txt")
    texts = {}
    for entry in sorted(base.iterdir()):
        if entry.suffix.lower() not in suffixes or not entry.is_file():
            continue
        # A symlink inside the root must not read a file outside it.
        if root not in entry.resolve().parents:
            continue
        texts[entry.name] = entry.read_text()
    if not texts:
        raise ApiError(400, f"no config files in {directory}")
    return texts, name


def result_to_json(result) -> Dict[str, Any]:
    """Wire form of one :class:`VerificationResult`."""
    doc: Dict[str, Any] = {
        "property": result.property_name,
        "holds": result.holds,
        "cached": result.cached,
        "message": result.message,
        "seconds": round(result.seconds, 6),
        "encode_seconds": round(result.encode_seconds, 6),
        "encode_shared_seconds": round(result.encode_shared_seconds, 6),
        "encode_query_seconds": round(result.encode_query_seconds, 6),
        "solve_seconds": round(result.solve_seconds, 6),
        "num_variables": result.num_variables,
        "num_clauses": result.num_clauses,
        "conflicts": result.conflicts,
    }
    if result.counterexample is not None:
        doc["counterexample"] = result.counterexample.summary()
    return doc
