"""Parser for the Cisco-IOS-like configuration language.

Line-oriented and stateful like real IOS configs: top-level commands open
blocks (``interface``, ``router bgp``, ``route-map`` ...) whose sub-commands
apply until the next top-level command.  Unknown lines raise
:class:`ConfigSyntaxError` with the offending line number — silently
skipping directives is how configuration checkers get false negatives.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net import ip as iplib
from repro.net.device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    OspfConfig,
    StaticRoute,
)
from repro.net.policy import (
    Acl,
    AclRule,
    CommunityList,
    DENY,
    PERMIT,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)

__all__ = ["parse_config", "ConfigSyntaxError"]

_ACL_PROTOCOLS = {"ip": None, "tcp": 6, "udp": 17, "icmp": 1}


class ConfigSyntaxError(ValueError):
    """A configuration line the parser does not understand."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line.strip()!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


class _Parser:
    def __init__(self, text: str, source: str = "") -> None:
        self.config = DeviceConfig(hostname="unnamed", source_file=source)
        self.lines = text.splitlines()
        self.lineno = 0
        # Current open block: one of None, ("interface", Interface),
        # ("ospf",), ("bgp",), ("acl", name, rules),
        # ("route-map", name, clause-dict).
        self.block: Optional[tuple] = None

    def run(self) -> DeviceConfig:
        meaningful = 0
        for raw in self.lines:
            self.lineno += 1
            line = raw.rstrip()
            stripped = line.strip()
            if not stripped or stripped.startswith("!"):
                continue
            meaningful += 1
            indented = line[:1] in (" ", "\t")
            tokens = stripped.split()
            if indented and self.block is not None:
                self._sub_command(tokens, line)
            else:
                self._top_command(tokens, line)
        self._close_block()
        self.config.config_lines = meaningful
        return self.config

    # ------------------------------------------------------------------
    # Top-level commands
    # ------------------------------------------------------------------

    def _top_command(self, tokens: List[str], line: str) -> None:
        self._close_block()
        head = tokens[0]
        if head == "hostname":
            self.config.hostname = tokens[1]
            self.config.hostname_line = self.lineno
        elif head == "interface":
            iface = Interface(name=tokens[1], line=self.lineno)
            self.config.interfaces[iface.name] = iface
            self.block = ("interface", iface)
        elif head == "router" and tokens[1] == "ospf":
            self.config.ospf = self.config.ospf or OspfConfig(
                process_id=int(tokens[2]), line=self.lineno)
            self.block = ("ospf",)
        elif head == "router" and tokens[1] == "bgp":
            self.config.bgp = self.config.bgp or BgpConfig(
                asn=int(tokens[2]), line=self.lineno)
            self.block = ("bgp",)
        elif head == "ip" and tokens[1] == "route":
            self._parse_static(tokens)
        elif head == "ip" and tokens[1] == "prefix-list":
            self._parse_prefix_list(tokens, line)
        elif head == "ip" and tokens[1] == "community-list":
            self._parse_community_list(tokens, line)
        elif head == "ip" and tokens[1] == "access-list":
            # ip access-list extended NAME
            if tokens[2] != "extended":
                raise ConfigSyntaxError(self.lineno, line,
                                        "only extended named ACLs supported")
            self.block = ("acl", tokens[3], [])
        elif head == "access-list":
            self._parse_numbered_acl(tokens, line)
        elif head == "route-map":
            name, action, seq = tokens[1], tokens[2], int(tokens[3])
            if action not in (PERMIT, DENY):
                raise ConfigSyntaxError(self.lineno, line,
                                        "route-map action must be permit/deny")
            self.block = ("route-map", name,
                          {"seq": seq, "action": action,
                           "line": self.lineno})
        else:
            raise ConfigSyntaxError(self.lineno, line, "unknown command")

    # ------------------------------------------------------------------
    # Sub-commands
    # ------------------------------------------------------------------

    def _sub_command(self, tokens: List[str], line: str) -> None:
        kind = self.block[0]
        if kind == "interface":
            self._interface_sub(self.block[1], tokens, line)
        elif kind == "ospf":
            self._ospf_sub(tokens, line)
        elif kind == "bgp":
            self._bgp_sub(tokens, line)
        elif kind == "acl":
            self.block[2].append(self._parse_acl_rule(tokens, line))
        elif kind == "route-map":
            self._route_map_sub(self.block[2], tokens, line)
        else:  # pragma: no cover - defensive
            raise ConfigSyntaxError(self.lineno, line, "orphan sub-command")

    def _interface_sub(self, iface: Interface, tokens: List[str],
                       line: str) -> None:
        if tokens[:2] == ["ip", "address"]:
            iface.address = iplib.parse_ip(tokens[2])
            iface.prefix_length = iplib.mask_to_length(
                iplib.parse_ip(tokens[3]))
        elif tokens[:3] == ["ip", "ospf", "cost"]:
            iface.ospf_cost = int(tokens[3])
        elif tokens[:2] == ["ip", "access-group"]:
            if tokens[3] == "in":
                iface.acl_in = tokens[2]
                iface.acl_in_line = self.lineno
            elif tokens[3] == "out":
                iface.acl_out = tokens[2]
                iface.acl_out_line = self.lineno
            else:
                raise ConfigSyntaxError(self.lineno, line,
                                        "access-group direction")
        elif tokens[0] == "description":
            if "management" in " ".join(tokens[1:]).lower():
                iface.is_management = True
        elif tokens[0] == "shutdown":
            iface.shutdown = True
        else:
            raise ConfigSyntaxError(self.lineno, line,
                                    "unknown interface sub-command")

    def _ospf_sub(self, tokens: List[str], line: str) -> None:
        ospf = self.config.ospf
        if tokens[0] == "router-id":
            ospf.router_id = iplib.parse_ip(tokens[1])
            ospf.router_id_line = self.lineno
        elif tokens[0] == "maximum-paths":
            ospf.multipath = int(tokens[1]) > 1
        elif tokens[0] == "redistribute":
            proto = tokens[1]
            metric = 0
            if "metric" in tokens:
                metric = int(tokens[tokens.index("metric") + 1])
            ospf.redistribute[proto] = metric
        elif tokens[0] == "network":
            network = iplib.parse_ip(tokens[1])
            length = iplib.wildcard_to_length(iplib.parse_ip(tokens[2]))
            if tokens[3] != "area":
                raise ConfigSyntaxError(self.lineno, line, "expected 'area'")
            ospf.networks.append((network, length, int(tokens[4])))
        else:
            raise ConfigSyntaxError(self.lineno, line,
                                    "unknown ospf sub-command")

    def _bgp_sub(self, tokens: List[str], line: str) -> None:
        bgp = self.config.bgp
        if tokens[:2] == ["bgp", "router-id"]:
            bgp.router_id = iplib.parse_ip(tokens[2])
            bgp.router_id_line = self.lineno
        elif tokens[:3] == ["bgp", "bestpath", "med"]:
            if tokens[3] not in ("always", "same-as", "ignore"):
                raise ConfigSyntaxError(self.lineno, line, "bad med mode")
            bgp.med_mode = tokens[3]
        elif tokens[0] == "maximum-paths":
            bgp.multipath = int(tokens[1]) > 1
        elif tokens[0] == "network":
            network = iplib.parse_ip(tokens[1])
            if len(tokens) >= 4 and tokens[2] == "mask":
                length = iplib.mask_to_length(iplib.parse_ip(tokens[3]))
            else:
                length = 24  # classful-ish default for short form
            bgp.networks.append((network, length))
        elif tokens[0] == "aggregate-address":
            network = iplib.parse_ip(tokens[1])
            length = iplib.mask_to_length(iplib.parse_ip(tokens[2]))
            bgp.aggregates.append((network, length))
        elif tokens[0] == "redistribute":
            proto = tokens[1]
            metric = 0
            if "metric" in tokens:
                metric = int(tokens[tokens.index("metric") + 1])
            bgp.redistribute[proto] = metric
        elif tokens[0] == "neighbor":
            self._bgp_neighbor_sub(bgp, tokens, line)
        else:
            raise ConfigSyntaxError(self.lineno, line,
                                    "unknown bgp sub-command")

    def _bgp_neighbor_sub(self, bgp: BgpConfig, tokens: List[str],
                          line: str) -> None:
        peer_ip = iplib.parse_ip(tokens[1])
        nbr = bgp.neighbor(peer_ip)
        command = tokens[2]
        if command == "remote-as":
            if nbr is None:
                bgp.neighbors.append(BgpNeighbor(peer_ip=peer_ip,
                                                 remote_as=int(tokens[3]),
                                                 line=self.lineno))
            else:
                nbr.remote_as = int(tokens[3])
            return
        if nbr is None:
            raise ConfigSyntaxError(self.lineno, line,
                                    "neighbor needs remote-as first")
        if command == "route-map":
            if tokens[4] == "in":
                nbr.route_map_in = tokens[3]
                nbr.route_map_in_line = self.lineno
            elif tokens[4] == "out":
                nbr.route_map_out = tokens[3]
                nbr.route_map_out_line = self.lineno
            else:
                raise ConfigSyntaxError(self.lineno, line,
                                        "route-map direction")
        elif command == "route-reflector-client":
            nbr.route_reflector_client = True
        elif command == "description":
            nbr.description = " ".join(tokens[3:])
        else:
            raise ConfigSyntaxError(self.lineno, line,
                                    "unknown neighbor sub-command")

    def _route_map_sub(self, clause: dict, tokens: List[str],
                       line: str) -> None:
        if tokens[:4] == ["match", "ip", "address", "prefix-list"]:
            clause["match_prefix_list"] = tokens[4]
        elif tokens[:2] == ["match", "community"]:
            clause["match_community_list"] = tokens[2]
        elif tokens[:2] == ["set", "local-preference"]:
            clause["set_local_pref"] = int(tokens[2])
        elif tokens[:2] == ["set", "metric"]:
            clause["set_metric"] = int(tokens[2])
        elif tokens[:2] == ["set", "med"]:
            clause["set_med"] = int(tokens[2])
        elif tokens[:2] == ["set", "community"]:
            comms = [t for t in tokens[2:] if t != "additive"]
            clause["add_communities"] = tuple(comms)
        elif tokens[:2] == ["set", "comm-list-delete"]:
            clause["delete_communities"] = tuple(tokens[2:])
        else:
            raise ConfigSyntaxError(self.lineno, line,
                                    "unknown route-map sub-command")

    # ------------------------------------------------------------------
    # One-line directives
    # ------------------------------------------------------------------

    def _parse_static(self, tokens: List[str]) -> None:
        network = iplib.parse_ip(tokens[2])
        length = iplib.mask_to_length(iplib.parse_ip(tokens[3]))
        target = tokens[4]
        route = StaticRoute(network=network, length=length,
                            line=self.lineno)
        if target.lower() == "null0":
            route.drop = True
        elif target[0].isdigit():
            route.next_hop_ip = iplib.parse_ip(target)
        else:
            route.interface = target
        self.config.static_routes.append(route)

    def _parse_prefix_list(self, tokens: List[str], line: str) -> None:
        # ip prefix-list NAME [seq N] permit|deny P/L [ge N] [le N]
        rest = tokens[2:]
        name = rest[0]
        rest = rest[1:]
        if rest[0] == "seq":
            rest = rest[2:]
        action = rest[0]
        if action not in (PERMIT, DENY):
            raise ConfigSyntaxError(self.lineno, line,
                                    "prefix-list action must be permit/deny")
        network, length = iplib.parse_prefix(rest[1])
        ge = le = None
        rest = rest[2:]
        while rest:
            if rest[0] == "ge":
                ge = int(rest[1])
            elif rest[0] == "le":
                le = int(rest[1])
            else:
                raise ConfigSyntaxError(self.lineno, line,
                                        "unknown prefix-list modifier")
            rest = rest[2:]
        entry = PrefixListEntry(action=action, network=network,
                                length=length, ge=ge, le=le,
                                line=self.lineno)
        existing = self.config.prefix_lists.get(name)
        entries = (existing.entries if existing else ()) + (entry,)
        first_line = existing.line if existing else self.lineno
        self.config.prefix_lists[name] = PrefixList(name=name,
                                                    entries=entries,
                                                    line=first_line)

    def _parse_community_list(self, tokens: List[str], line: str) -> None:
        # ip community-list standard NAME permit|deny COMM...
        if tokens[2] != "standard":
            raise ConfigSyntaxError(self.lineno, line,
                                    "only standard community-lists supported")
        name, action = tokens[3], tokens[4]
        self.config.community_lists[name] = CommunityList(
            name=name, action=action, communities=tuple(tokens[5:]),
            line=self.lineno)

    def _parse_numbered_acl(self, tokens: List[str], line: str) -> None:
        # access-list NUM permit|deny ip DST WILDCARD   (paper's form: the
        # single address matches the packet's destination)
        name = tokens[1]
        rule_tokens = tokens[2:]
        rule = self._parse_acl_rule(rule_tokens, line)
        existing = self.config.acls.get(name)
        rules = (existing.rules if existing else ()) + (rule,)
        first_line = existing.line if existing else self.lineno
        self.config.acls[name] = Acl(name=name, rules=rules,
                                     line=first_line)

    def _parse_acl_rule(self, tokens: List[str], line: str) -> AclRule:
        action = tokens[0]
        if action not in (PERMIT, DENY):
            raise ConfigSyntaxError(self.lineno, line,
                                    "ACL action must be permit/deny")
        proto_name = tokens[1]
        if proto_name not in _ACL_PROTOCOLS:
            raise ConfigSyntaxError(self.lineno, line,
                                    f"unknown protocol {proto_name!r}")
        protocol = _ACL_PROTOCOLS[proto_name]
        rest = tokens[2:]
        # Two accepted shapes: "SRC DST [ports]" (full IOS form) and the
        # paper's short form "DST [ports]" with source implied any.  After
        # consuming one address spec, a following address spec means the
        # first one was the source.
        first, rest = self._parse_acl_address(rest, line)
        if rest and (rest[0] == "any" or rest[0][0].isdigit()):
            src = first
            dst, rest = self._parse_acl_address(rest, line)
        else:
            src = (None, 0)
            dst = first
        port_low = port_high = None
        if rest:
            if rest[0] == "eq":
                port_low = port_high = int(rest[1])
                rest = rest[2:]
            elif rest[0] == "range":
                port_low, port_high = int(rest[1]), int(rest[2])
                rest = rest[3:]
        if rest:
            raise ConfigSyntaxError(self.lineno, line,
                                    "trailing tokens in ACL rule")
        dst_network = dst[0] if dst[0] is not None else 0
        return AclRule(
            action=action,
            dst_network=dst_network,
            dst_length=dst[1],
            src_network=src[0],
            src_length=src[1],
            protocol=protocol,
            dst_port_low=port_low,
            dst_port_high=port_high,
            line=self.lineno,
        )

    def _parse_acl_address(self, rest: List[str], line: str):
        if not rest:
            raise ConfigSyntaxError(self.lineno, line,
                                    "missing address in ACL rule")
        if rest[0] == "any":
            return (None, 0), rest[1:]
        if len(rest) < 2:
            raise ConfigSyntaxError(self.lineno, line,
                                    "missing wildcard in ACL rule")
        network = iplib.parse_ip(rest[0])
        length = iplib.wildcard_to_length(iplib.parse_ip(rest[1]))
        return (iplib.network_of(network, length), length), rest[2:]

    # ------------------------------------------------------------------

    def _close_block(self) -> None:
        if self.block is None:
            return
        kind = self.block[0]
        if kind == "acl":
            _, name, rules = self.block
            existing = self.config.acls.get(name)
            merged = (existing.rules if existing else ()) + tuple(rules)
            first = rules[0].line if rules else self.lineno
            first_line = existing.line if existing else first
            self.config.acls[name] = Acl(name=name, rules=merged,
                                         line=first_line)
        elif kind == "route-map":
            _, name, fields = self.block
            clause = RouteMapClause(
                seq=fields["seq"],
                action=fields["action"],
                match_prefix_list=fields.get("match_prefix_list"),
                match_community_list=fields.get("match_community_list"),
                set_local_pref=fields.get("set_local_pref"),
                set_metric=fields.get("set_metric"),
                set_med=fields.get("set_med"),
                add_communities=fields.get("add_communities", ()),
                delete_communities=fields.get("delete_communities", ()),
                line=fields.get("line"),
            )
            existing = self.config.route_maps.get(name)
            clauses = (existing.clauses if existing else ()) + (clause,)
            first_line = existing.line if existing else clause.line
            self.config.route_maps[name] = RouteMap(name=name,
                                                    clauses=clauses,
                                                    line=first_line)
        self.block = None


def parse_config(text: str, source: str = "") -> DeviceConfig:
    """Parse one device's configuration text.

    ``source`` (usually a file name) is recorded on the returned config so
    diagnostics can carry ``file:line`` spans.
    """
    return _Parser(text, source=source).run()
