"""Configuration language: Cisco-IOS-like parser and writer."""

from .parser import ConfigSyntaxError, parse_config
from .writer import write_config

__all__ = ["parse_config", "write_config", "ConfigSyntaxError"]
