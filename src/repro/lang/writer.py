"""Serialize a :class:`DeviceConfig` back to Cisco-IOS-like config text.

The writer and parser are inverses: ``parse_config(write_config(c))``
reproduces ``c`` (round-trip property tests enforce this).  The synthetic
generators use the writer to materialize benchmark networks as config files,
which also provides the lines-of-configuration metric used by Figure 7.
"""

from __future__ import annotations

from typing import List

from repro.net import ip as iplib
from repro.net.device import DeviceConfig, Interface
from repro.net.policy import Acl, AclRule, PrefixList, RouteMap

__all__ = ["write_config"]

_PROTO_NAMES = {None: "ip", 6: "tcp", 17: "udp", 1: "icmp"}


def write_config(config: DeviceConfig) -> str:
    """Render the device as config text."""
    out: List[str] = [f"hostname {config.hostname}", "!"]
    for name in sorted(config.interfaces):
        _write_interface(out, config.interfaces[name])
    if config.ospf:
        _write_ospf(out, config)
    if config.bgp:
        _write_bgp(out, config)
    for route in config.static_routes:
        _write_static(out, route)
    if config.static_routes:
        out.append("!")
    for name in sorted(config.prefix_lists):
        _write_prefix_list(out, config.prefix_lists[name])
    for name in sorted(config.community_lists):
        clist = config.community_lists[name]
        comms = " ".join(clist.communities)
        out.append(f"ip community-list standard {clist.name} "
                   f"{clist.action} {comms}")
        out.append("!")
    for name in sorted(config.acls):
        _write_acl(out, config.acls[name])
    for name in sorted(config.route_maps):
        _write_route_map(out, config.route_maps[name])
    return "\n".join(out) + "\n"


def _write_interface(out: List[str], iface: Interface) -> None:
    out.append(f"interface {iface.name}")
    if iface.address:
        mask = iplib.format_ip(iplib.length_to_mask(iface.prefix_length))
        out.append(f" ip address {iplib.format_ip(iface.address)} {mask}")
    if iface.is_management:
        out.append(" description management")
    if iface.ospf_cost != 1:
        out.append(f" ip ospf cost {iface.ospf_cost}")
    if iface.acl_in:
        out.append(f" ip access-group {iface.acl_in} in")
    if iface.acl_out:
        out.append(f" ip access-group {iface.acl_out} out")
    if iface.shutdown:
        out.append(" shutdown")
    out.append("!")


def _write_ospf(out: List[str], config: DeviceConfig) -> None:
    ospf = config.ospf
    out.append(f"router ospf {ospf.process_id}")
    if ospf.router_id:
        out.append(f" router-id {iplib.format_ip(ospf.router_id)}")
    if ospf.multipath:
        out.append(" maximum-paths 16")
    for proto, metric in sorted(ospf.redistribute.items()):
        suffix = f" metric {metric}" if metric else ""
        out.append(f" redistribute {proto}{suffix}")
    for net, length, area in ospf.networks:
        wildcard = iplib.length_to_mask(length) ^ iplib.MAX_IP
        out.append(f" network {iplib.format_ip(net)} "
                   f"{iplib.format_ip(wildcard)} area {area}")
    out.append("!")


def _write_bgp(out: List[str], config: DeviceConfig) -> None:
    bgp = config.bgp
    out.append(f"router bgp {bgp.asn}")
    if bgp.router_id:
        out.append(f" bgp router-id {iplib.format_ip(bgp.router_id)}")
    if bgp.med_mode != "always":
        out.append(f" bgp bestpath med {bgp.med_mode}")
    if bgp.multipath:
        out.append(" maximum-paths 16")
    for net, length in bgp.networks:
        mask = iplib.format_ip(iplib.length_to_mask(length))
        out.append(f" network {iplib.format_ip(net)} mask {mask}")
    for net, length in bgp.aggregates:
        mask = iplib.format_ip(iplib.length_to_mask(length))
        out.append(f" aggregate-address {iplib.format_ip(net)} "
                   f"{mask} summary-only")
    for proto, metric in sorted(bgp.redistribute.items()):
        suffix = f" metric {metric}" if metric else ""
        out.append(f" redistribute {proto}{suffix}")
    for nbr in bgp.neighbors:
        peer = iplib.format_ip(nbr.peer_ip)
        out.append(f" neighbor {peer} remote-as {nbr.remote_as}")
        if nbr.description:
            out.append(f" neighbor {peer} description {nbr.description}")
        if nbr.route_map_in:
            out.append(f" neighbor {peer} route-map {nbr.route_map_in} in")
        if nbr.route_map_out:
            out.append(f" neighbor {peer} route-map {nbr.route_map_out} out")
        if nbr.route_reflector_client:
            out.append(f" neighbor {peer} route-reflector-client")
    out.append("!")


def _write_static(out: List[str], route) -> None:
    net = iplib.format_ip(route.network)
    mask = iplib.format_ip(iplib.length_to_mask(route.length))
    if route.drop:
        target = "Null0"
    elif route.next_hop_ip is not None:
        target = iplib.format_ip(route.next_hop_ip)
    else:
        target = route.interface or "Null0"
    out.append(f"ip route {net} {mask} {target}")


def _write_prefix_list(out: List[str], plist: PrefixList) -> None:
    for i, entry in enumerate(plist.entries):
        seq = (i + 1) * 5
        line = (f"ip prefix-list {plist.name} seq {seq} {entry.action} "
                f"{iplib.format_prefix(entry.network, entry.length)}")
        if entry.ge is not None:
            line += f" ge {entry.ge}"
        if entry.le is not None:
            line += f" le {entry.le}"
        out.append(line)
    out.append("!")


def _write_acl(out: List[str], acl: Acl) -> None:
    out.append(f"ip access-list extended {acl.name}")
    for rule in acl.rules:
        out.append(" " + _format_acl_rule(rule))
    out.append("!")


def _format_acl_rule(rule: AclRule) -> str:
    proto = _PROTO_NAMES.get(rule.protocol, str(rule.protocol))
    if rule.src_network is None:
        src = "any"
    else:
        wildcard = iplib.length_to_mask(rule.src_length) ^ iplib.MAX_IP
        src = (f"{iplib.format_ip(rule.src_network)} "
               f"{iplib.format_ip(wildcard)}")
    if rule.dst_length == 0 and rule.dst_network == 0:
        dst = "any"
    else:
        wildcard = iplib.length_to_mask(rule.dst_length) ^ iplib.MAX_IP
        dst = (f"{iplib.format_ip(rule.dst_network)} "
               f"{iplib.format_ip(wildcard)}")
    line = f"{rule.action} {proto} {src} {dst}"
    if rule.dst_port_low is not None:
        if (rule.dst_port_high is None
                or rule.dst_port_high == rule.dst_port_low):
            line += f" eq {rule.dst_port_low}"
        else:
            line += f" range {rule.dst_port_low} {rule.dst_port_high}"
    return line


def _write_route_map(out: List[str], rmap: RouteMap) -> None:
    for clause in sorted(rmap.clauses, key=lambda c: c.seq):
        out.append(f"route-map {rmap.name} {clause.action} {clause.seq}")
        if clause.match_prefix_list:
            out.append(f" match ip address prefix-list "
                       f"{clause.match_prefix_list}")
        if clause.match_community_list:
            out.append(f" match community {clause.match_community_list}")
        if clause.set_local_pref is not None:
            out.append(f" set local-preference {clause.set_local_pref}")
        if clause.set_metric is not None:
            out.append(f" set metric {clause.set_metric}")
        if clause.set_med is not None:
            out.append(f" set med {clause.set_med}")
        if clause.add_communities:
            comms = " ".join(clause.add_communities)
            out.append(f" set community {comms} additive")
        if clause.delete_communities:
            comms = " ".join(clause.delete_communities)
            out.append(f" set comm-list-delete {comms}")
    out.append("!")
