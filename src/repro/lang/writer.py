"""Serialize a :class:`DeviceConfig` back to Cisco-IOS-like config text.

The writer and parser are inverses: ``parse_config(write_config(c))``
reproduces ``c`` (round-trip property tests enforce this).  The synthetic
generators use the writer to materialize benchmark networks as config files,
which also provides the lines-of-configuration metric used by Figure 7.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.net import ip as iplib
from repro.net.device import DeviceConfig, Interface
from repro.net.policy import Acl, AclRule, PrefixList, RouteMap

__all__ = ["write_config", "write_fragments"]

_PROTO_NAMES = {None: "ip", 6: "tcp", 17: "udp", 1: "icmp"}


def write_config(config: DeviceConfig) -> str:
    """Render the device as config text."""
    out: List[str] = [f"hostname {config.hostname}", "!"]
    for name in sorted(config.interfaces):
        _write_interface(out, config.interfaces[name])
    if config.ospf:
        _write_ospf(out, config)
    if config.bgp:
        _write_bgp(out, config)
    for route in config.static_routes:
        _write_static(out, route)
    if config.static_routes:
        out.append("!")
    for name in sorted(config.prefix_lists):
        _write_prefix_list(out, config.prefix_lists[name])
    for name in sorted(config.community_lists):
        out.extend(_community_list_lines(config.community_lists[name]))
        out.append("!")
    for name in sorted(config.acls):
        _write_acl(out, config.acls[name])
    for name in sorted(config.route_maps):
        _write_route_map(out, config.route_maps[name])
    return "\n".join(out) + "\n"


def _write_interface(out: List[str], iface: Interface) -> None:
    out.append(f"interface {iface.name}")
    if iface.address:
        mask = iplib.format_ip(iplib.length_to_mask(iface.prefix_length))
        out.append(f" ip address {iplib.format_ip(iface.address)} {mask}")
    if iface.is_management:
        out.append(" description management")
    if iface.ospf_cost != 1:
        out.append(f" ip ospf cost {iface.ospf_cost}")
    if iface.acl_in:
        out.append(f" ip access-group {iface.acl_in} in")
    if iface.acl_out:
        out.append(f" ip access-group {iface.acl_out} out")
    if iface.shutdown:
        out.append(" shutdown")
    out.append("!")


def _write_ospf(out: List[str], config: DeviceConfig) -> None:
    ospf = config.ospf
    out.append(f"router ospf {ospf.process_id}")
    if ospf.router_id:
        out.append(f" router-id {iplib.format_ip(ospf.router_id)}")
    if ospf.multipath:
        out.append(" maximum-paths 16")
    for proto, metric in sorted(ospf.redistribute.items()):
        suffix = f" metric {metric}" if metric else ""
        out.append(f" redistribute {proto}{suffix}")
    for net, length, area in ospf.networks:
        wildcard = iplib.length_to_mask(length) ^ iplib.MAX_IP
        out.append(f" network {iplib.format_ip(net)} "
                   f"{iplib.format_ip(wildcard)} area {area}")
    out.append("!")


def _bgp_base_lines(config: DeviceConfig) -> List[str]:
    bgp = config.bgp
    lines = [f"router bgp {bgp.asn}"]
    if bgp.router_id:
        lines.append(f" bgp router-id {iplib.format_ip(bgp.router_id)}")
    if bgp.med_mode != "always":
        lines.append(f" bgp bestpath med {bgp.med_mode}")
    if bgp.multipath:
        lines.append(" maximum-paths 16")
    return lines


def _bgp_network_line(net: int, length: int) -> str:
    mask = iplib.format_ip(iplib.length_to_mask(length))
    return f" network {iplib.format_ip(net)} mask {mask}"


def _bgp_aggregate_line(net: int, length: int) -> str:
    mask = iplib.format_ip(iplib.length_to_mask(length))
    return (f" aggregate-address {iplib.format_ip(net)} "
            f"{mask} summary-only")


def _bgp_redistribute_lines(config: DeviceConfig) -> List[str]:
    lines: List[str] = []
    for proto, metric in sorted(config.bgp.redistribute.items()):
        suffix = f" metric {metric}" if metric else ""
        lines.append(f" redistribute {proto}{suffix}")
    return lines


def _bgp_neighbor_lines(nbr) -> List[str]:
    peer = iplib.format_ip(nbr.peer_ip)
    lines = [f" neighbor {peer} remote-as {nbr.remote_as}"]
    if nbr.description:
        lines.append(f" neighbor {peer} description {nbr.description}")
    if nbr.route_map_in:
        lines.append(f" neighbor {peer} route-map {nbr.route_map_in} in")
    if nbr.route_map_out:
        lines.append(f" neighbor {peer} route-map {nbr.route_map_out} out")
    if nbr.route_reflector_client:
        lines.append(f" neighbor {peer} route-reflector-client")
    return lines


def _write_bgp(out: List[str], config: DeviceConfig) -> None:
    bgp = config.bgp
    out.extend(_bgp_base_lines(config))
    for net, length in bgp.networks:
        out.append(_bgp_network_line(net, length))
    for net, length in bgp.aggregates:
        out.append(_bgp_aggregate_line(net, length))
    out.extend(_bgp_redistribute_lines(config))
    for nbr in bgp.neighbors:
        out.extend(_bgp_neighbor_lines(nbr))
    out.append("!")


def _community_list_lines(clist) -> List[str]:
    comms = " ".join(clist.communities)
    return [f"ip community-list standard {clist.name} "
            f"{clist.action} {comms}"]


def _write_static(out: List[str], route) -> None:
    net = iplib.format_ip(route.network)
    mask = iplib.format_ip(iplib.length_to_mask(route.length))
    if route.drop:
        target = "Null0"
    elif route.next_hop_ip is not None:
        target = iplib.format_ip(route.next_hop_ip)
    else:
        target = route.interface or "Null0"
    out.append(f"ip route {net} {mask} {target}")


def _write_prefix_list(out: List[str], plist: PrefixList) -> None:
    for i, entry in enumerate(plist.entries):
        seq = (i + 1) * 5
        line = (f"ip prefix-list {plist.name} seq {seq} {entry.action} "
                f"{iplib.format_prefix(entry.network, entry.length)}")
        if entry.ge is not None:
            line += f" ge {entry.ge}"
        if entry.le is not None:
            line += f" le {entry.le}"
        out.append(line)
    out.append("!")


def _write_acl(out: List[str], acl: Acl) -> None:
    out.append(f"ip access-list extended {acl.name}")
    for rule in acl.rules:
        out.append(" " + _format_acl_rule(rule))
    out.append("!")


def _format_acl_rule(rule: AclRule) -> str:
    proto = _PROTO_NAMES.get(rule.protocol, str(rule.protocol))
    if rule.src_network is None:
        src = "any"
    else:
        wildcard = iplib.length_to_mask(rule.src_length) ^ iplib.MAX_IP
        src = (f"{iplib.format_ip(rule.src_network)} "
               f"{iplib.format_ip(wildcard)}")
    if rule.dst_length == 0 and rule.dst_network == 0:
        dst = "any"
    else:
        wildcard = iplib.length_to_mask(rule.dst_length) ^ iplib.MAX_IP
        dst = (f"{iplib.format_ip(rule.dst_network)} "
               f"{iplib.format_ip(wildcard)}")
    line = f"{rule.action} {proto} {src} {dst}"
    if rule.dst_port_low is not None:
        if (rule.dst_port_high is None
                or rule.dst_port_high == rule.dst_port_low):
            line += f" eq {rule.dst_port_low}"
        else:
            line += f" range {rule.dst_port_low} {rule.dst_port_high}"
    return line


def _route_map_clause_lines(map_name: str, clause) -> List[str]:
    lines = [f"route-map {map_name} {clause.action} {clause.seq}"]
    if clause.match_prefix_list:
        lines.append(f" match ip address prefix-list "
                     f"{clause.match_prefix_list}")
    if clause.match_community_list:
        lines.append(f" match community {clause.match_community_list}")
    if clause.set_local_pref is not None:
        lines.append(f" set local-preference {clause.set_local_pref}")
    if clause.set_metric is not None:
        lines.append(f" set metric {clause.set_metric}")
    if clause.set_med is not None:
        lines.append(f" set med {clause.set_med}")
    if clause.add_communities:
        comms = " ".join(clause.add_communities)
        lines.append(f" set community {comms} additive")
    if clause.delete_communities:
        comms = " ".join(clause.delete_communities)
        lines.append(f" set comm-list-delete {comms}")
    return lines


def _write_route_map(out: List[str], rmap: RouteMap) -> None:
    for clause in sorted(rmap.clauses, key=lambda c: c.seq):
        out.extend(_route_map_clause_lines(rmap.name, clause))
    out.append("!")


def write_fragments(config: DeviceConfig) -> List[Tuple[str, str]]:
    """Split the device into addressable canonical config fragments.

    Returns an ordered list of ``(fragment_id, canonical_text)`` pairs
    whose texts are rendered with exactly the same helpers as
    :func:`write_config`, so a fragment's text is invariant under
    comment/whitespace edits of the source file (the parser discards
    them) and changes iff the fragment's semantics-bearing lines change.

    Fragment ids are stable across renders of the same config:

    - ``meta`` — hostname
    - ``interface:<name>`` — one per interface (address, ACL bindings,
      cost, shutdown)
    - ``ospf`` — the whole OSPF stanza
    - ``bgp`` — BGP base config (ASN, router-id, MED mode, multipath)
      plus redistribution
    - ``bgp.network:<net/len>`` / ``bgp.aggregate:<net/len>`` — one per
      originated / aggregated prefix
    - ``bgp.neighbor:<ip>`` — one per BGP session (remote-as and
      route-map bindings)
    - ``static:<idx>`` — one per static route, position-stable
    - ``prefix-list:<name>`` / ``community-list:<name>`` /
      ``route-map:<name>`` — one per policy object
    - ``route-map:<name>:<seq>`` — one per route-map clause, so slices
      can include exactly the clauses that can process a relevant
      route (the whole-map fragment still covers clause order)
    - ``acl:<name>`` — ACL header; ``acl:<name>:<idx>`` — one per rule
      (so slices can include exactly the rules that can match a packet
      while keeping rule order visible through the index)

    The dependency analysis (``repro.analysis.deps``) selects a subset
    of these ids per query; hashing their texts yields the slice hash
    that keys the verdict cache.
    """
    frags: List[Tuple[str, str]] = [("meta", f"hostname {config.hostname}")]

    def emit(frag_id: str, lines: List[str]) -> None:
        frags.append((frag_id, "\n".join(lines)))

    for name in sorted(config.interfaces):
        lines: List[str] = []
        _write_interface(lines, config.interfaces[name])
        emit(f"interface:{name}", lines[:-1])  # drop the trailing "!"
    if config.ospf:
        lines = []
        _write_ospf(lines, config)
        emit("ospf", lines[:-1])
    if config.bgp:
        bgp = config.bgp
        emit("bgp", _bgp_base_lines(config) + _bgp_redistribute_lines(config))
        for net, length in bgp.networks:
            emit(f"bgp.network:{iplib.format_prefix(net, length)}",
                 [_bgp_network_line(net, length)])
        for net, length in bgp.aggregates:
            emit(f"bgp.aggregate:{iplib.format_prefix(net, length)}",
                 [_bgp_aggregate_line(net, length)])
        for nbr in bgp.neighbors:
            emit(f"bgp.neighbor:{iplib.format_ip(nbr.peer_ip)}",
                 _bgp_neighbor_lines(nbr))
    for idx, route in enumerate(config.static_routes):
        lines = []
        _write_static(lines, route)
        emit(f"static:{idx}", lines)
    for name in sorted(config.prefix_lists):
        lines = []
        _write_prefix_list(lines, config.prefix_lists[name])
        emit(f"prefix-list:{name}", lines[:-1])
    for name in sorted(config.community_lists):
        emit(f"community-list:{name}",
             _community_list_lines(config.community_lists[name]))
    for name in sorted(config.acls):
        acl = config.acls[name]
        emit(f"acl:{name}", [f"ip access-list extended {acl.name}"])
        for idx, rule in enumerate(acl.rules):
            emit(f"acl:{name}:{idx}", [" " + _format_acl_rule(rule)])
    for name in sorted(config.route_maps):
        rmap = config.route_maps[name]
        lines = []
        _write_route_map(lines, rmap)
        emit(f"route-map:{name}", lines[:-1])
        for clause in sorted(rmap.clauses, key=lambda c: c.seq):
            emit(f"route-map:{name}:{clause.seq}",
                 _route_map_clause_lines(name, clause))
    return frags
