"""Dead-clause pruning: shrink the encoding with analysis proofs.

A route-map clause proven unreachable (see
:func:`repro.analysis.smt_rules.dead_clause_indices`) contributes a
guard term and a transformed-record branch to every ``ite`` chain the
map appears in, yet can never affect the chain's value.  Dropping it
before encoding is therefore verdict-preserving by construction — the
pruned map denotes the same function — while removing real variables
and clauses from the bit-blasted formula.

Only route-map clauses are pruned.  Prefix-list entries and ACL rules
fold into pure terms (no fresh variables), so pruning them buys little
and is left to the diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.net.device import DeviceConfig
from repro.net.policy import RouteMap
from repro.net.topology import Network

__all__ = ["PrunedClause", "PruneReport", "prune_network"]


@dataclass(frozen=True)
class PrunedClause:
    """One clause removed from the encoding."""

    device: str
    route_map: str
    seq: int
    line: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.device}: route-map {self.route_map!r} seq {self.seq}"


@dataclass
class PruneReport:
    """What pruning removed."""

    pruned: List[PrunedClause] = field(default_factory=list)
    maps_examined: int = 0

    @property
    def count(self) -> int:
        return len(self.pruned)


def prune_network(network: Network) -> "tuple[Network, PruneReport]":
    """A copy of ``network`` with provably dead route-map clauses removed.

    Every removed clause is recorded in the returned
    :class:`PruneReport`.  Devices without dead clauses are shared, not
    copied.
    """
    from .hazards import collect_dangling
    from .smt_rules import dead_clause_indices

    report = PruneReport()
    with collect_dangling():
        # Guard construction touches dangling references; those are the
        # lint rules' job (REF002/REF003), not warnings to repeat here.
        return _prune(network, report, dead_clause_indices)


def _prune(
    network: Network, report: PruneReport, dead_clause_indices
) -> "tuple[Network, PruneReport]":
    devices: List[DeviceConfig] = []
    for name in network.router_names():
        dev = network.device(name)
        new_maps: Dict[str, RouteMap] = {}
        changed = False
        for map_name, rmap in dev.route_maps.items():
            report.maps_examined += 1
            dead = dead_clause_indices(dev, rmap)
            if not dead:
                new_maps[map_name] = rmap
                continue
            changed = True
            ordered = sorted(rmap.clauses, key=lambda c: c.seq)
            kept = tuple(c for i, c in enumerate(ordered) if i not in dead)
            for i in dead:
                entry = PrunedClause(
                    device=name,
                    route_map=map_name,
                    seq=ordered[i].seq,
                    line=ordered[i].line,
                )
                report.pruned.append(entry)
            new_maps[map_name] = replace(rmap, clauses=kept)
        if changed:
            devices.append(replace_route_maps(dev, new_maps))
        else:
            devices.append(dev)
    if not report.pruned:
        return network, report
    return Network(devices), report


def replace_route_maps(
    dev: DeviceConfig, new_maps: Dict[str, RouteMap]
) -> DeviceConfig:
    """A shallow device copy with its route-map table swapped out."""
    return replace(dev, route_maps=new_maps)
