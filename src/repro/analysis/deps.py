"""Static dependency analysis: cones of influence and slice hashing.

The differential verifier (``repro diff``) must answer one question
soundly: *which config fragments can possibly change this query's
verdict?*  Everything else may change freely without invalidating a
cached answer.  Following the modularity insight of CB-VER and the
pruning insight of Plankton (PAPERS.md), the answer is computed
statically from the built network, per (query, destination prefix,
failure bound):

* The **cone of influence** selects, for every device, the set of
  canonical config fragments (:func:`repro.lang.writer.write_fragments`)
  whose semantics can reach the query's verdict.  The encoder constrains
  the symbolic packet destination to the query's prefix ``p`` with a
  hard ``fbm_const`` constraint and filters every origination candidate
  (connected subnets, static routes, BGP ``network``/aggregates, OSPF
  interface origins) by concrete prefix match against ``p`` — so a
  fragment whose prefix cannot overlap ``p`` is provably inert for the
  query and may leave the slice.

* The **slice hash** is a SHA-256 over the canonical texts of exactly
  the fragments in the cone, so comment/whitespace edits (discarded by
  the parser) and edits outside the cone never perturb it, while any
  semantic edit inside the cone does.

* Soundness bar: *a cached verdict must be provably identical to a
  fresh solve*.  Whenever the analysis cannot bound a cone — no
  destination prefix on the property, a property class it does not
  know, assumption callables it cannot inspect, auto-named external
  peers whose generated names are order-dependent — it degrades
  conservatively: an unbounded cone contains **every** fragment of
  every device (still cacheable: a hit then means nothing at all
  changed), and unrecognized queries are not cacheable at all
  (:func:`cache_key` returns ``None`` and the engine always re-solves).

Inclusion rules (each guarded by the network-wide facts below):

==========================  =============================================
fragment                    in the slice when
==========================  =============================================
``meta``, ``bgp``,          always (identity, session graph, MED mode,
``bgp.neighbor:*``,         redistribution and adjacency shape the whole
``ospf``                    route propagation)
``interface:<n>``           unless it is an excludable stub: its subnet
                            does not overlap ``p``, no other device has
                            an interface in the subnet (no adjacency),
                            and no BGP neighbor address or static-route
                            next hop anywhere in the network falls
                            inside it (session resolution and recursive
                            lookup are unaffected)
``bgp.network:<pfx>``,      prefix overlaps ``p``
``bgp.aggregate:<pfx>``
``static:<i>``              route prefix overlaps ``p`` — or iBGP is
                            modeled anywhere (the §4 IGP copies pin the
                            destination to arbitrary peer addresses and
                            keep static routes)
``route-map:<n>``           bound to a BGP session (via neighbor
                            bindings) and every clause *hot* for ``p``
                            under the route-propagation dataflow
                            summaries (:mod:`repro.analysis.dataflow`)
``route-map:<n>:<seq>``     the map is bound and only *some* clauses
                            are hot: exactly the hot clauses join the
                            slice (a clause is hot when a route that
                            can actually enter the map both matches it
                            and overlaps ``p``; cold clauses cannot
                            process a verdict-relevant route, and any
                            edit that could re-heat one changes either
                            an included fragment or the inclusion set
                            itself — see the module docstring of
                            ``dataflow``)
``prefix-list:<n>`` etc.    matched (or comm-list-deleted) by an
                            *included* route-map clause
``acl:<n>:<i>``             the ACL is bound to an included interface
                            and the rule's destination range overlaps
                            ``p``
==========================  =============================================

Properties that quantify over *network structure* rather than routes
need extra care: :class:`~repro.core.properties.NoForwardingLoops`
derives its default pivot candidates from the presence of static
routes, redistribution, and local-preference-setting route maps on any
device.  With default candidates the slice keeps all static routes and
adds a ``dataflow:loop-candidates`` pseudo-fragment (the derived
candidate tuple, mirrored by
:func:`repro.analysis.dataflow.loop_candidates`) to the hash — any
edit that flips a device in or out of the pivot set changes the key
even when the edited fragment itself is outside the cone.  Route maps
no longer widen to the whole network: the dataflow hotness projection
above applies to structural queries too.  When the dataflow fixpoint
had to widen (``Dataflow.widened``), the analysis falls back to the
pre-projection behavior: every bound map — and for structural queries
every map on every device — joins the slice whole.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dc_fields, is_dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro import obs
from repro.net import ip as iplib
from repro.net.device import DeviceConfig
from repro.net.topology import Network
from repro.lang.writer import write_config, write_fragments
from .dataflow import Dataflow, analyze_dataflow, loop_candidates
from .diagnostics import Severity
from .registry import Finding, rule

__all__ = [
    "Cone",
    "NetworkFacts",
    "cache_key",
    "device_hash",
    "network_facts",
    "options_digest",
    "options_fingerprint",
    "query_cone",
    "query_id",
    "slice_hash",
    "unreachable_policy",
]


# ---------------------------------------------------------------------------
# Network-wide facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetworkFacts:
    """Cross-device facts the fragment-inclusion rules depend on."""

    #: every configured BGP neighbor address, any device
    neighbor_ips: FrozenSet[int]
    #: every static-route next-hop address, any device
    static_next_hops: FrozenSet[int]
    #: subnets with interfaces on two or more devices (potential links)
    shared_subnets: FrozenSet[Tuple[int, int]]
    #: some device has an iBGP session (remote-as == own AS)
    has_ibgp: bool


def network_facts(network: Network) -> NetworkFacts:
    neighbor_ips: Set[int] = set()
    next_hops: Set[int] = set()
    subnet_owners: Dict[Tuple[int, int], Set[str]] = {}
    has_ibgp = False
    for name, dev in network.devices.items():
        if dev.bgp:
            for nbr in dev.bgp.neighbors:
                neighbor_ips.add(nbr.peer_ip)
                if nbr.remote_as == dev.bgp.asn:
                    has_ibgp = True
        for route in dev.static_routes:
            if route.next_hop_ip is not None:
                next_hops.add(route.next_hop_ip)
        for iface in dev.interfaces.values():
            if iface.address:
                subnet_owners.setdefault(iface.subnet, set()).add(name)
    shared = frozenset(
        s for s, owners in subnet_owners.items() if len(owners) > 1
    )
    return NetworkFacts(
        neighbor_ips=frozenset(neighbor_ips),
        static_next_hops=frozenset(next_hops),
        shared_subnets=shared,
        has_ibgp=has_ibgp,
    )


# ---------------------------------------------------------------------------
# Cones of influence
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cone:
    """The dependency slice of one query.

    ``fragments`` maps device name to the included fragment ids.  When
    the analysis cannot bound the cone, ``bounded`` is False and the
    cone covers every fragment of every device (``reason`` says why) —
    still sound and still hashable, just maximally conservative.
    """

    fragments: Dict[str, FrozenSet[str]]
    bounded: bool = True
    reason: str = ""
    #: (key, value) pseudo-fragments hashed alongside the config
    #: fragments: derived network-wide facts a verdict depends on that
    #: no single device fragment captures (e.g. the NoForwardingLoops
    #: default candidate set).
    extras: Tuple[Tuple[str, str], ...] = ()

    def devices(self) -> List[str]:
        return sorted(self.fragments)

    def total_fragments(self) -> int:
        return sum(len(v) for v in self.fragments.values())


# Property classes whose verdict dependencies the analysis understands.
# Anything else (user subclasses, lazy refinement properties) is not
# cacheable: we cannot see what it reads.
_KNOWN_PROPERTIES = (
    "Reachability",
    "Isolation",
    "Waypointing",
    "BoundedPathLength",
    "EqualPathLengths",
    "DisjointPaths",
    "NoForwardingLoops",
    "NoBlackHoles",
    "MultipathConsistency",
    "NeighborPreference",
    "PathPreference",
    "NoPrefixLeak",
)

_KNOWN_ASSUMPTIONS = ("_Announces", "_Silent", "_NoFailures")


def _known_property(prop) -> bool:
    import repro.core.properties as props

    cls = type(prop)
    return any(
        getattr(props, name, None) is cls for name in _KNOWN_PROPERTIES
    )


def _known_assumption(assumption) -> bool:
    import repro.core.properties as props

    cls = type(assumption)
    return any(
        getattr(props, name, None) is cls for name in _KNOWN_ASSUMPTIONS
    )


def _peer_names(prop, assumptions) -> Set[str]:
    """External-peer names the query references by name."""
    names: Set[str] = set()
    for attr in ("dest_peer",):
        value = getattr(prop, attr, None)
        if value:
            names.add(value)
    for value in getattr(prop, "peers_in_order", ()) or ():
        names.add(value)
    for assumption in assumptions:
        peer = getattr(assumption, "peer", None)
        if peer:
            names.add(peer)
    return names


def _stable_peer_name(network: Network, peer: str) -> bool:
    """Is ``peer`` a description-named external peer?

    Auto-generated names (``ext-<router>-<N>``) depend on a global
    counter over device iteration order, so an unrelated edit can
    renumber them; queries naming such peers are not cacheable.
    """
    for ext in network.externals:
        if ext.name != peer:
            continue
        dev = network.devices[ext.router]
        nbr = dev.bgp.neighbor(ext.peer_ip) if dev.bgp else None
        if nbr is not None and nbr.description == peer:
            return True
    return False


def _full_cone(network: Network, reason: str) -> Cone:
    fragments = {
        name: frozenset(fid for fid, _ in write_fragments(dev))
        for name, dev in network.devices.items()
    }
    return Cone(fragments=fragments, bounded=False, reason=reason)


def query_cone(
    network: Network,
    prop,
    *,
    max_failures: Optional[int] = None,
    assumptions: Tuple = (),
    options=None,
) -> Optional[Cone]:
    """The cone of influence of one query, or ``None`` if the query is
    not cacheable at all (unknown property/assumption types, unstable
    peer names)."""
    if getattr(prop, "lazy", False) or not _known_property(prop):
        return None
    for assumption in assumptions:
        if not _known_assumption(assumption):
            return None
    for peer in _peer_names(prop, assumptions):
        if not _stable_peer_name(network, peer):
            return None

    if options is None:
        from repro.core.encoder import EncoderOptions

        options = EncoderOptions()
    dst = prop.dst_prefix()
    if dst is None:
        return _full_cone(network, "property has no destination prefix")

    facts = network_facts(network)
    model_ibgp = facts.has_ibgp and getattr(options, "model_ibgp", True)
    # NoForwardingLoops with default candidates derives its pivot set
    # from statics / redistribution / local-pref-setting maps anywhere.
    structural = (
        type(prop).__name__ == "NoForwardingLoops"
        and getattr(prop, "candidates", None) is None
    )
    dataflow: Optional[Dataflow] = analyze_dataflow(network)
    if dataflow.widened:
        # The fixpoint could not bound the summaries; fall back to the
        # pre-projection widening (every bound map, structural queries
        # take every map).
        dataflow = None
    extras: Tuple[Tuple[str, str], ...] = ()
    if structural:
        extras = (
            ("dataflow:loop-candidates", ",".join(loop_candidates(network))),
        )
    fragments = {}
    for name, dev in network.devices.items():
        frags = _device_fragments(
            dev,
            dst,
            facts,
            include_all_statics=model_ibgp or structural,
            include_all_maps=structural and dataflow is None,
            dataflow=dataflow,
        )
        fragments[name] = frozenset(frags)
    cone = Cone(fragments=fragments, bounded=True, extras=extras)
    obs.metrics().histogram("deps.cone_fragments").observe(
        cone.total_fragments()
    )
    return cone


def _device_fragments(
    dev: DeviceConfig,
    dst: Tuple[int, int],
    facts: NetworkFacts,
    include_all_statics: bool,
    include_all_maps: bool,
    dataflow: Optional[Dataflow] = None,
) -> Iterator[str]:
    dst_net, dst_len = dst
    yield "meta"
    if dev.ospf:
        yield "ospf"

    included_ifaces: List[str] = []
    for name, iface in dev.interfaces.items():
        if not _excludable_stub(iface, dst_net, dst_len, facts):
            included_ifaces.append(name)
            yield f"interface:{name}"

    used_maps: Set[str] = set()
    if dev.bgp:
        yield "bgp"
        for nbr in dev.bgp.neighbors:
            yield f"bgp.neighbor:{iplib.format_ip(nbr.peer_ip)}"
            if nbr.route_map_in:
                used_maps.add(nbr.route_map_in)
            if nbr.route_map_out:
                used_maps.add(nbr.route_map_out)
        for net, length in dev.bgp.networks:
            if iplib.prefix_overlaps(net, length, dst_net, dst_len):
                yield f"bgp.network:{iplib.format_prefix(net, length)}"
        for net, length in dev.bgp.aggregates:
            if iplib.prefix_overlaps(net, length, dst_net, dst_len):
                yield f"bgp.aggregate:{iplib.format_prefix(net, length)}"

    for idx, route in enumerate(dev.static_routes):
        if include_all_statics or iplib.prefix_overlaps(
            route.network, route.length, dst_net, dst_len
        ):
            yield f"static:{idx}"

    if include_all_maps:
        used_maps.update(dev.route_maps)
    used_plists: Set[str] = set()
    used_clists: Set[str] = set()

    def reference(clause) -> None:
        if clause.match_prefix_list:
            used_plists.add(clause.match_prefix_list)
        if clause.match_community_list:
            used_clists.add(clause.match_community_list)
        used_clists.update(clause.delete_communities)

    for map_name in sorted(used_maps):
        rmap = dev.route_maps.get(map_name)
        if rmap is None:
            continue  # dangling: nothing to hash; definition would add it
        if dataflow is None:
            yield f"route-map:{map_name}"
            for clause in rmap.clauses:
                reference(clause)
            continue
        # Project the map onto its clauses hot for ``dst``: a cold
        # clause can never process a verdict-relevant route, and lists
        # matched only by cold clauses go with it.
        hot = dataflow.hot_clause_seqs(dev.hostname, map_name, dst)
        if not hot:
            continue
        if len(hot) == len(rmap.clauses):
            yield f"route-map:{map_name}"
            for clause in rmap.clauses:
                reference(clause)
        else:
            for clause in rmap.clauses:
                if clause.seq in hot:
                    yield f"route-map:{map_name}:{clause.seq}"
                    reference(clause)
    for name in used_plists:
        if name in dev.prefix_lists:
            yield f"prefix-list:{name}"
    for name in used_clists:
        if name in dev.community_lists:
            yield f"community-list:{name}"

    used_acls: Set[str] = set()
    for name in included_ifaces:
        iface = dev.interfaces[name]
        if iface.acl_in:
            used_acls.add(iface.acl_in)
        if iface.acl_out:
            used_acls.add(iface.acl_out)
    for name in used_acls:
        acl = dev.acls.get(name)
        if acl is None:
            continue
        yield f"acl:{name}"
        for idx, acl_rule in enumerate(acl.rules):
            if acl_rule.dst_network is None or iplib.prefix_overlaps(
                acl_rule.dst_network, acl_rule.dst_length, dst_net, dst_len
            ):
                yield f"acl:{name}:{idx}"


def _excludable_stub(
    iface, dst_net: int, dst_len: int, facts: NetworkFacts
) -> bool:
    """Can this interface be left out of a slice for ``dst``?

    Safe only when the interface is a leaf with no semantic handle a
    packet constrained to ``dst`` could observe: its subnet cannot
    match the destination (delivery, connected/OSPF origination and
    address ownership are all concrete-prefix-filtered against the
    destination by the encoder), it forms no adjacency, and neither BGP
    session resolution nor static next-hop lookup anywhere in the
    network can land inside it.
    """
    if not iface.address:
        return False
    subnet, length = iface.subnet
    if iplib.prefix_overlaps(subnet, length, dst_net, dst_len):
        return False
    if (subnet, length) in facts.shared_subnets:
        return False
    for addr in facts.neighbor_ips:
        if iplib.prefix_contains(subnet, length, addr):
            return False
    for addr in facts.static_next_hops:
        if iplib.prefix_contains(subnet, length, addr):
            return False
    return True


# ---------------------------------------------------------------------------
# Hashing and cache keys
# ---------------------------------------------------------------------------


def slice_hash(network: Network, cone: Cone) -> str:
    """SHA-256 over the canonical texts of the cone's fragments (plus
    any derived pseudo-fragments in ``cone.extras``)."""
    digest = hashlib.sha256()
    for key, value in sorted(cone.extras):
        digest.update(b"\x02")
        digest.update(key.encode())
        digest.update(b"\x00")
        digest.update(value.encode())
        digest.update(b"\x01")
    for name in sorted(cone.fragments):
        dev = network.devices.get(name)
        if dev is None:
            continue
        included = cone.fragments[name]
        for frag_id, text in write_fragments(dev):
            if frag_id in included:
                digest.update(name.encode())
                digest.update(b"\x00")
                digest.update(frag_id.encode())
                digest.update(b"\x00")
                digest.update(text.encode())
                digest.update(b"\x01")
    return digest.hexdigest()


def device_hash(dev: DeviceConfig) -> str:
    """Content hash of one device's full canonical form."""
    return hashlib.sha256(write_config(dev).encode()).hexdigest()


def _jsonable(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dc_fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def query_id(prop, effective_k: int, assumptions: Tuple = ()) -> str:
    """Stable identity of a query: property class and parameters,
    effective failure bound, and assumption descriptors."""
    payload = {
        "property": type(prop).__name__,
        "params": _jsonable(prop),
        "k": effective_k,
        "assumptions": [
            {"kind": type(a).__name__, "params": _jsonable(a)}
            for a in assumptions
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# EncoderOptions fields that shape which stable states exist (and hence
# verdicts).  ``max_failures`` is captured per-query via the effective
# bound in the query id; ``preprocess``/``portfolio``/``hoist_prefixes``
# and friends are verdict-preserving solver/encoding strategies (locked
# by the differential test suites), and the conflict budget can only
# turn an answer into UNKNOWN — never flip it — and UNKNOWNs are not
# cached.
_SEMANTIC_OPTION_FIELDS = (
    "hoist_prefixes",
    "slice_fields",
    "merge_edge_records",
    "slice_connected",
    "merge_fwd",
    "model_ibgp",
    "exact_failures",
    "fail_external",
    "prune_dead_clauses",
    "prune_cold_clauses",
)


def options_fingerprint(options) -> str:
    payload = {
        name: getattr(options, name) for name in _SEMANTIC_OPTION_FIELDS
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def options_digest(options) -> str:
    """Short hex digest of :func:`options_fingerprint`, for composed
    cache keys (the encoding cache scopes keys by it) and snapshot
    metadata where the raw JSON fingerprint would be unwieldy."""
    fingerprint = options_fingerprint(options)
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:12]


def cache_key(
    network: Network,
    prop,
    *,
    max_failures: Optional[int] = None,
    assumptions: Tuple = (),
    options=None,
    cone: Optional[Cone] = None,
) -> Optional[str]:
    """The verdict-cache key ``(query-id, slice-hash, options)`` for one
    query, or ``None`` when the query is not cacheable."""
    from repro.core.encoder import EncoderOptions
    from repro.core.verifier import effective_max_failures

    if options is None:
        options = EncoderOptions()
    if cone is None:
        cone = query_cone(
            network,
            prop,
            max_failures=max_failures,
            assumptions=assumptions,
            options=options,
        )
    if cone is None:
        return None
    k = effective_max_failures(prop, max_failures, options)
    blob = "\n".join(
        [
            query_id(prop, k, assumptions),
            slice_hash(network, cone),
            options_fingerprint(options),
        ]
    )
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Dead-policy rule: referenced, but outside every propagation path
# ---------------------------------------------------------------------------


def _live_sessions(network: Network, dev: DeviceConfig):
    """Split a device's BGP sessions into live (an internal device owns
    the peer address, or it resolves to a symbolic external peer) and
    dead (the session can never come up — the topology layer silently
    drops it)."""
    live, dead = [], []
    if not dev.bgp:
        return live, dead
    for nbr in dev.bgp.neighbors:
        if network.device_owning(nbr.peer_ip) is not None:
            live.append(nbr)
        elif dev.interface_for_subnet(nbr.peer_ip) is not None:
            live.append(nbr)
        else:
            dead.append(nbr)
    return live, dead


@rule(
    "DEP001",
    "policy outside every propagation path",
    Severity.WARNING,
    "network",
)
def unreachable_policy(network: Network) -> Iterator[Finding]:
    """A route-map (or a prefix-/community-list it matches) is bound
    only to BGP sessions that can never come up, or an ACL is applied
    only on shutdown interfaces.

    Such policy is referenced — so the unused-policy rule (POL001)
    stays silent — but the dependency graph shows no route or packet
    can ever traverse it: the peer address is owned by no internal
    device and resolves to no connected subnet (the topology layer
    silently drops the session), or the interface is administratively
    down.  Edits to it look meaningful and change nothing.
    """
    for name, dev in network.devices.items():
        live, dead = _live_sessions(network, dev)
        live_maps = {
            m
            for nbr in live
            for m in (nbr.route_map_in, nbr.route_map_out)
            if m
        }
        for nbr in dead:
            for map_name, line in (
                (nbr.route_map_in, nbr.route_map_in_line),
                (nbr.route_map_out, nbr.route_map_out_line),
            ):
                if (
                    map_name
                    and map_name in dev.route_maps
                    and map_name not in live_maps
                ):
                    yield Finding(
                        message=(
                            f"route-map {map_name} is bound only to "
                            "unresolvable BGP session "
                            f"{iplib.format_ip(nbr.peer_ip)} and can "
                            "never see a route"
                        ),
                        device=name,
                        line=line,
                    )
        # Lists matched only from such dead maps (and no live map).
        live_plists, live_clists = _matched_lists(dev, live_maps)
        bound_to_dead = {
            m
            for nbr in dead
            for m in (nbr.route_map_in, nbr.route_map_out)
            if m and m in dev.route_maps
        }
        dead_maps = bound_to_dead - live_maps
        dead_plists, dead_clists = _matched_lists(dev, dead_maps)
        for plist in sorted(dead_plists - live_plists):
            if plist in dev.prefix_lists:
                yield Finding(
                    message=(
                        f"prefix-list {plist} is matched only by "
                        "route-maps outside every propagation path"
                    ),
                    device=name,
                    line=dev.prefix_lists[plist].line,
                )
        for clist in sorted(dead_clists - live_clists):
            if clist in dev.community_lists:
                yield Finding(
                    message=(
                        f"community-list {clist} is matched only by "
                        "route-maps outside every propagation path"
                    ),
                    device=name,
                    line=dev.community_lists[clist].line,
                )
        for iface in dev.interfaces.values():
            if not iface.shutdown:
                continue
            for acl_name, line in (
                (iface.acl_in, iface.acl_in_line),
                (iface.acl_out, iface.acl_out_line),
            ):
                if (
                    acl_name
                    and acl_name in dev.acls
                    and not _acl_live_elsewhere(dev, acl_name, iface)
                ):
                    yield Finding(
                        message=(
                            f"ACL {acl_name} is applied only on "
                            f"shutdown interface {iface.name}; no "
                            "packet can traverse it"
                        ),
                        device=name,
                        line=line,
                    )


def _matched_lists(dev: DeviceConfig, map_names) -> Tuple[Set[str], Set[str]]:
    plists: Set[str] = set()
    clists: Set[str] = set()
    for map_name in map_names:
        rmap = dev.route_maps.get(map_name)
        if rmap is None:
            continue
        for clause in rmap.clauses:
            if clause.match_prefix_list:
                plists.add(clause.match_prefix_list)
            if clause.match_community_list:
                clists.add(clause.match_community_list)
            clists.update(clause.delete_communities)
    return plists, clists


def _acl_live_elsewhere(dev: DeviceConfig, acl_name: str, shut_iface) -> bool:
    for iface in dev.interfaces.values():
        if iface.shutdown:
            continue
        if acl_name in (iface.acl_in, iface.acl_out):
            return True
    return False
