"""Syntactic and cross-reference lint rules.

Rule ids are stable API: tests, docs and downstream tooling key on them.
The catalog lives in ``docs/ANALYSIS.md``; keep the two in sync.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.net import ip as iplib
from repro.net.device import DeviceConfig
from repro.net.topology import Network

from .diagnostics import Severity
from .registry import Finding, ParsedConfig, rule

__all__: List[str] = []


# ----------------------------------------------------------------------
# Device-scope: dangling references
# ----------------------------------------------------------------------


@rule("REF001", "undefined route-map reference", Severity.ERROR, "device")
def undefined_route_map(device: DeviceConfig) -> Iterator[Finding]:
    """A BGP neighbor applies a route-map that is not defined.

    The encoder treats a missing map as permit-all (paper semantics for
    "no policy") while operators usually intended a filter — a typo'd
    name silently opens the session.
    """
    if not device.bgp:
        return
    for nbr in device.bgp.neighbors:
        peer = iplib.format_ip(nbr.peer_ip)
        for attr, line_attr, direction in (
            ("route_map_in", "route_map_in_line", "in"),
            ("route_map_out", "route_map_out_line", "out"),
        ):
            name = getattr(nbr, attr)
            if name is not None and name not in device.route_maps:
                yield Finding(
                    message=(
                        f"neighbor {peer} applies undefined "
                        f"route-map {name!r} ({direction})"
                    ),
                    device=device.hostname,
                    line=getattr(nbr, line_attr) or nbr.line,
                )


@rule("REF002", "undefined prefix-list reference", Severity.ERROR, "device")
def undefined_prefix_list(device: DeviceConfig) -> Iterator[Finding]:
    """A route-map clause matches on a prefix-list that is not defined.

    Both encoder and simulator treat the clause as never matching, so
    the route falls through to later clauses — almost never what the
    author meant.
    """
    for rmap in device.route_maps.values():
        for clause in rmap.clauses:
            name = clause.match_prefix_list
            if name is not None and name not in device.prefix_lists:
                yield Finding(
                    message=(
                        f"route-map {rmap.name!r} seq {clause.seq} "
                        f"matches undefined prefix-list {name!r}"
                    ),
                    device=device.hostname,
                    line=clause.line,
                )


@rule("REF003", "undefined community-list reference", Severity.ERROR, "device")
def undefined_community_list(device: DeviceConfig) -> Iterator[Finding]:
    """A route-map clause matches on a community-list that is not defined."""
    for rmap in device.route_maps.values():
        for clause in rmap.clauses:
            name = clause.match_community_list
            if name is not None and name not in device.community_lists:
                yield Finding(
                    message=(
                        f"route-map {rmap.name!r} seq {clause.seq} "
                        f"matches undefined community-list {name!r}"
                    ),
                    device=device.hostname,
                    line=clause.line,
                )


@rule("REF004", "undefined ACL reference", Severity.ERROR, "device")
def undefined_acl(device: DeviceConfig) -> Iterator[Finding]:
    """An interface applies an access-group that names no configured ACL.

    The data plane treats a missing ACL as permit-all, silently
    disabling the intended packet filter.
    """
    for iface in device.interfaces.values():
        for attr, line_attr, direction in (
            ("acl_in", "acl_in_line", "in"),
            ("acl_out", "acl_out_line", "out"),
        ):
            name = getattr(iface, attr)
            if name is not None and name not in device.acls:
                yield Finding(
                    message=(
                        f"interface {iface.name} applies undefined "
                        f"ACL {name!r} ({direction})"
                    ),
                    device=device.hostname,
                    line=getattr(iface, line_attr) or iface.line,
                )


# ----------------------------------------------------------------------
# Device-scope: policy hygiene
# ----------------------------------------------------------------------


@rule("POL001", "defined but unused policy object", Severity.WARNING, "device")
def unused_policy(device: DeviceConfig) -> Iterator[Finding]:
    """A route-map, prefix-list, community-list or ACL is never applied.

    Dead policy is a maintenance hazard: edits to it look meaningful
    but change nothing.
    """
    used_maps: Set[str] = set()
    if device.bgp:
        for nbr in device.bgp.neighbors:
            if nbr.route_map_in:
                used_maps.add(nbr.route_map_in)
            if nbr.route_map_out:
                used_maps.add(nbr.route_map_out)
    used_plists: Set[str] = set()
    used_clists: Set[str] = set()
    for rmap in device.route_maps.values():
        for clause in rmap.clauses:
            if clause.match_prefix_list:
                used_plists.add(clause.match_prefix_list)
            if clause.match_community_list:
                used_clists.add(clause.match_community_list)
    used_acls: Set[str] = set()
    for iface in device.interfaces.values():
        if iface.acl_in:
            used_acls.add(iface.acl_in)
        if iface.acl_out:
            used_acls.add(iface.acl_out)
    for kind, defined, used in (
        ("route-map", device.route_maps, used_maps),
        ("prefix-list", device.prefix_lists, used_plists),
        ("community-list", device.community_lists, used_clists),
        ("ACL", device.acls, used_acls),
    ):
        for name in sorted(set(defined) - used):
            yield Finding(
                message=f"{kind} {name!r} is defined but never used",
                device=device.hostname,
                line=defined[name].line,
            )


@rule(
    "POL002", "duplicate route-map sequence number", Severity.WARNING, "device"
)
def duplicate_route_map_seq(device: DeviceConfig) -> Iterator[Finding]:
    """Two clauses of one route-map share a sequence number.

    Evaluation order between them is undefined on real devices; here
    the clause listed first wins, which may not match the router.
    """
    for rmap in device.route_maps.values():
        seen: Dict[int, int] = {}
        for clause in rmap.clauses:
            if clause.seq in seen:
                yield Finding(
                    message=(
                        f"route-map {rmap.name!r} repeats sequence "
                        f"number {clause.seq}"
                    ),
                    device=device.hostname,
                    line=clause.line,
                )
            else:
                seen[clause.seq] = clause.line or 0


@rule("STA001", "unresolvable static route", Severity.WARNING, "device")
def unresolvable_static(device: DeviceConfig) -> Iterator[Finding]:
    """A static route's next-hop is not reachable from this device.

    The next-hop IP lies in no connected subnet, or the named exit
    interface does not exist; the route can never be installed.
    """
    for sroute in device.static_routes:
        prefix = iplib.format_prefix(sroute.network, sroute.length)
        if sroute.drop:
            continue
        if sroute.interface is not None:
            if sroute.interface not in device.interfaces:
                yield Finding(
                    message=(
                        f"static route {prefix} exits via undefined "
                        f"interface {sroute.interface!r}"
                    ),
                    device=device.hostname,
                    line=sroute.line,
                )
        elif sroute.next_hop_ip is not None:
            if device.interface_for_subnet(sroute.next_hop_ip) is None:
                hop = iplib.format_ip(sroute.next_hop_ip)
                yield Finding(
                    message=(
                        f"static route {prefix} has next-hop {hop} "
                        "in no connected subnet"
                    ),
                    device=device.hostname,
                    line=sroute.line,
                )


@rule("CFG001", "missing hostname", Severity.WARNING, "device")
def missing_hostname(device: DeviceConfig) -> Iterator[Finding]:
    """The config has no ``hostname`` directive.

    The device gets the placeholder name ``unnamed``; a second such
    config collides (see TOP005).
    """
    if device.hostname == "unnamed" and device.hostname_line is None:
        yield Finding(
            message="config has no hostname directive",
            device=device.hostname,
            line=1,
        )


# ----------------------------------------------------------------------
# Network-scope: cross-device consistency
# ----------------------------------------------------------------------


def _address_owner(network: Network) -> Dict[int, Tuple[str, str]]:
    """address → (device, interface) for every configured address."""
    owner: Dict[int, Tuple[str, str]] = {}
    for name in network.router_names():
        for iface in network.device(name).interfaces.values():
            if iface.address and iface.address not in owner:
                owner[iface.address] = (name, iface.name)
    return owner


@rule("TOP001", "asymmetric BGP session", Severity.WARNING, "network")
def bgp_asymmetry(network: Network) -> Iterator[Finding]:
    """A BGP session is configured on one side only.

    The neighbor address belongs to an internal device that has no
    session back; the session never establishes.
    """
    owner = _address_owner(network)
    for name in network.router_names():
        dev = network.device(name)
        if not dev.bgp:
            continue
        my_addresses = {
            i.address for i in dev.interfaces.values() if i.address
        }
        for nbr in dev.bgp.neighbors:
            if nbr.peer_ip not in owner:
                continue  # external peer: environment's job
            peer_name, _ = owner[nbr.peer_ip]
            if peer_name == name:
                continue
            peer_dev = network.device(peer_name)
            reciprocal = peer_dev.bgp is not None and any(
                back.peer_ip in my_addresses
                for back in peer_dev.bgp.neighbors
            )
            if not reciprocal:
                peer = iplib.format_ip(nbr.peer_ip)
                yield Finding(
                    message=(
                        f"BGP session to {peer} ({peer_name}) is not "
                        f"configured on {peer_name}"
                    ),
                    device=name,
                    line=nbr.line,
                )


@rule("TOP002", "BGP remote-as mismatch", Severity.ERROR, "network")
def remote_as_mismatch(network: Network) -> Iterator[Finding]:
    """``neighbor ... remote-as`` disagrees with the peer's actual ASN.

    The OPEN negotiation fails and the session never establishes.
    """
    owner = _address_owner(network)
    for name in network.router_names():
        dev = network.device(name)
        if not dev.bgp:
            continue
        for nbr in dev.bgp.neighbors:
            if nbr.peer_ip not in owner:
                continue
            peer_name, _ = owner[nbr.peer_ip]
            if peer_name == name:
                continue
            peer_bgp = network.device(peer_name).bgp
            if peer_bgp is not None and nbr.remote_as != peer_bgp.asn:
                peer = iplib.format_ip(nbr.peer_ip)
                yield Finding(
                    message=(
                        f"neighbor {peer} ({peer_name}) declared as "
                        f"AS {nbr.remote_as} but {peer_name} runs "
                        f"AS {peer_bgp.asn}"
                    ),
                    device=name,
                    line=nbr.line,
                )


@rule("TOP003", "interface subnet mismatch", Severity.WARNING, "network")
def subnet_mismatch(network: Network) -> Iterator[Finding]:
    """Two interfaces' subnets overlap without being identical.

    Identical subnets form a link (or LAN); overlapping-but-different
    masks mean one side was misconfigured and the link never forms.
    """
    by_subnet: Dict[Tuple[int, int], List[Tuple[str, str]]] = {}
    details: Dict[Tuple[str, str], int] = {}
    for name in network.router_names():
        for iface in network.device(name).interfaces.values():
            if iface.shutdown or not iface.address:
                continue
            by_subnet.setdefault(iface.subnet, []).append((name, iface.name))
            details[(name, iface.name)] = iface.line or 0
    reported = set()
    for (net, length), members in sorted(by_subnet.items()):
        # Any strict ancestor prefix that is also someone's subnet
        # overlaps this one.
        for shorter in range(length):
            ancestor = (iplib.network_of(net, shorter), shorter)
            for other in by_subnet.get(ancestor, ()):
                for mine in members:
                    if other[0] == mine[0]:
                        continue  # same device: not a link mismatch
                    key = tuple(sorted((mine, other)))
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        message=(
                            f"{mine[0]}:{mine[1]} "
                            f"({iplib.format_prefix(net, length)}) "
                            f"overlaps {other[0]}:{other[1]} "
                            f"({iplib.format_prefix(*ancestor)}) "
                            "with a different mask"
                        ),
                        device=mine[0],
                        line=details.get(mine) or None,
                    )


@rule("TOP004", "duplicate router-id", Severity.ERROR, "network")
def duplicate_router_id(network: Network) -> Iterator[Finding]:
    """Two devices configure the same nonzero router-id.

    OSPF adjacencies flap and BGP identifies both routers as one
    speaker.
    """
    seen: Dict[int, str] = {}
    for name in network.router_names():
        dev = network.device(name)
        for proto in (dev.bgp, dev.ospf):
            if proto is None or not proto.router_id:
                continue
            rid = proto.router_id
            if rid in seen and seen[rid] != name:
                yield Finding(
                    message=(
                        f"router-id {iplib.format_ip(rid)} is also "
                        f"configured on {seen[rid]}"
                    ),
                    device=name,
                    line=proto.router_id_line or proto.line,
                )
            else:
                seen.setdefault(rid, name)


@rule("TOP006", "duplicate interface address", Severity.ERROR, "network")
def duplicate_address(network: Network) -> Iterator[Finding]:
    """One IP address is configured on interfaces of two devices."""
    seen: Dict[int, Tuple[str, str]] = {}
    for name in network.router_names():
        for iface in network.device(name).interfaces.values():
            if not iface.address or iface.shutdown:
                continue
            prior = seen.get(iface.address)
            if prior is not None and prior[0] != name:
                addr = iplib.format_ip(iface.address)
                yield Finding(
                    message=(
                        f"address {addr} on {iface.name} is also "
                        f"configured on {prior[0]}:{prior[1]}"
                    ),
                    device=name,
                    line=iface.line,
                )
            else:
                seen.setdefault(iface.address, (name, iface.name))


# ----------------------------------------------------------------------
# Configs-scope: pre-topology checks on the raw file set
# ----------------------------------------------------------------------


@rule("SYN001", "configuration syntax error", Severity.ERROR, "configs")
def syntax_error(parsed: List[ParsedConfig]) -> Iterator[Finding]:
    """A config file failed to parse."""
    for entry in parsed:
        if entry.error is not None:
            yield Finding(
                message=str(entry.error),
                file=entry.filename,
                line=entry.error_line,
            )


@rule("TOP005", "duplicate hostname", Severity.ERROR, "configs")
def duplicate_hostname(parsed: List[ParsedConfig]) -> Iterator[Finding]:
    """Two config files declare the same hostname.

    The topology loader refuses such a file set; report every file
    after the first with the colliding name.
    """
    seen: Dict[str, str] = {}
    for entry in parsed:
        if entry.config is None:
            continue
        host = entry.config.hostname
        if host in seen:
            yield Finding(
                message=(
                    f"hostname {host!r} is also declared in {seen[host]}"
                ),
                device=host,
                file=entry.filename,
                line=entry.config.hostname_line or 1,
            )
        else:
            seen[host] = entry.filename
