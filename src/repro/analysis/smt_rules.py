"""SMT-backed semantic checks: shadowed rules and degenerate maps.

A clause / prefix-list entry / ACL rule is *shadowed* when its guard is
unsatisfiable given that every earlier rule in the same object failed to
match — no input can ever reach it.  The checks reuse the verifier's own
symbolic policy evaluation (:mod:`repro.core.policy_smt`) over a free
route record / packet, so "dead" here means dead under exactly the
semantics the encoder uses (§6.1 hoisted prefix tests).

These proofs are per-object and tiny (tens of variables), so running
them over a whole network costs milliseconds, not the minutes a full
verification would.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.policy_smt import (
    PacketVars,
    _acl_rule_term,
    _clause_match_term,
)
from repro.core.records import FieldSet, RecordFactory, Widths
from repro.net.device import DeviceConfig
from repro.net.policy import (
    DENY,
    PERMIT,
    PrefixList,
    RouteMap,
    RouteMapClause,
)
from repro.net.topology import Network
from repro.smt import (
    Solver,
    Term,
    UNSAT,
    and_,
    bv_val,
    bv_var,
    not_,
    ule,
)

from .diagnostics import Severity
from .registry import Finding, rule

__all__ = ["clause_guards", "dead_clause_indices"]


def _factory_for(device: DeviceConfig) -> RecordFactory:
    """A record factory whose community bits cover the device's lists."""
    comms = sorted(
        {
            c
            for clist in device.community_lists.values()
            for c in clist.communities
        }
    )
    return RecordFactory(Widths(), FieldSet(communities=tuple(comms)))


def _free_route(device: DeviceConfig, tag: str):
    """A fully free symbolic route: record, dstIp, well-formedness."""
    factory = _factory_for(device)
    record = factory.fresh(f"{tag}.r")
    dst_ip = bv_var(f"{tag}.dstIp", 32)
    wf = ule(record.prefix_len, bv_val(32, factory.widths.prefix_len))
    return record, dst_ip, wf


def _has_dangling_refs(clause: RouteMapClause, device: DeviceConfig) -> bool:
    if (
        clause.match_prefix_list is not None
        and clause.match_prefix_list not in device.prefix_lists
    ):
        return True
    if (
        clause.match_community_list is not None
        and clause.match_community_list not in device.community_lists
    ):
        return True
    return False


def clause_guards(
    device: DeviceConfig, rmap: RouteMap, tag: str = "shadow"
) -> Tuple[List[Term], Term, List[RouteMapClause]]:
    """Per-clause match terms over one shared free route.

    Returns (guards, well-formedness term, clauses in seq order).
    """
    record, dst_ip, wf = _free_route(device, tag)
    clauses = sorted(rmap.clauses, key=lambda c: c.seq)
    guards = [
        _clause_match_term(c, device, record, dst_ip, hoisted=True)
        for c in clauses
    ]
    return guards, wf, clauses


def dead_clause_indices(device: DeviceConfig, rmap: RouteMap) -> List[int]:
    """Indices (into seq-sorted clauses) of provably shadowed clauses.

    Clauses with dangling references are skipped: their guard is FALSE
    by construction and REF002/REF003 already report the real problem.
    """
    guards, wf, clauses = clause_guards(device, rmap)
    dead = []
    for i, clause in enumerate(clauses):
        if _has_dangling_refs(clause, device):
            continue
        if _unreachable(guards, i, wf):
            dead.append(i)
    return dead


def _unreachable(guards: List[Term], index: int, wf: Term) -> bool:
    """Is ``guards[index] and not any(earlier guard)`` unsatisfiable?"""
    solver = Solver()
    solver.add(wf, guards[index], *[not_(g) for g in guards[:index]])
    return solver.check() is UNSAT


def _fallthrough_unsat(guards: List[Term], wf: Term) -> bool:
    """Can no route fall past every clause (implicit deny unreachable)?"""
    solver = Solver()
    solver.add(wf, *[not_(g) for g in guards])
    return solver.check() is UNSAT


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


@rule("SMT001", "shadowed route-map clause", Severity.WARNING, "smt")
def shadowed_route_map_clause(network: Network) -> Iterator[Finding]:
    """A route-map clause can never match: every route it would accept
    is consumed by an earlier clause.  Proven with the encoder's own
    symbolic semantics; edits to the clause change nothing.
    """
    for name in network.router_names():
        device = network.device(name)
        for rmap in device.route_maps.values():
            guards, wf, clauses = clause_guards(device, rmap)
            for i in dead_clause_indices(device, rmap):
                clause = clauses[i]
                yield Finding(
                    message=(
                        f"route-map {rmap.name!r} seq {clause.seq} "
                        "is shadowed by earlier clauses "
                        "(proven unreachable)"
                    ),
                    device=name,
                    line=clause.line,
                )


@rule("SMT002", "shadowed prefix-list entry", Severity.WARNING, "smt")
def shadowed_prefix_list_entry(network: Network) -> Iterator[Finding]:
    """A prefix-list entry can never fire: the prefixes it covers are
    all matched by earlier entries.
    """
    for name in network.router_names():
        device = network.device(name)
        for plist in device.prefix_lists.values():
            for i, entry in _dead_plist_entries(device, plist):
                yield Finding(
                    message=(
                        f"prefix-list {plist.name!r} entry "
                        f"{i + 1} ({entry.action} "
                        f"{_entry_text(entry)}) is shadowed by "
                        "earlier entries (proven unreachable)"
                    ),
                    device=name,
                    line=entry.line,
                )


def _entry_text(entry) -> str:
    from repro.net import ip as iplib

    text = iplib.format_prefix(entry.network, entry.length)
    if entry.ge is not None:
        text += f" ge {entry.ge}"
    if entry.le is not None:
        text += f" le {entry.le}"
    return text


def _dead_plist_entries(device: DeviceConfig, plist: PrefixList):
    from repro.core.policy_smt import fbm_const

    record, dst_ip, wf = _free_route(device, "plshadow")
    width = record.prefix_len.width
    guards: List[Term] = []
    for entry in plist.entries:
        low, high = entry.bounds()
        in_window = and_(
            ule(bv_val(low, width), record.prefix_len),
            ule(record.prefix_len, bv_val(high, width)),
        )
        bits_ok = fbm_const(dst_ip, entry.network, entry.length)
        guards.append(and_(in_window, bits_ok))
    out = []
    for i, entry in enumerate(plist.entries):
        if _unreachable(guards, i, wf):
            out.append((i, entry))
    return out


@rule("SMT003", "shadowed ACL rule", Severity.WARNING, "smt")
def shadowed_acl_rule(network: Network) -> Iterator[Finding]:
    """An ACL rule can never fire: every packet it covers is decided by
    an earlier rule.
    """
    for name in network.router_names():
        device = network.device(name)
        for acl in device.acls.values():
            packet = PacketVars(
                dst_ip=bv_var("aclshadow.dstIp", 32),
                src_ip=bv_var("aclshadow.srcIp", 32),
                protocol=bv_var("aclshadow.proto", 8),
                dst_port=bv_var("aclshadow.dport", 16),
                src_port=bv_var("aclshadow.sport", 16),
            )
            guards = [_acl_rule_term(r, packet) for r in acl.rules]
            for i, acl_rule in enumerate(acl.rules):
                if _unreachable(guards, i, wf=and_()):
                    yield Finding(
                        message=(
                            f"ACL {acl.name!r} rule {i + 1} "
                            f"({acl_rule.action}) is shadowed by "
                            "earlier rules (proven unreachable)"
                        ),
                        device=name,
                        line=acl_rule.line,
                    )


@rule("SMT004", "route-map is permit-all or deny-all", Severity.INFO, "smt")
def degenerate_route_map(network: Network) -> Iterator[Finding]:
    """A route-map accepts everything or rejects everything.

    Deny-all: no permit clause is reachable.  Permit-all: no deny
    clause is reachable, the implicit final deny is unreachable, and no
    reachable permit clause transforms the route.  Either way the map
    could be replaced by a one-line policy (or dropped).
    """
    for name in network.router_names():
        device = network.device(name)
        for rmap in device.route_maps.values():
            if not rmap.clauses:
                continue
            if any(_has_dangling_refs(c, device) for c in rmap.clauses):
                continue  # REF002/REF003 own this map
            guards, wf, clauses = clause_guards(device, rmap)
            verdict = _degenerate_verdict(guards, wf, clauses)
            if verdict is not None:
                yield Finding(
                    message=(
                        f"route-map {rmap.name!r} is equivalent to {verdict}"
                    ),
                    device=name,
                    line=rmap.line,
                )


def _degenerate_verdict(
    guards: List[Term], wf: Term, clauses: List[RouteMapClause]
) -> Optional[str]:
    reachable = [
        i for i in range(len(clauses)) if not _unreachable(guards, i, wf)
    ]
    if all(clauses[i].action == DENY for i in reachable):
        return "deny-all"
    deny_reachable = any(clauses[i].action == DENY for i in reachable)
    transforms = any(
        _transforms(clauses[i])
        for i in reachable
        if clauses[i].action == PERMIT
    )
    if (
        not deny_reachable
        and not transforms
        and _fallthrough_unsat(guards, wf)
    ):
        return "permit-all"
    return None


def _transforms(clause: RouteMapClause) -> bool:
    return (
        clause.set_local_pref is not None
        or clause.set_metric is not None
        or clause.set_med is not None
        or bool(clause.add_communities)
        or bool(clause.delete_communities)
    )
