"""Diagnostic objects shared by every analysis rule.

A :class:`Diagnostic` is one finding: a stable rule id, a severity, a
human-readable message, and (when the config came from a file) a
``file:line`` span.  A :class:`Report` aggregates the findings from one
analysis run and knows how to turn them into a process exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "Report",
    "AnalysisError",
    "ConfigAnalysisWarning",
]


class Severity(IntEnum):
    """Ordered so ``max()`` over findings yields the worst one."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


class AnalysisError(RuntimeError):
    """Raised by strict preflight when analysis finds errors.

    Carries the offending :class:`Report` as ``report``.
    """

    def __init__(self, report: "Report") -> None:
        errors = [
            d for d in report.diagnostics if d.severity is Severity.ERROR
        ]
        summary = "; ".join(str(d) for d in errors[:5])
        if len(errors) > 5:
            summary += f"; ... ({len(errors) - 5} more)"
        super().__init__(
            f"configuration analysis found {len(errors)} error(s): {summary}"
        )
        self.report = report


class ConfigAnalysisWarning(UserWarning):
    """Emitted by non-strict preflight when analysis finds problems."""


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding."""

    rule_id: str
    severity: Severity
    message: str
    device: str = ""  # hostname, "" for network-level
    file: str = ""  # source file, "" if unknown
    line: Optional[int] = None  # 1-based line in ``file``

    @property
    def span(self) -> str:
        """``file:line`` (best effort) for text output."""
        where = self.file or self.device or "<network>"
        return f"{where}:{self.line}" if self.line is not None else where

    def __str__(self) -> str:
        prefix = f"{self.span}: {self.severity}: {self.rule_id}: "
        return prefix + self.message

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "device": self.device,
            "file": self.file,
            "line": self.line,
        }


@dataclass
class Report:
    """All findings from one analysis run.

    ``diagnostics`` holds the active findings; ``suppressed`` holds
    findings silenced by an inline ``! repro: noqa`` directive.  Only
    active findings count toward :attr:`max_severity` and
    :attr:`exit_code`.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)

    def extend(self, found: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """0 = clean/info only, 1 = warnings, 2 = errors."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 1 if worst is Severity.WARNING else 2

    def sorted(self) -> List[Diagnostic]:
        """Stable presentation order: file, line, rule id."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.file or d.device, d.line or 0, d.rule_id),
        )
