"""Rule registry: stable ids, severities, and scopes for analysis rules.

Rules register themselves with the :func:`rule` decorator.  Each rule is
a generator of :class:`Finding` objects; the engine turns findings into
:class:`~repro.analysis.diagnostics.Diagnostic` rows, filling in the
source file from the device the finding names.

Scopes determine what a rule sees:

* ``device``   — called once per :class:`~repro.net.device.DeviceConfig`;
* ``network``  — called once with the whole :class:`~repro.net.topology.
  Network` (cross-device checks);
* ``configs``  — called with the raw name→text mapping before parsing
  (syntax errors, duplicate hostnames);
* ``smt``      — like ``network`` but solver-backed; skipped when the
  caller asks for syntactic analysis only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from .diagnostics import Severity

__all__ = [
    "Finding",
    "ParsedConfig",
    "Rule",
    "rule",
    "all_rules",
    "rules_for_scope",
]

_SCOPES = ("device", "network", "configs", "smt")


@dataclass(frozen=True)
class Finding:
    """What a rule yields; the engine adds rule id / severity / file."""

    message: str
    device: str = ""
    line: Optional[int] = None
    severity: Optional[Severity] = None  # override the rule's default
    file: str = ""  # override the engine's lookup


@dataclass(frozen=True)
class ParsedConfig:
    """One config file's parse outcome, as seen by ``configs``-scope rules."""

    filename: str
    config: Optional[object] = None  # DeviceConfig on success
    error: Optional[Exception] = None  # ConfigSyntaxError etc. on failure
    error_line: Optional[int] = None


@dataclass(frozen=True)
class Rule:
    """A registered analysis rule."""

    id: str
    title: str
    severity: Severity
    scope: str
    check: Callable[..., Iterable[Finding]]
    description: str = field(default="", compare=False)


_REGISTRY: Dict[str, Rule] = {}


def rule(
    id: str, title: str, severity: Severity, scope: str
) -> Callable[[Callable], Callable]:
    """Register ``check`` as an analysis rule.  Ids must be unique."""
    if scope not in _SCOPES:
        raise ValueError(f"unknown rule scope {scope!r}")

    def register(check: Callable[..., Iterable[Finding]]) -> Callable:
        if id in _REGISTRY:
            raise ValueError(f"duplicate rule id {id!r}")
        _REGISTRY[id] = Rule(
            id=id,
            title=title,
            severity=severity,
            scope=scope,
            check=check,
            description=(check.__doc__ or "").strip(),
        )
        return check

    return register


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    _load()
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def rules_for_scope(scope: str) -> List[Rule]:
    _load()
    return [r for r in all_rules() if r.scope == scope]


def _load() -> None:
    """Import the rule modules (registration happens at import time)."""
    from . import dataflow, deps, rules, smt_rules  # noqa: F401
