"""Render analysis reports as text, JSON, or SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List

from .diagnostics import Diagnostic, Report, Severity

__all__ = ["format_text", "to_json", "to_sarif"]


def format_text(report: Report) -> str:
    """One diagnostic per line plus a summary, compiler style."""
    lines = [str(d) for d in report.sorted()]
    counts = {sev: report.count(sev) for sev in Severity}
    total = len(report.diagnostics)
    if total == 0:
        summary = f"analysis clean ({len(set(report.rules_run))} rules)"
    else:
        parts = [
            f"{counts[sev]} {sev}{'s' if counts[sev] != 1 else ''}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if counts[sev]
        ]
        plural = "s" if total != 1 else ""
        summary = f"{total} finding{plural}: " + ", ".join(parts)
    if report.suppressed:
        summary += f" ({len(report.suppressed)} suppressed)"
    return "\n".join(lines + [summary])


def to_json(report: Report) -> str:
    """Machine-readable report (stable key order)."""
    payload: Dict[str, object] = {
        "rules_run": sorted(set(report.rules_run)),
        "diagnostics": [d.to_dict() for d in report.sorted()],
        "counts": {str(sev): report.count(sev) for sev in Severity},
        "suppressed": [d.to_dict() for d in report.suppressed],
        "suppressed_count": len(report.suppressed),
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False)


_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _sarif_result(diag: Diagnostic, suppressed: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": diag.rule_id,
        "level": _SARIF_LEVEL[diag.severity],
        "message": {"text": diag.message},
    }
    if diag.file:
        physical: Dict[str, object] = {
            "artifactLocation": {"uri": diag.file}
        }
        if diag.line is not None:
            physical["region"] = {"startLine": diag.line}
        result["locations"] = [{"physicalLocation": physical}]
    if diag.device:
        result["properties"] = {"device": diag.device}
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif(report: Report) -> str:
    """SARIF 2.1.0 log for CI code-scanning upload.

    Active findings become plain results; ``! repro: noqa``-silenced
    findings are carried with an in-source suppression object so
    dashboards can show (but not count) them.
    """
    from .registry import all_rules

    ran = set(report.rules_run)
    rules = [
        {
            "id": r.id,
            "name": r.title,
            "shortDescription": {"text": r.title},
            "fullDescription": {"text": r.description or r.title},
            "defaultConfiguration": {"level": _SARIF_LEVEL[r.severity]},
        }
        for r in all_rules()
        if r.id in ran
    ]
    results: List[Dict[str, object]] = [
        _sarif_result(d, suppressed=False) for d in report.sorted()
    ]
    results.extend(
        _sarif_result(d, suppressed=True) for d in report.suppressed
    )
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=False)
