"""Render analysis reports as text or JSON."""

from __future__ import annotations

import json
from typing import Dict

from .diagnostics import Report, Severity

__all__ = ["format_text", "to_json"]


def format_text(report: Report) -> str:
    """One diagnostic per line plus a summary, compiler style."""
    lines = [str(d) for d in report.sorted()]
    counts = {sev: report.count(sev) for sev in Severity}
    total = len(report.diagnostics)
    if total == 0:
        summary = f"analysis clean ({len(set(report.rules_run))} rules)"
    else:
        parts = [
            f"{counts[sev]} {sev}{'s' if counts[sev] != 1 else ''}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if counts[sev]
        ]
        plural = "s" if total != 1 else ""
        summary = f"{total} finding{plural}: " + ", ".join(parts)
    return "\n".join(lines + [summary])


def to_json(report: Report) -> str:
    """Machine-readable report (stable key order)."""
    payload: Dict[str, object] = {
        "rules_run": sorted(set(report.rules_run)),
        "diagnostics": [d.to_dict() for d in report.sorted()],
        "counts": {str(sev): report.count(sev) for sev in Severity},
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
