"""Runtime hazard reporting for silent-fallback code paths.

The encoder and simulator both agree that a route-map clause referencing
an *undefined* prefix-list or community-list never matches (the encoder
compiles the guard to FALSE, the simulator returns no-match).  Keeping
that semantics while making the hazard visible is this module's job:

* by default each dangling reference issues a Python warning
  (:class:`DanglingReferenceWarning`) once per (device, kind, name);
* under :func:`collect_dangling` the events are captured in a list
  instead, for the static analyzer to turn into diagnostics;
* under :func:`strict_references` the first event raises
  :class:`DanglingReferenceError`.

Only the standard library is used here — ``repro.net.policy`` imports
this module from a hot path and must not pull in the analysis rules.
"""

from __future__ import annotations

import contextlib
import contextvars
import warnings
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = [
    "DanglingReference",
    "DanglingReferenceWarning",
    "DanglingReferenceError",
    "dangling_reference",
    "collect_dangling",
    "strict_references",
]


@dataclass(frozen=True)
class DanglingReference:
    """A reference to a policy object that does not exist on the device."""

    device: str
    kind: str  # "prefix-list" | "community-list" | ...
    name: str  # the undefined object's name
    context: str = ""  # e.g. "route-map clause seq 10"
    line: Optional[int] = None

    def __str__(self) -> str:
        where = f" ({self.context})" if self.context else ""
        dev = self.device or "<device>"
        return f"{dev}: undefined {self.kind} {self.name!r}{where}"


class DanglingReferenceWarning(UserWarning):
    """Default-mode signal for a dangling policy reference."""


class DanglingReferenceError(RuntimeError):
    """Strict-mode signal for a dangling policy reference."""

    def __init__(self, ref: DanglingReference) -> None:
        super().__init__(str(ref))
        self.reference = ref


# Mode switches.  contextvars so threaded / re-entrant use stays correct.
_collector: contextvars.ContextVar[Optional[List[DanglingReference]]] = (
    contextvars.ContextVar("dangling_collector", default=None)
)
_strict: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "dangling_strict", default=False
)

# Warn-once memory for default mode (unbounded growth is fine: the key
# space is the set of distinct misconfigurations, which is tiny).
_warned: set = set()


def dangling_reference(
    device: str,
    kind: str,
    name: str,
    context: str = "",
    line: Optional[int] = None,
) -> None:
    """Report one dangling reference through the active mode."""
    ref = DanglingReference(
        device=device, kind=kind, name=name, context=context, line=line
    )
    if _strict.get():
        raise DanglingReferenceError(ref)
    sink = _collector.get()
    if sink is not None:
        sink.append(ref)
        return
    key = (device, kind, name)
    if key not in _warned:
        _warned.add(key)
        warnings.warn(str(ref), DanglingReferenceWarning, stacklevel=3)


@contextlib.contextmanager
def collect_dangling() -> Iterator[List[DanglingReference]]:
    """Capture dangling-reference events instead of warning."""
    sink: List[DanglingReference] = []
    token = _collector.set(sink)
    try:
        yield sink
    finally:
        _collector.reset(token)


@contextlib.contextmanager
def strict_references() -> Iterator[None]:
    """Raise :class:`DanglingReferenceError` on any dangling reference."""
    token = _strict.set(True)
    try:
        yield
    finally:
        _strict.reset(token)
