"""Analysis driver: run the rule catalog over configs or a network."""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

from repro import obs
from repro.lang.parser import ConfigSyntaxError, parse_config
from repro.net.device import DeviceConfig
from repro.net.topology import Network

from .diagnostics import Diagnostic, Report
from .registry import Finding, ParsedConfig, Rule, rules_for_scope

__all__ = ["analyze_network", "analyze_configs", "analyze_device"]


# ``! repro: noqa`` or ``! repro: noqa RULE-ID [RULE-ID ...]`` on a
# comment line suppresses matching diagnostics on the next meaningful
# (non-blank, non-directive) line of the same file.
_NOQA_RE = re.compile(r"^\s*!+\s*repro:\s*noqa\b(?P<rules>.*)$", re.IGNORECASE)


def _noqa_directives(text: str) -> Dict[int, FrozenSet[str]]:
    """Map suppressed line numbers to rule-id sets (empty set = all rules).

    A directive applies to the next non-blank, non-directive line;
    consecutive directives stack onto the same target line.  Directives
    with nothing after them are ignored.
    """
    targets: Dict[int, FrozenSet[str]] = {}
    pending: List[FrozenSet[str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _NOQA_RE.match(line)
        if match:
            ids = frozenset(
                token.upper()
                for token in re.split(r"[,\s]+", match.group("rules").strip())
                if token
            )
            pending.append(ids)
            continue
        if pending and line.strip():
            if any(not ids for ids in pending):
                targets[lineno] = frozenset()  # bare noqa: all rules
            else:
                targets[lineno] = frozenset().union(*pending)
            pending = []
    return targets


def _apply_suppressions(report: Report, texts: Dict[str, str]) -> None:
    """Move noqa-matched diagnostics from active to ``report.suppressed``."""
    directives = {
        filename: scanned
        for filename, text in texts.items()
        if (scanned := _noqa_directives(text))
    }
    if not directives:
        return
    active: List[Diagnostic] = []
    for diag in report.diagnostics:
        rules = None
        if diag.file and diag.line is not None:
            rules = directives.get(diag.file, {}).get(diag.line)
        if rules is not None and (not rules or diag.rule_id in rules):
            report.suppressed.append(diag)
        else:
            active.append(diag)
    report.diagnostics[:] = active


def _to_diagnostic(
    rule: Rule, finding: Finding, files: Dict[str, str]
) -> Diagnostic:
    return Diagnostic(
        rule_id=rule.id,
        severity=finding.severity or rule.severity,
        message=finding.message,
        device=finding.device,
        file=finding.file or files.get(finding.device, ""),
        line=finding.line,
    )


def _run(
    rules: List[Rule], report: Report, files: Dict[str, str], *args
) -> None:
    for rule in rules:
        report.rules_run.append(rule.id)
        report.extend(
            _to_diagnostic(rule, f, files) for f in rule.check(*args)
        )


def _source_files(devices: List[DeviceConfig]) -> Dict[str, str]:
    return {
        dev.hostname: dev.source_file for dev in devices if dev.source_file
    }


def analyze_device(device: DeviceConfig) -> Report:
    """Run the per-device rules against one config."""
    report = Report()
    files = _source_files([device])
    for rule in rules_for_scope("device"):
        report.rules_run.append(rule.id)
        report.extend(
            _to_diagnostic(rule, f, files) for f in rule.check(device)
        )
    return report


def analyze_network(network: Network, smt: bool = True) -> Report:
    """Run device, network and (optionally) SMT rules over a network."""
    report = Report()
    devices = [network.device(n) for n in network.router_names()]
    files = _source_files(devices)
    with obs.span("analysis.device", devices=len(devices)):
        for rule in rules_for_scope("device"):
            report.rules_run.append(rule.id)
            for device in devices:
                report.extend(
                    _to_diagnostic(rule, f, files) for f in rule.check(device)
                )
    with obs.span("analysis.network"):
        _run(rules_for_scope("network"), report, files, network)
    if smt:
        from .hazards import collect_dangling

        # Guard construction inside the SMT rules touches any dangling
        # references; REF002/REF003 above already reported those, so
        # swallow the runtime hazard signals here.
        with obs.span("analysis.smt"):
            with collect_dangling():
                _run(rules_for_scope("smt"), report, files, network)
    return report


def analyze_configs(texts: Dict[str, str], smt: bool = True) -> Report:
    """Analyze raw config texts (file name → contents).

    Runs the pre-topology rules (syntax errors, duplicate hostnames)
    first, then — on whatever parsed cleanly, deduplicated by hostname
    so the topology can be built — the full network analysis.
    """
    parsed: List[ParsedConfig] = []
    for filename in sorted(texts):
        try:
            config = parse_config(texts[filename], source=filename)
        except ConfigSyntaxError as exc:
            entry = ParsedConfig(
                filename=filename, error=exc, error_line=exc.lineno
            )
            parsed.append(entry)
        except Exception as exc:  # defensive: still a SYN001
            parsed.append(ParsedConfig(filename=filename, error=exc))
        else:
            parsed.append(ParsedConfig(filename=filename, config=config))

    report = Report()
    _run(rules_for_scope("configs"), report, {}, parsed)

    # Build the network from the surviving configs: first file wins on a
    # hostname collision (TOP005 reported the loser above).
    devices: Dict[str, DeviceConfig] = {}
    for entry in parsed:
        if entry.config is not None:
            devices.setdefault(entry.config.hostname, entry.config)
    if devices:
        network = Network(devices.values())
        sub = analyze_network(network, smt=smt)
        report.diagnostics.extend(sub.diagnostics)
        report.rules_run.extend(sub.rules_run)
    _apply_suppressions(report, texts)
    return report
