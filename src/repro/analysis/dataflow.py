"""Whole-network route-propagation dataflow analysis.

The encoder models the control plane as a system of per-device route
import/export functions (§4 of the paper).  This module runs a
flow-insensitive abstract interpretation over the same structure — the
BGP session graph plus OSPF adjacencies — and computes, per device, an
*over-approximate* summary of which route prefixes the device can
possibly originate, learn, and advertise, and which route-map clauses
are *hot* (can ever process a route relevant to a destination prefix).

The summaries feed three consumers:

* :mod:`repro.analysis.deps` replaces its all-route-maps structural
  widening with the dataflow-reachable policy set per (query,
  dst-prefix), shrinking differential-verification cones.
* The cross-device lint rules XDF001–XDF004 below: filtering mistakes
  no per-device pass can see.
* :func:`prune_cold_for_prefix`: verdict-preserving removal of clauses
  proven cold for a query's destination prefix
  (``EncoderOptions.prune_cold_clauses``).

Abstract domain
---------------

A :class:`PrefixSet` is a union of *normalized prefix ranges*
``(base, elen, lo, hi)``: all route prefixes whose network lies under
``base/elen`` and whose length lies in ``[lo, hi]``.  A prefix-list
entry ``P/A ge B le C`` denotes the range with ``lo=B`` (default
``A``), ``hi=C`` (default ``lo``) and — crucially — ``elen = min(A,
lo)``: when ``ge < A`` the entry compares only the first ``A`` bits,
so it can match a *shorter* route whose coverage extends beyond
``P/A``; normalizing the base to ``min(A, lo)`` keeps the overlap test
sound in that corner.  For the common ``ge >= A`` case the range
coincides exactly with the §6.1 hoisted prefix test the encoder
asserts against the pinned destination.

Unions widen to the unconstrained set ``ANY`` past
:data:`WIDEN_LIMIT` ranges, mirroring deps.py's soundness rule: any
input the analysis cannot bound (an external peer's announcements, a
non-converging union) widens to ANY — summaries may only ever
over-approximate, never narrow unsoundly.

Transfer functions
------------------

``transfer(device, route-map, S)`` over-approximates the image of a
route set through a map: the union over *permit* clauses of ``S``
intersected with the clause's match set (deny clauses only remove
routes, so ignoring them is sound); a clause without a prefix-list
match — including community-only matches — passes everything; a
dangling map name kills the session (the encoder drops it).  BGP
inflow from an internal sender is the sender's routes filtered through
its export map; from a resolvable external peer it is ANY; an
unresolvable session contributes nothing (the topology layer drops
it).  OSPF adjacency floods the peer's full route set (covering
redistribution).  The fixpoint is monotone over a finite lattice; an
iteration cap widens everything to ANY rather than returning a
partial (unsound) result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro import obs
from repro.net import ip as iplib
from repro.net.device import BgpNeighbor, DeviceConfig
from repro.net.policy import PERMIT, PrefixListEntry, RouteMapClause
from repro.net.topology import Network

from .diagnostics import Severity
from .registry import Finding, rule

__all__ = [
    "ANY",
    "EMPTY",
    "Dataflow",
    "PrefixSet",
    "WIDEN_LIMIT",
    "analyze_dataflow",
    "clause_cold_for_prefix",
    "loop_candidates",
    "match_set",
    "prune_cold_for_prefix",
    "transfer",
]


# ---------------------------------------------------------------------------
# Abstract domain: unions of normalized prefix ranges
# ---------------------------------------------------------------------------


#: Union width past which a set widens to ANY (deps.py soundness rule:
#: over-approximate rather than pay unbounded precision).
WIDEN_LIMIT = 64

# One range is (base, elen, lo, hi): route prefixes under base/elen
# with prefix length in [lo, hi].  Invariant: elen <= lo <= hi.
_Range = Tuple[int, int, int, int]


class PrefixSet:
    """An over-approximate set of route prefixes (immutable)."""

    __slots__ = ("ranges", "is_any")

    def __init__(
        self, ranges: Tuple[_Range, ...] = (), is_any: bool = False
    ) -> None:
        self.ranges = () if is_any else tuple(ranges)
        self.is_any = is_any

    # -- constructors --------------------------------------------------

    @classmethod
    def from_prefix(cls, network: int, length: int) -> "PrefixSet":
        """The singleton set {network/length}."""
        base = iplib.network_of(network, length)
        return cls(((base, length, length, length),))

    @classmethod
    def from_entry(cls, entry: PrefixListEntry) -> "PrefixSet":
        """Every route prefix a prefix-list entry can match."""
        lo, hi = entry.bounds()
        if lo > hi or lo > 32:
            return EMPTY
        elen = min(entry.length, lo)
        base = iplib.network_of(entry.network, elen)
        return cls(((base, elen, lo, min(hi, 32)),))

    # -- predicates ----------------------------------------------------

    def is_empty(self) -> bool:
        return not self.is_any and not self.ranges

    def overlaps(self, network: int, length: int) -> bool:
        """Can some prefix in the set overlap ``network/length``?

        A range overlaps the query prefix iff its base subtree does:
        whenever ``base/elen`` and the query prefix share addresses,
        some route prefix with length in ``[lo, hi]`` under the base
        overlaps the query (take the query itself clamped into the
        window, or any descendant/ancestor along the shared path).
        """
        if self.is_any:
            return True
        return any(
            iplib.prefix_overlaps(base, elen, network, length)
            for base, elen, _lo, _hi in self.ranges
        )

    # -- lattice operations --------------------------------------------

    def union(self, other: "PrefixSet") -> "PrefixSet":
        if self.is_any or other.is_any:
            return ANY
        if not other.ranges:
            return self
        if not self.ranges:
            return other
        merged = _subsume(self.ranges + other.ranges)
        if len(merged) > WIDEN_LIMIT:
            return ANY
        return PrefixSet(merged)

    def intersect(self, other: "PrefixSet") -> "PrefixSet":
        if self.is_any:
            return other
        if other.is_any:
            return self
        out: List[_Range] = []
        for r1 in self.ranges:
            for r2 in other.ranges:
                inter = _intersect_ranges(r1, r2)
                if inter is not None:
                    out.append(inter)
        merged = _subsume(tuple(out))
        if len(merged) > WIDEN_LIMIT:
            # Either operand over-approximates the intersection and is
            # already bounded; return the narrower one.
            return self if len(self.ranges) <= len(other.ranges) else other
        return PrefixSet(merged)

    # -- identity ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixSet):
            return NotImplemented
        return (self.is_any, frozenset(self.ranges)) == (
            other.is_any,
            frozenset(other.ranges),
        )

    def __hash__(self) -> int:
        return hash((self.is_any, frozenset(self.ranges)))

    def __repr__(self) -> str:
        if self.is_any:
            return "PrefixSet(ANY)"
        parts = [
            f"{iplib.format_prefix(base, elen)}[{lo}..{hi}]"
            for base, elen, lo, hi in self.ranges
        ]
        return f"PrefixSet({{{', '.join(parts)}}})"


EMPTY = PrefixSet()
ANY = PrefixSet(is_any=True)


def _covers(r1: _Range, r2: _Range) -> bool:
    """Does range r1 subsume r2?"""
    b1, e1, l1, h1 = r1
    b2, e2, l2, h2 = r2
    return (
        e1 <= e2
        and iplib.network_of(b2, e1) == b1
        and l1 <= l2
        and h2 <= h1
    )


def _subsume(ranges: Tuple[_Range, ...]) -> Tuple[_Range, ...]:
    """Drop empty and subsumed ranges; canonical sort order."""
    unique = sorted({r for r in ranges if r[2] <= r[3]})
    kept: List[_Range] = []
    for r in unique:
        if any(other != r and _covers(other, r) for other in unique):
            # Ties (mutual coverage) are impossible for distinct
            # tuples: coverage both ways forces equality.
            continue
        kept.append(r)
    return tuple(kept)


def _intersect_ranges(r1: _Range, r2: _Range) -> Optional[_Range]:
    if r1[1] > r2[1]:
        r1, r2 = r2, r1
    b1, e1, l1, h1 = r1
    b2, e2, l2, h2 = r2
    if iplib.network_of(b2, e1) != b1:
        return None
    lo, hi = max(l1, l2), min(h1, h2)
    if lo > hi:
        return None
    return (b2, e2, lo, hi)


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------


def match_set(dev: DeviceConfig, clause: RouteMapClause) -> PrefixSet:
    """Every route prefix a route-map clause can possibly match.

    No prefix-list match (community-only clauses included — the
    community content of a route is not tracked) passes everything; a
    dangling prefix-list reference never matches (the encoder's agreed
    semantics); deny entries only shrink the match, so the union over
    permit entries over-approximates.
    """
    if clause.match_prefix_list is None:
        return ANY
    plist = dev.prefix_lists.get(clause.match_prefix_list)
    if plist is None:
        return EMPTY
    out = EMPTY
    for entry in plist.entries:
        if entry.action == PERMIT:
            out = out.union(PrefixSet.from_entry(entry))
    return out


def transfer(
    dev: DeviceConfig, map_name: Optional[str], routes: PrefixSet
) -> PrefixSet:
    """Over-approximate image of ``routes`` through a route map."""
    if map_name is None:
        return routes
    rmap = dev.route_maps.get(map_name)
    if rmap is None:
        # Dangling binding: the encoder reports and drops the session.
        return EMPTY
    if routes.is_empty():
        return EMPTY
    out = EMPTY
    for clause in rmap.clauses:
        if clause.action != PERMIT:
            continue
        out = out.union(routes.intersect(match_set(dev, clause)))
    return out


# ---------------------------------------------------------------------------
# Fixpoint propagation
# ---------------------------------------------------------------------------


@dataclass
class Dataflow:
    """Per-device propagation summaries (all over-approximate)."""

    network: Network
    #: prefixes a device can inject itself (connected, static, BGP
    #: network/aggregate statements)
    origin: Dict[str, PrefixSet] = field(default_factory=dict)
    #: prefixes a device can hear from its sessions/adjacencies
    learned: Dict[str, PrefixSet] = field(default_factory=dict)
    #: prefixes a device can send to some BGP neighbor
    advertised: Dict[str, PrefixSet] = field(default_factory=dict)
    #: (device, peer_ip) -> prefixes arriving on that session, before
    #: the import map
    session_inflow: Dict[Tuple[str, int], PrefixSet] = field(
        default_factory=dict
    )
    #: device -> route-map name -> union of route sets entering the map
    #: across all of its bindings (import: session inflow; export: the
    #: device's own routes).  Maps with no live binding are absent.
    map_inputs: Dict[str, Dict[str, PrefixSet]] = field(default_factory=dict)
    iterations: int = 0
    widened: bool = False

    def routes(self, device: str) -> PrefixSet:
        """Everything a device can possibly have in its RIB."""
        return self.origin.get(device, EMPTY).union(
            self.learned.get(device, EMPTY)
        )

    def hot_clause_seqs(
        self, device: str, map_name: str, dst: Tuple[int, int]
    ) -> FrozenSet[int]:
        """Sequence numbers of the map's clauses that can process a
        route relevant to ``dst``.

        A clause is *hot* when some route in the map's input set both
        matches the clause and overlaps the destination prefix — deny
        clauses included: a deny that swallows relevant routes shapes
        the verdict as much as a permit.  An unbound map has an empty
        input: every clause is cold.
        """
        dev = self.network.devices[device]
        rmap = dev.route_maps.get(map_name)
        if rmap is None:
            return frozenset()
        inputs = self.map_inputs.get(device, {}).get(map_name, EMPTY)
        if inputs.is_empty():
            return frozenset()
        hot = set()
        for clause in rmap.clauses:
            if match_set(dev, clause).intersect(inputs).overlaps(*dst):
                hot.add(clause.seq)
        return frozenset(hot)


def _origin_set(dev: DeviceConfig) -> PrefixSet:
    out = EMPTY
    for net, length in dev.connected_prefixes():
        out = out.union(PrefixSet.from_prefix(net, length))
    for route in dev.static_routes:
        out = out.union(PrefixSet.from_prefix(route.network, route.length))
    if dev.bgp:
        for net, length in dev.bgp.networks:
            out = out.union(PrefixSet.from_prefix(net, length))
        for net, length in dev.bgp.aggregates:
            out = out.union(PrefixSet.from_prefix(net, length))
    return out


def _export_toward(
    sender: DeviceConfig, receiver: DeviceConfig, routes: PrefixSet
) -> PrefixSet:
    """What ``sender`` can advertise on its session(s) to ``receiver``.

    The export filter is the sender's reverse binding: its neighbor
    entries whose peer address the receiver owns.  With no reverse
    entry the session is one-sided; passing the full route set through
    keeps the over-approximation sound either way.
    """
    if sender.bgp is None:
        return EMPTY
    reverse = [
        nbr
        for nbr in sender.bgp.neighbors
        if receiver.owns_address(nbr.peer_ip)
    ]
    if not reverse:
        return routes
    out = EMPTY
    for nbr in reverse:
        out = out.union(transfer(sender, nbr.route_map_out, routes))
    return out


def _session_inflow(
    network: Network,
    dev: DeviceConfig,
    nbr: BgpNeighbor,
    routes: Dict[str, PrefixSet],
) -> PrefixSet:
    """Routes that can arrive on one session, before the import map."""
    owner = network.device_owning(nbr.peer_ip)
    if owner is not None:
        sender = network.devices[owner]
        if sender.bgp is None:
            return EMPTY
        return _export_toward(sender, dev, routes[owner])
    if dev.interface_for_subnet(nbr.peer_ip) is not None:
        # Resolvable external peer: the environment may announce
        # anything — the unbounded input deps.py refuses to bound.
        return ANY
    return EMPTY  # session can never come up (topology drops it)


def _ospf_peers(network: Network) -> Dict[str, Set[str]]:
    """Devices adjacent on a shared subnet with OSPF on both ends."""
    peers: Dict[str, Set[str]] = {}
    for edge in network.edges:
        src = network.devices[edge.source]
        dst = network.devices[edge.target]
        if src.ospf is None or dst.ospf is None:
            continue
        peers.setdefault(edge.target, set()).add(edge.source)
    return peers


def analyze_dataflow(network: Network) -> Dataflow:
    """Propagate abstract prefix sets to a fixpoint over the network.

    Monotone on a finite lattice (unions widen to ANY past
    :data:`WIDEN_LIMIT`), so the loop terminates; a defensive iteration
    cap widens every summary to ANY instead of ever returning a
    partial — hence unsound — result.
    """
    df = Dataflow(network=network)
    names = network.router_names()
    for name in names:
        df.origin[name] = _origin_set(network.devices[name])
        df.learned[name] = EMPTY
    ospf_peers = _ospf_peers(network)

    cap = 2 * len(names) + 5
    widened = False
    iterations = 0
    while True:
        iterations += 1
        changed = False
        routes = {name: df.routes(name) for name in names}
        for name in names:
            dev = network.devices[name]
            inflow_total = df.learned[name]
            if dev.bgp:
                for nbr in dev.bgp.neighbors:
                    inflow = _session_inflow(network, dev, nbr, routes)
                    inflow_total = inflow_total.union(
                        transfer(dev, nbr.route_map_in, inflow)
                    )
            for peer in ospf_peers.get(name, ()):
                # OSPF floods the peer's routing information wholesale
                # (including redistribution); no per-prefix filtering.
                inflow_total = inflow_total.union(routes[peer])
            if inflow_total != df.learned[name]:
                df.learned[name] = inflow_total
                changed = True
        if not changed:
            break
        if iterations >= cap:
            widened = True
            for name in names:
                df.learned[name] = ANY
            break

    # Final pass with the fixpoint (or widened) summaries: per-session
    # inflows, map input sets, and advertised sets.
    routes = {name: df.routes(name) for name in names}
    for name in names:
        dev = network.devices[name]
        advertised = EMPTY
        if dev.bgp:
            for nbr in dev.bgp.neighbors:
                inflow = _session_inflow(network, dev, nbr, routes)
                key = (name, nbr.peer_ip)
                df.session_inflow[key] = df.session_inflow.get(
                    key, EMPTY
                ).union(inflow)
                if nbr.route_map_in and not inflow.is_empty():
                    table = df.map_inputs.setdefault(name, {})
                    table[nbr.route_map_in] = table.get(
                        nbr.route_map_in, EMPTY
                    ).union(inflow)
                if not _session_dead(network, dev, nbr):
                    if nbr.route_map_out:
                        table = df.map_inputs.setdefault(name, {})
                        table[nbr.route_map_out] = table.get(
                            nbr.route_map_out, EMPTY
                        ).union(routes[name])
                    advertised = advertised.union(
                        transfer(dev, nbr.route_map_out, routes[name])
                    )
        df.advertised[name] = advertised

    df.iterations = iterations
    df.widened = widened
    metrics = obs.metrics()
    metrics.counter("dataflow.fixpoint_iterations").inc(iterations)
    if widened:
        metrics.counter("dataflow.widened").inc()
    return df


def _session_dead(
    network: Network, dev: DeviceConfig, nbr: BgpNeighbor
) -> bool:
    return (
        network.device_owning(nbr.peer_ip) is None
        and dev.interface_for_subnet(nbr.peer_ip) is None
    )


# ---------------------------------------------------------------------------
# Structural-query support: the loop-candidate pseudo-fragment
# ---------------------------------------------------------------------------


def loop_candidates(network: Network) -> Tuple[str, ...]:
    """Static mirror of ``NoForwardingLoops.default_candidates``.

    The default pivot set is derived from the presence of static
    routes, redistribution, and local-preference-setting route maps on
    each device; deps.py hashes this tuple as a pseudo-fragment so a
    structural cone no longer needs every route map on every device —
    only the ones that can flip a device in or out of the candidate
    set.  Must stay in lockstep with
    :meth:`repro.core.properties.NoForwardingLoops.default_candidates`
    (locked by a mirror-consistency test).
    """
    risky = []
    for name in network.router_names():
        dev = network.device(name)
        redistributes = (dev.bgp and dev.bgp.redistribute) or (
            dev.ospf and dev.ospf.redistribute
        )
        sets_pref = any(
            clause.set_local_pref is not None
            for rmap in dev.route_maps.values()
            for clause in rmap.clauses
        )
        if dev.static_routes or redistributes or sets_pref:
            risky.append(name)
    return tuple(risky or network.router_names())


# ---------------------------------------------------------------------------
# Cold-clause pruning (EncoderOptions.prune_cold_clauses)
# ---------------------------------------------------------------------------


def clause_cold_for_prefix(
    dev: DeviceConfig, clause: RouteMapClause, dst: Tuple[int, int]
) -> bool:
    """Is a clause provably irrelevant to routes overlapping ``dst``?

    Sound because the encoder pins the symbolic destination to ``dst``
    and validity-gates every record: a clause whose match set cannot
    overlap ``dst`` never triggers on a route that reaches the
    verdict (in hoisted mode its guard is concretely false).  Clauses
    setting local-preference are never considered cold — pruning them
    would perturb ``NoForwardingLoops.default_candidates``, which scans
    the *pruned* network for local-pref-setting maps.
    """
    if clause.set_local_pref is not None:
        return False
    if clause.match_prefix_list is None:
        return False
    plist = dev.prefix_lists.get(clause.match_prefix_list)
    if plist is None:
        return True  # dangling match never matches anything
    return not match_set(dev, clause).overlaps(*dst)


def prune_cold_for_prefix(
    network: Network, dst: Tuple[int, int]
) -> Tuple[Network, int]:
    """A copy of ``network`` without clauses cold for ``dst``.

    Returns ``(network, 0)`` unchanged when nothing is cold.  Dropping
    a cold clause is verdict-preserving for queries pinned to ``dst``:
    no valid record the verdict can observe ever matches it, so
    first-match falls through exactly as before.
    """
    devices: List[DeviceConfig] = []
    pruned = 0
    any_change = False
    for name in network.router_names():
        dev = network.device(name)
        new_maps = {}
        changed = False
        for map_name, rmap in dev.route_maps.items():
            kept = tuple(
                c
                for c in rmap.clauses
                if not clause_cold_for_prefix(dev, c, dst)
            )
            if len(kept) != len(rmap.clauses):
                pruned += len(rmap.clauses) - len(kept)
                changed = True
                new_maps[map_name] = replace(rmap, clauses=kept)
            else:
                new_maps[map_name] = rmap
        if changed:
            devices.append(replace(dev, route_maps=new_maps))
            any_change = True
        else:
            devices.append(dev)
    if not any_change:
        return network, 0
    return Network(devices), pruned


# ---------------------------------------------------------------------------
# Cross-device lint rules (XDF001–XDF004)
# ---------------------------------------------------------------------------


def _live_bgp_sessions(
    network: Network, dev: DeviceConfig
) -> List[BgpNeighbor]:
    if not dev.bgp:
        return []
    return [
        nbr
        for nbr in dev.bgp.neighbors
        if not _session_dead(network, dev, nbr)
    ]


# Definite first-match walk for one concrete announced prefix.  All
# matches are concrete — the announced route is exactly (net, length)
# and carries no communities at origination — except a dangling export
# map (the session is dead; REF001/DEP001 territory, not ours).
_PASS, _BLOCK, _UNKNOWN = "pass", "block", "unknown"


def _export_status(
    dev: DeviceConfig, nbr: BgpNeighbor, net: int, length: int
) -> str:
    if nbr.route_map_out is None:
        return _PASS
    rmap = dev.route_maps.get(nbr.route_map_out)
    if rmap is None:
        return _UNKNOWN
    for clause in sorted(rmap.clauses, key=lambda c: c.seq):
        if clause.match_prefix_list is not None:
            plist = dev.prefix_lists.get(clause.match_prefix_list)
            if plist is None or not plist.permits(net, length):
                continue
        if clause.match_community_list is not None:
            clist = dev.community_lists.get(clause.match_community_list)
            # A freshly originated route carries no communities.
            if clist is None or not clist.permits(frozenset()):
                continue
        return _PASS if clause.action == PERMIT else _BLOCK
    return _BLOCK  # ran off the end: implicit deny


def _announced(dev: DeviceConfig) -> List[Tuple[int, int]]:
    if not dev.bgp:
        return []
    return list(dev.bgp.networks) + list(dev.bgp.aggregates)


@rule(
    "XDF001",
    "announced prefix filtered on every egress",
    Severity.WARNING,
    "network",
)
def route_never_arrives(network: Network) -> Iterator[Finding]:
    """A BGP ``network``/``aggregate-address`` statement announces a
    prefix, but the export policy of *every* live session provably
    denies it — the route never leaves the device, so no other device
    can ever hear it.

    The check walks each export map with the concrete announced prefix
    (first match wins, implicit deny at the end); community matches
    evaluate against the empty community set a freshly originated
    route carries.  A single session that passes — or whose policy the
    walk cannot decide — silences the finding.
    """
    for name in network.router_names():
        dev = network.device(name)
        sessions = _live_bgp_sessions(network, dev)
        if not sessions:
            continue  # no propagation paths at all: DEP001's territory
        for net, length in _announced(dev):
            statuses = [
                _export_status(dev, nbr, net, length) for nbr in sessions
            ]
            if all(status == _BLOCK for status in statuses):
                yield Finding(
                    message=(
                        f"{iplib.format_prefix(net, length)} is announced "
                        "but the export policy of every live BGP session "
                        "denies it; the route never leaves this device"
                    ),
                    device=name,
                    line=dev.bgp.line,
                )


@rule(
    "XDF002",
    "import clause shadowed by upstream filtering",
    Severity.WARNING,
    "network",
)
def cross_device_shadowed(network: Network) -> Iterator[Finding]:
    """An import route-map clause matches only prefixes its upstream
    neighbor can never advertise: everything the clause would act on
    is already filtered (or simply never originated) on the other side
    of the session — the static complement of the SMT shadow proofs,
    across a device boundary.

    Only internal sessions with a *nonempty* bounded inflow are
    checked: an external peer may announce anything (ANY), and an
    empty inflow means the session is dead (DEP001's finding, not
    ours).  Stays silent when the fixpoint widened.
    """
    df = analyze_dataflow(network)
    if df.widened:
        return
    for name in network.router_names():
        dev = network.device(name)
        if not dev.bgp:
            continue
        for nbr in dev.bgp.neighbors:
            if not nbr.route_map_in:
                continue
            owner = network.device_owning(nbr.peer_ip)
            if owner is None:
                continue
            inflow = df.session_inflow.get((name, nbr.peer_ip), EMPTY)
            if inflow.is_any or inflow.is_empty():
                continue
            rmap = dev.route_maps.get(nbr.route_map_in)
            if rmap is None:
                continue
            for clause in rmap.clauses:
                if clause.match_prefix_list is None:
                    continue
                ms = match_set(dev, clause)
                if ms.is_any or ms.is_empty():
                    continue
                if ms.intersect(inflow).is_empty():
                    yield Finding(
                        message=(
                            f"route-map {rmap.name} clause {clause.seq} "
                            f"matches only prefixes neighbor {owner} "
                            f"({iplib.format_ip(nbr.peer_ip)}) can never "
                            "advertise; the clause is cross-device "
                            "shadowed"
                        ),
                        device=name,
                        line=clause.line,
                    )


@rule(
    "XDF003",
    "community set but never matched network-wide",
    Severity.INFO,
    "network",
)
def community_never_matched(network: Network) -> Iterator[Finding]:
    """A route-map clause tags routes with a community value that no
    community-list anywhere in the network matches.  Harmless when the
    tag signals an external AS, but more often a typo — the value set
    on one device silently differs from the one matched on another.
    """
    matched: Set[str] = set()
    for name in network.router_names():
        dev = network.device(name)
        for clist in dev.community_lists.values():
            matched.update(clist.communities)
    for name in network.router_names():
        dev = network.device(name)
        for rmap in dev.route_maps.values():
            for clause in rmap.clauses:
                for community in clause.add_communities:
                    if community not in matched:
                        yield Finding(
                            message=(
                                f"route-map {rmap.name} clause "
                                f"{clause.seq} sets community "
                                f"{community}, which no community-list "
                                "in the network matches"
                            ),
                            device=name,
                            line=clause.line,
                        )


@rule(
    "XDF004",
    "asymmetric filtering across redundant egresses",
    Severity.WARNING,
    "network",
)
def asymmetric_filtering(network: Network) -> Iterator[Finding]:
    """An announced prefix is provably denied by the export policy of
    one live session but provably passed by another: the redundant
    paths advertise inconsistently, so a single session loss silently
    black-holes traffic the other path was supposed to carry.
    """
    for name in network.router_names():
        dev = network.device(name)
        sessions = _live_bgp_sessions(network, dev)
        if len(sessions) < 2:
            continue
        for net, length in _announced(dev):
            statuses = {
                iplib.format_ip(nbr.peer_ip): _export_status(
                    dev, nbr, net, length
                )
                for nbr in sessions
            }
            blocked = sorted(
                ip for ip, s in statuses.items() if s == _BLOCK
            )
            passed = sorted(ip for ip, s in statuses.items() if s == _PASS)
            if blocked and passed:
                yield Finding(
                    message=(
                        f"{iplib.format_prefix(net, length)} is "
                        f"advertised to {', '.join(passed)} but filtered "
                        f"toward {', '.join(blocked)}; redundant paths "
                        "carry asymmetric policy"
                    ),
                    device=name,
                    line=dev.bgp.line,
                )
