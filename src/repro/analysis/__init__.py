"""Config static analysis: lint rules, SMT-backed shadow detection.

The package plays the role of Batfish's preprocessing sanity checks in
the original Minesweeper pipeline: per-device and cross-device defects
(dangling references, asymmetric sessions, shadowed policy rules) are
reported with ``file:line`` spans *before* the expensive whole-network
SMT verification runs, and proven-dead route-map clauses can be pruned
from the encoding (see :mod:`repro.analysis.pruning`).

Import layering: :mod:`repro.net.policy` and :mod:`repro.core` report
runtime hazards through :mod:`repro.analysis.hazards` (stdlib-only), so
this ``__init__`` must stay importable without pulling in the rule
modules — they import the device models right back.  Engine, rules and
reporters load lazily via ``__getattr__``.
"""

from .diagnostics import (
    AnalysisError,
    ConfigAnalysisWarning,
    Diagnostic,
    Report,
    Severity,
)
from .hazards import (
    DanglingReference,
    DanglingReferenceError,
    DanglingReferenceWarning,
    collect_dangling,
    dangling_reference,
    strict_references,
)

__all__ = [
    "AnalysisError",
    "ConfigAnalysisWarning",
    "Diagnostic",
    "Report",
    "Severity",
    "DanglingReference",
    "DanglingReferenceError",
    "DanglingReferenceWarning",
    "collect_dangling",
    "dangling_reference",
    "strict_references",
    # lazy:
    "analyze_network",
    "analyze_configs",
    "analyze_device",
    "all_rules",
    "format_text",
    "to_json",
    "to_sarif",
    "prune_network",
    "PruneReport",
]

_LAZY = {
    "analyze_network": "engine",
    "analyze_configs": "engine",
    "analyze_device": "engine",
    "all_rules": "registry",
    "format_text": "reporters",
    "to_json": "reporters",
    "to_sarif": "reporters",
    "prune_network": "pruning",
    "PruneReport": "pruning",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value
