"""Structured JSON logging with run correlation ids.

Every log record is one JSON object per line — machine-greppable the
way ``warnings.warn`` strings never were — carrying a ``run_id`` so all
records of one CLI invocation (and, later, one ``repro serve`` request)
correlate, **including records emitted inside process-pool workers**:
the batch engine ships the parent's run id to each worker, which calls
:func:`set_run_id` before doing any work.

Built on stdlib :mod:`logging` under the ``"repro"`` logger namespace:

* silent by default — a :class:`logging.NullHandler` is installed so
  library users who never call :func:`configure` see nothing, and
  nothing is ever written unless asked for;
* :func:`configure` attaches a JSON-formatting handler to a stream or
  file (the CLI's ``--log-json FILE`` flag, ``-`` for stderr);
* :func:`event` logs a structured event (``event`` + arbitrary fields);
* :func:`warn_event` logs the structured event **and** still raises the
  matching :class:`warnings.warn` — existing ``pytest.warns`` /
  ``filterwarnings`` contracts keep working while log pipelines get a
  parseable record (this is what the engine's pool fallback and the
  solver's portfolio fallback now use).
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
import uuid
import warnings
from typing import Any, Optional

__all__ = ["configure", "event", "warn_event", "get_logger",
           "new_run_id", "run_id", "set_run_id"]

_LOGGER = logging.getLogger("repro")
_LOGGER.addHandler(logging.NullHandler())

#: Process-wide correlation id of the current run; workers receive it
#: explicitly at spawn.  None until a run starts.  The serve daemon
#: additionally sets a *thread-scoped* id per request (see
#: :func:`set_run_id`), which shadows this one on that thread only —
#: ``ThreadingHTTPServer`` handles concurrent requests on separate
#: threads, and their records must not share one id.
_RUN_ID: Optional[str] = None
_THREAD_RUN = threading.local()

_RESERVED = frozenset(
    ("name", "msg", "args", "levelname", "levelno", "pathname",
     "filename", "module", "exc_info", "exc_text", "stack_info",
     "lineno", "funcName", "created", "msecs", "relativeCreated",
     "thread", "threadName", "processName", "process", "taskName",
     "message", "event", "run_id"))


def new_run_id() -> str:
    """A fresh 12-hex-char correlation id (collision-safe per ledger)."""
    return uuid.uuid4().hex[:12]


def set_run_id(value: Optional[str], *, thread_only: bool = False) -> None:
    """Install the current correlation id.

    With ``thread_only`` the id applies to the calling thread alone
    (and ``None`` clears it, falling back to the process-wide id) —
    this is how the serve daemon scopes ids to request threads without
    disturbing concurrent requests.
    """
    if thread_only:
        _THREAD_RUN.value = value
        return
    global _RUN_ID
    _RUN_ID = value


def run_id() -> Optional[str]:
    """The calling thread's id if one is set, else the process-wide."""
    return getattr(_THREAD_RUN, "value", None) or _RUN_ID


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, run_id,
    message, plus any structured fields passed via ``extra``."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", record.name),
            "run_id": getattr(record, "run_id", None) or run_id(),
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exception"] = record.exc_info[0].__name__
        return json.dumps(doc, sort_keys=True)


def configure(target: Any = "-", level: int = logging.INFO,
              run: Optional[str] = None) -> logging.Handler:
    """Attach a JSON handler writing to ``target``.

    ``target`` is a path, ``"-"`` for stderr, or an open stream.
    Returns the handler so callers (tests, the CLI teardown) can detach
    it with :func:`logging.Logger.removeHandler` and close it.  Also
    installs ``run`` (or a fresh id) as the current run id.
    """
    if hasattr(target, "write"):
        handler: logging.Handler = logging.StreamHandler(target)
    elif target == "-":
        handler = logging.StreamHandler(sys.stderr)
    else:
        handler = logging.FileHandler(target)
    handler.setFormatter(JsonFormatter())
    _LOGGER.addHandler(handler)
    _LOGGER.setLevel(min(level, _LOGGER.level or level))
    set_run_id(run or new_run_id())
    return handler


def unconfigure(handler: logging.Handler) -> None:
    """Detach and close a handler installed by :func:`configure`."""
    _LOGGER.removeHandler(handler)
    handler.close()


def get_logger(name: Optional[str] = None) -> logging.Logger:
    return _LOGGER if not name else _LOGGER.getChild(name)


def event(name: str, message: str = "", *,
          level: int = logging.INFO, **fields: Any) -> None:
    """Log one structured event on the ``repro`` logger.

    ``fields`` must be JSON-serializable (anything that is not gets
    ``repr()``-ed by the formatter rather than raising mid-pipeline).
    """
    _LOGGER.log(level, message or name,
                extra={"event": name, "ts_mono": time.monotonic(),
                       **fields})


def warn_event(name: str, message: str, *,
               category: type = RuntimeWarning,
               stacklevel: int = 2, **fields: Any) -> None:
    """Structured WARNING event that also emits a real Python warning.

    The JSON record is for log pipelines; the ``warnings.warn`` keeps
    interactive users and the existing test contracts
    (``pytest.warns(RuntimeWarning)``) on the established channel.
    """
    event(name, message, level=logging.WARNING, **fields)
    warnings.warn(message, category, stacklevel=stacklevel + 1)
