"""Hierarchical spans: the timing backbone of the pipeline telemetry.

A :class:`Span` measures one phase of work (parse, encode, bit-blast,
solve, ...) as a context manager.  Spans nest: entering a span pushes it
onto a per-thread stack, so a span opened while another is active becomes
its child and the finished trace is a forest that exporters can render as
a phase-breakdown table or a Chrome trace-event file.

Design constraints, in order:

* **Zero-overhead when off.**  Instrumentation points deep in the solver
  call the module-level :func:`span`; with no tracer installed this
  returns a shared no-op span — one global read and one call, no
  allocation, no clock read.
* **Thread safety.**  The active-span stack is ``threading.local``, so
  spans opened on different threads never see each other as parents;
  finished spans are appended to one list (atomic under the GIL).
* **Process-pool safety.**  Workers cannot append to the parent's list.
  A worker builds its own :class:`Tracer`, ships ``tracer.export()``
  (plain dicts, picklable) back with its results, and the parent calls
  :meth:`Tracer.merge` at join time; merged spans are re-parented under
  the parent's current span and tagged with the worker's lane so batch
  groups show up as parallel lanes in a Chrome trace.

Clocks: durations come from ``perf_counter``; each tracer also records a
wall-clock epoch so merged traces from different processes line up on one
absolute timeline.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "active",
    "enable",
    "disable",
    "span",
    "use",
    "metrics",
]


class Span:
    """One timed phase.  Use as a context manager; re-use is not allowed.

    ``attrs`` carries structured annotations (router name, vars/clauses
    deltas, SAT outcome, ...) that exporters surface as Chrome-trace
    ``args`` and JSONL fields.  :meth:`set` annotates after entry —
    typically with quantities only known once the work ran.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "lane", "start", "end")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.span_id = 0
        self.parent_id = 0
        self.lane = tracer.lane
        self.start = 0.0
        self.end = 0.0

    # -- annotations ----------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds between entry and exit (0.0 while still open)."""
        if not self.end:
            return 0.0
        return self.end - self.start

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            # Record the failure but never swallow it: a raise inside a
            # span must still close every enclosing span on the way out.
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ms = self.duration * 1e3
        return f"<Span {self.name} {ms:.2f}ms {self.attrs}>"

    def to_dict(self) -> Dict[str, Any]:
        """Picklable snapshot (the worker-to-parent wire format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "lane": self.lane,
            "start": self.start - self.tracer.t0,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans (and metrics) for one process.

    A tracer is cheap to construct; the verifier builds a throwaway one
    per query when no global tracer is installed so result statistics
    always come from the same span machinery that feeds trace files.
    """

    enabled = True

    def __init__(self, lane: str = "main") -> None:
        from .metrics import MetricsRegistry

        self.lane = lane
        self.pid = os.getpid()
        # Epoch pairing: spans are timed with perf_counter; t0/wall_t0
        # let exporters place them on an absolute timeline and line up
        # traces merged from other processes.
        self.t0 = time.perf_counter()
        self.wall_t0 = time.time()
        self.metrics = MetricsRegistry()
        self._finished: List[Dict[str, Any]] = []
        self._next_id = 0
        self._local = threading.local()
        self._id_lock = threading.Lock()

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs or None)

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, sp: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        with self._id_lock:
            self._next_id += 1
            sp.span_id = self._next_id
        if stack:
            sp.parent_id = stack[-1].span_id
        thread = threading.current_thread()
        if thread is not threading.main_thread():
            sp.lane = f"{self.lane}/{thread.name}"
        stack.append(sp)

    def _pop(self, sp: Span) -> None:
        stack = getattr(self._local, "stack", None)
        # Pop down to (and including) this span even if inner spans were
        # leaked open — exception safety must not corrupt the stack.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        self._finished.append(sp.to_dict())

    # -- results --------------------------------------------------------

    @property
    def spans(self) -> List[Dict[str, Any]]:
        """Finished spans, oldest-exit first (dict snapshots)."""
        return list(self._finished)

    def export(self) -> Dict[str, Any]:
        """Everything a worker ships back to the parent process."""
        return {
            "lane": self.lane,
            "pid": self.pid,
            "wall_t0": self.wall_t0,
            "spans": self.spans,
            "metrics": self.metrics.snapshot(),
        }

    def merge(self, payload: Dict[str, Any],
              lane: Optional[str] = None) -> None:
        """Fold a worker's :meth:`export` payload into this tracer.

        Span ids are rebased to stay unique; worker root spans (parent 0)
        are re-parented under this thread's current span; start offsets
        are shifted by the wall-clock skew between the two tracers so the
        merged trace shares one timeline.
        """
        spans = payload.get("spans", [])
        if spans:
            with self._id_lock:
                base = self._next_id
                self._next_id += max(s["span_id"] for s in spans)
            current = self.current()
            anchor = current.span_id if current is not None else 0
            shift = payload.get("wall_t0", self.wall_t0) - self.wall_t0
            worker_lane = lane or payload.get("lane") or "worker"
            for s in spans:
                merged = dict(s)
                merged["span_id"] = s["span_id"] + base
                merged["parent_id"] = (s["parent_id"] + base
                                       if s["parent_id"] else anchor)
                merged["start"] = s["start"] + shift
                merged["lane"] = worker_lane
                self._finished.append(merged)
        self.metrics.merge(payload.get("metrics", {}))


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False
    lane = "off"

    def __init__(self) -> None:
        from .metrics import NULL_REGISTRY

        self.metrics = NULL_REGISTRY

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return []

    def export(self) -> Dict[str, Any]:
        return {"lane": self.lane, "spans": [], "metrics": {}}

    def merge(self, payload: Dict[str, Any],
              lane: Optional[str] = None) -> None:
        return None


NULL_TRACER = NullTracer()

_active = NULL_TRACER


def active():
    """The installed tracer (the shared :data:`NULL_TRACER` when off)."""
    return _active


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer."""
    global _active
    _active = tracer or Tracer()
    return _active


def disable() -> None:
    """Remove the installed tracer; :func:`span` becomes a no-op again."""
    global _active
    _active = NULL_TRACER


def span(name: str, **attrs: Any):
    """Open a span on the active tracer (no-op while tracing is off)."""
    return _active.span(name, **attrs)


def metrics():
    """The active tracer's metrics registry (null sink while off)."""
    return _active.metrics


@contextlib.contextmanager
def use(tracer) -> Iterator:
    """Temporarily install ``tracer``; always restores the previous one."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
