"""Metrics registry: counters, gauges and histograms with labels.

Spans answer "where did the time go"; metrics answer "how much work was
done" — conflicts, propagations, CNF variables and clauses per module,
learned-clause deletions.  Instruments are keyed by name plus a sorted
label tuple (``counter("cnf.vars", module="network")``), mirroring the
Prometheus data model so the JSONL export is mechanically convertible.

Registries are mergeable: process-pool workers snapshot their registry
and the parent folds it in at join (counters add, gauges take the last
written value, histograms combine their moments).  A null registry backs
the disabled-tracing mode; it hands out shared do-nothing instruments.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY", "DEFAULT_BUCKETS"]

_Key = Tuple[str, Tuple[Tuple[str, Any], ...]]

#: Default histogram bucket upper bounds (seconds-oriented, spanning
#: sub-millisecond solver phases up to minute-scale batch runs).  The
#: implicit final bucket is +Inf, so every observation lands somewhere.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        self.value += data.get("value", 0)


class Gauge:
    """Last-written value (e.g. current learned-clause count)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        self.value = data.get("value", self.value)


class Histogram:
    """Streaming distribution: exact moments plus fixed bucket counts.

    Moments (count / sum / min / max) stay exact and mergeable as
    before.  On top of them, observations are tallied into fixed
    upper-bound buckets (:data:`DEFAULT_BUCKETS` unless overridden) so
    Prometheus exposition and the phase table can report quantile
    estimates (p50/p95) without unbounded memory.  Merging two
    histograms with the same boundaries is exact bucket-wise; a merge
    from a snapshot with different boundaries keeps the moments exact
    and folds the foreign counts into the overflow bucket — quantiles
    degrade conservatively, totals never lie.
    """

    __slots__ = ("count", "total", "min", "max", "bounds", "buckets")

    kind = "histogram"

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_BUCKETS)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        # buckets[i] counts observations <= bounds[i] (non-cumulative);
        # buckets[-1] is the +Inf overflow bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, ending
        with the ``+Inf`` bucket (whose count equals ``count``)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.buckets):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.buckets[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation inside the containing bucket, clamped to
        the exact observed min/max so estimates never leave the true
        range.  Returns 0.0 on an empty histogram.
        """
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        rank = q * self.count
        running = 0.0
        lower = 0.0
        for bound, n in zip(self.bounds, self.buckets):
            if running + n >= rank and n:
                fraction = (rank - running) / n
                estimate = lower + (bound - lower) * fraction
                return min(max(estimate, self.min), self.max)
            running += n
            lower = bound
        # Rank falls in the +Inf overflow bucket: the exact max is the
        # only finite bound available.
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"count": self.count, "sum": self.total,
                               "bounds": list(self.bounds),
                               "buckets": list(self.buckets)}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    def merge(self, data: Dict[str, Any]) -> None:
        self.count += data.get("count", 0)
        self.total += data.get("sum", 0.0)
        if "min" in data and data["min"] < self.min:
            self.min = data["min"]
        if "max" in data and data["max"] > self.max:
            self.max = data["max"]
        foreign_bounds = tuple(data.get("bounds", ()))
        foreign = data.get("buckets")
        if foreign and foreign_bounds == self.bounds \
                and len(foreign) == len(self.buckets):
            for i, n in enumerate(foreign):
                self.buckets[i] += n
        elif foreign:
            # Boundary mismatch (snapshot from an older/custom layout):
            # moments above stay exact; park the counts in the overflow
            # bucket so cumulative totals still add up.
            self.buckets[-1] += sum(foreign)
        elif data.get("count"):
            # Pre-bucket snapshot (moments only).
            self.buckets[-1] += data["count"]


class _NullInstrument:
    """Shared sink standing in for every instrument while tracing is off."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name+labels → instrument, with snapshot/merge for pool workers."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[_Key, Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump: ``{"name{k=v,...}": {kind, ...values}}``."""
        out: Dict[str, Any] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            if labels:
                label_text = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{label_text}}}"
            else:
                key = name
            entry = {"kind": instrument.kind, "name": name,
                     "labels": dict(labels)}
            entry.update(instrument.snapshot())
            out[key] = entry
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        for entry in snapshot.values():
            cls = _KINDS.get(entry.get("kind"))
            if cls is None:
                continue
            labels = entry.get("labels", {})
            self._get(cls, entry["name"], labels).merge(entry)

    def __len__(self) -> int:
        return len(self._instruments)


class NullRegistry:
    """Disabled registry: hands out the shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        return None

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
