"""Metrics registry: counters, gauges and histograms with labels.

Spans answer "where did the time go"; metrics answer "how much work was
done" — conflicts, propagations, CNF variables and clauses per module,
learned-clause deletions.  Instruments are keyed by name plus a sorted
label tuple (``counter("cnf.vars", module="network")``), mirroring the
Prometheus data model so the JSONL export is mechanically convertible.

Registries are mergeable: process-pool workers snapshot their registry
and the parent folds it in at join (counters add, gauges take the last
written value, histograms combine their moments).  A null registry backs
the disabled-tracing mode; it hands out shared do-nothing instruments.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY"]

_Key = Tuple[str, Tuple[Tuple[str, Any], ...]]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        self.value += data.get("value", 0)


class Gauge:
    """Last-written value (e.g. current learned-clause count)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge(self, data: Dict[str, Any]) -> None:
        self.value = data.get("value", self.value)


class Histogram:
    """Streaming distribution summary: count / sum / min / max.

    Moments only — no bucket boundaries to choose, constant memory, and
    exact mergeability across processes; enough to report mean solve
    time and worst-case outliers in the phase table.
    """

    __slots__ = ("count", "total", "min", "max")

    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        out = {"count": self.count, "sum": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    def merge(self, data: Dict[str, Any]) -> None:
        self.count += data.get("count", 0)
        self.total += data.get("sum", 0.0)
        if "min" in data and data["min"] < self.min:
            self.min = data["min"]
        if "max" in data and data["max"] > self.max:
            self.max = data["max"]


class _NullInstrument:
    """Shared sink standing in for every instrument while tracing is off."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name+labels → instrument, with snapshot/merge for pool workers."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[_Key, Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump: ``{"name{k=v,...}": {kind, ...values}}``."""
        out: Dict[str, Any] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            if labels:
                label_text = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{label_text}}}"
            else:
                key = name
            entry = {"kind": instrument.kind, "name": name,
                     "labels": dict(labels)}
            entry.update(instrument.snapshot())
            out[key] = entry
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        for entry in snapshot.values():
            cls = _KINDS.get(entry.get("kind"))
            if cls is None:
                continue
            labels = entry.get("labels", {})
            self._get(cls, entry["name"], labels).merge(entry)

    def __len__(self) -> int:
        return len(self._instruments)


class NullRegistry:
    """Disabled registry: hands out the shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        return None

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
