"""Persistent run ledger: the verification flight recorder.

PR 3's tracing made a *single* run visible; everything still evaporated
at process exit.  The ledger is the durable half: an append-only SQLite
database (stdlib :mod:`sqlite3`, schema-versioned, one transaction per
run) recording every ``verify`` / ``verify-batch`` / ``diff`` /
``analyze`` invocation —

* identity: a short random ``run_id`` (also the log correlation id),
  the CLI command and argv, wall-clock start/finish;
* reproducibility anchors: a content hash of the loaded configs
  (canonical device forms, so comment/whitespace edits do not change
  it) and the semantic :class:`EncoderOptions` fingerprint from
  :func:`repro.analysis.deps.options_fingerprint`;
* outcomes: one row per query (verdict, cached/replayed flag, CNF
  sizes, conflicts, timing split);
* telemetry rollups: per-phase span totals and the full metrics
  snapshot, so ``repro history`` can diff where time and formula size
  went between any two recorded runs without the original trace files.

The ledger is the substrate the ROADMAP's verification-as-a-service
item needs (run records keyed by config hash = snapshot ids), and
``repro history compare`` turns the hand-curated
``benchmarks/baselines/`` workflow into something any user gets on
their own corpus: record two runs, diff them, gate CI on the result.

Concurrency: writers use SQLite's own locking (one short IMMEDIATE
transaction per run); readers never block writers beyond that.  The
format is append-only — nothing ever updates or deletes a run row.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["LedgerError", "RunLedger", "RunRecord", "build_record",
           "compare_runs", "default_ledger_path", "network_hash",
           "texts_hash"]

SCHEMA_VERSION = 1

#: Environment override for the ledger location; the CLI default is a
#: dotfile next to the verdict cache convention (``.repro-verdicts``).
ENV_VAR = "REPRO_LEDGER"
DEFAULT_FILENAME = ".repro-ledger.sqlite"


class LedgerError(Exception):
    """The ledger file cannot be used (wrong schema, unknown run, ...)."""


def default_ledger_path() -> str:
    return os.environ.get(ENV_VAR) or DEFAULT_FILENAME


def network_hash(network) -> str:
    """Content hash of a whole network: SHA-256 over every device's
    canonical config form, order-independent."""
    from repro.analysis.deps import device_hash

    digest = hashlib.sha256()
    for name in sorted(network.devices):
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(device_hash(network.devices[name]).encode())
        digest.update(b"\x01")
    return digest.hexdigest()


def texts_hash(texts: Dict[str, str]) -> str:
    """Content hash over raw config texts (filename → text), for paths
    that never build a :class:`Network` (``repro analyze``)."""
    digest = hashlib.sha256()
    for name in sorted(texts):
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(texts[name].encode())
        digest.update(b"\x01")
    return digest.hexdigest()


@dataclass
class RunRecord:
    """One run, ready to append (or as read back from the ledger)."""

    run_id: str
    command: str
    argv: List[str] = field(default_factory=list)
    started: float = 0.0
    finished: float = 0.0
    config_hash: str = ""
    options: str = ""
    workload: Dict[str, Any] = field(default_factory=dict)
    queries: List[Dict[str, Any]] = field(default_factory=list)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(0.0, self.finished - self.started)

    def verdict_summary(self) -> str:
        """``"3/4 hold"``-style summary (or a diagnostics count)."""
        if not self.queries:
            if "diagnostics" in self.extra:
                return f"{self.extra['diagnostics']} finding(s)"
            return "-"
        holding = sum(1 for q in self.queries if q.get("holds") is True)
        text = f"{holding}/{len(self.queries)} hold"
        cached = sum(1 for q in self.queries if q.get("cached"))
        if cached:
            text += f" ({cached} cached)"
        return text


def build_record(command: str,
                 argv: Sequence[str] = (),
                 *,
                 run_id: Optional[str] = None,
                 network=None,
                 options=None,
                 results: Sequence = (),
                 tracer=None,
                 started: Optional[float] = None,
                 config_hash: Optional[str] = None,
                 extra: Optional[Dict[str, Any]] = None) -> RunRecord:
    """Assemble a :class:`RunRecord` from the run's artifacts.

    ``results`` are :class:`~repro.core.verifier.VerificationResult`
    objects (possibly paired with query names via ``.property_name``);
    ``tracer`` contributes phase rollups over its spans — worker spans
    included, since the batch engine merges worker buffers into the
    active tracer at join — and the metrics snapshot.
    """
    from repro.obs.log import new_run_id

    record = RunRecord(
        run_id=run_id or new_run_id(),
        command=command,
        argv=list(argv),
        started=started if started is not None else time.time(),
        finished=time.time(),
        extra=dict(extra or {}))
    if network is not None:
        record.config_hash = network_hash(network)
        record.workload = {
            "routers": len(network.devices),
            "links": len(network.internal_links()),
            "externals": len(network.externals),
        }
    if config_hash is not None:
        record.config_hash = config_hash
    if options is not None:
        from repro.analysis.deps import options_fingerprint

        record.options = options_fingerprint(options)
    for index, result in enumerate(results):
        record.queries.append({
            "idx": index,
            "name": getattr(result, "property_name", str(result)),
            "holds": result.holds,
            "cached": bool(getattr(result, "cached", False)),
            "seconds": result.seconds,
            "encode_seconds": result.encode_seconds,
            "solve_seconds": result.solve_seconds,
            "vars": result.num_variables,
            "clauses": result.num_clauses,
            "conflicts": result.conflicts,
            "message": result.message,
        })
    if tracer is not None and getattr(tracer, "enabled", False):
        phases: Dict[str, Dict[str, float]] = {}
        for span in tracer.spans:
            row = phases.setdefault(
                span["name"], {"count": 0, "total_seconds": 0.0})
            row["count"] += 1
            row["total_seconds"] += span["duration"]
        record.phases = phases
        record.metrics = tracer.metrics.snapshot()
    return record


_CREATE = [
    """CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL)""",
    """CREATE TABLE IF NOT EXISTS runs (
        seq INTEGER PRIMARY KEY AUTOINCREMENT,
        run_id TEXT UNIQUE NOT NULL,
        command TEXT NOT NULL,
        argv TEXT NOT NULL,
        started REAL NOT NULL,
        finished REAL NOT NULL,
        config_hash TEXT NOT NULL DEFAULT '',
        options TEXT NOT NULL DEFAULT '',
        workload TEXT NOT NULL DEFAULT '{}',
        phases TEXT NOT NULL DEFAULT '{}',
        metrics TEXT NOT NULL DEFAULT '{}',
        extra TEXT NOT NULL DEFAULT '{}')""",
    """CREATE TABLE IF NOT EXISTS queries (
        run_id TEXT NOT NULL,
        idx INTEGER NOT NULL,
        name TEXT NOT NULL,
        holds INTEGER,
        cached INTEGER NOT NULL DEFAULT 0,
        seconds REAL NOT NULL DEFAULT 0.0,
        encode_seconds REAL NOT NULL DEFAULT 0.0,
        solve_seconds REAL NOT NULL DEFAULT 0.0,
        vars INTEGER NOT NULL DEFAULT 0,
        clauses INTEGER NOT NULL DEFAULT 0,
        conflicts INTEGER NOT NULL DEFAULT 0,
        message TEXT NOT NULL DEFAULT '',
        PRIMARY KEY (run_id, idx))""",
    """CREATE INDEX IF NOT EXISTS idx_runs_config
        ON runs (config_hash, started)""",
]


class RunLedger:
    """Append-only SQLite store of :class:`RunRecord` rows.

    Usable as a context manager; connections are opened lazily so
    constructing a ledger that is never written creates no file.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path or default_ledger_path()
        self._conn: Optional[sqlite3.Connection] = None

    # -- lifecycle ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            conn = sqlite3.connect(self.path)
            conn.row_factory = sqlite3.Row
            try:
                with conn:
                    for statement in _CREATE:
                        conn.execute(statement)
                    self._check_schema(conn)
            except LedgerError:
                conn.close()
                raise
            except sqlite3.DatabaseError as exc:
                conn.close()
                raise LedgerError(
                    f"{self.path} is not a usable ledger: {exc}") from exc
            self._conn = conn
        return self._conn

    def _check_schema(self, conn: sqlite3.Connection) -> None:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)))
            return
        version = int(row["value"])
        if version > SCHEMA_VERSION:
            raise LedgerError(
                f"{self.path} has schema v{version}; this build "
                f"understands up to v{SCHEMA_VERSION} — upgrade repro "
                "or point --ledger at a fresh file")
        # version <= SCHEMA_VERSION: migrations would run here; v1 is
        # the first schema, so nothing to do yet.

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- writing --------------------------------------------------------

    def append(self, record: RunRecord) -> str:
        """Write one run in a single transaction; returns the run id."""
        conn = self._connect()
        with conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                """INSERT INTO runs (run_id, command, argv, started,
                       finished, config_hash, options, workload, phases,
                       metrics, extra)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)""",
                (record.run_id, record.command,
                 json.dumps(record.argv),
                 record.started, record.finished,
                 record.config_hash, record.options,
                 json.dumps(record.workload, sort_keys=True),
                 json.dumps(record.phases, sort_keys=True),
                 json.dumps(record.metrics, sort_keys=True),
                 json.dumps(record.extra, sort_keys=True)))
            conn.executemany(
                """INSERT INTO queries (run_id, idx, name, holds, cached,
                       seconds, encode_seconds, solve_seconds, vars,
                       clauses, conflicts, message)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)""",
                [(record.run_id, q["idx"], q["name"],
                  None if q["holds"] is None else int(q["holds"]),
                  int(q.get("cached", False)),
                  q.get("seconds", 0.0),
                  q.get("encode_seconds", 0.0),
                  q.get("solve_seconds", 0.0),
                  q.get("vars", 0), q.get("clauses", 0),
                  q.get("conflicts", 0), q.get("message", ""))
                 for q in record.queries])
        return record.run_id

    # -- reading --------------------------------------------------------

    def runs(self, limit: Optional[int] = None,
             command: Optional[str] = None) -> List[Dict[str, Any]]:
        """Run summaries, newest first."""
        if not os.path.exists(self.path):
            return []
        conn = self._connect()
        sql = ("SELECT seq, run_id, command, argv, started, finished, "
               "config_hash, options, workload, extra FROM runs")
        params: List[Any] = []
        if command:
            sql += " WHERE command = ?"
            params.append(command)
        sql += " ORDER BY seq DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        out = []
        for row in conn.execute(sql, params):
            verdicts = conn.execute(
                "SELECT holds, cached FROM queries WHERE run_id = ?",
                (row["run_id"],)).fetchall()
            out.append({
                "seq": row["seq"],
                "run_id": row["run_id"],
                "command": row["command"],
                "argv": json.loads(row["argv"]),
                "started": row["started"],
                "seconds": max(0.0, row["finished"] - row["started"]),
                "config_hash": row["config_hash"],
                "queries": len(verdicts),
                "holding": sum(1 for v in verdicts if v["holds"] == 1),
                "cached": sum(1 for v in verdicts if v["cached"]),
                "extra": json.loads(row["extra"]),
            })
        return out

    def get(self, ref: str) -> RunRecord:
        """Load one run by id, unique id prefix, or ``-N`` index
        (``-1`` = most recent).  Raises :class:`LedgerError` when the
        reference is unknown or ambiguous."""
        if not os.path.exists(self.path):
            raise LedgerError(f"no ledger at {self.path}")
        conn = self._connect()
        row = None
        if ref.startswith("-") and ref[1:].isdigit():
            rows = conn.execute(
                "SELECT * FROM runs ORDER BY seq DESC LIMIT 1 OFFSET ?",
                (int(ref[1:]) - 1,)).fetchall()
            if rows:
                row = rows[0]
        else:
            matches = conn.execute(
                "SELECT * FROM runs WHERE run_id = ? "
                "OR run_id LIKE ? ORDER BY seq", (ref, ref + "%")
            ).fetchall()
            exact = [m for m in matches if m["run_id"] == ref]
            if exact:
                row = exact[0]
            elif len(matches) == 1:
                row = matches[0]
            elif len(matches) > 1:
                ids = ", ".join(m["run_id"] for m in matches[:5])
                raise LedgerError(f"run prefix {ref!r} is ambiguous "
                                  f"({ids}, ...)")
        if row is None:
            raise LedgerError(f"no run {ref!r} in {self.path}")
        queries = [
            {"idx": q["idx"], "name": q["name"],
             "holds": None if q["holds"] is None else bool(q["holds"]),
             "cached": bool(q["cached"]),
             "seconds": q["seconds"],
             "encode_seconds": q["encode_seconds"],
             "solve_seconds": q["solve_seconds"],
             "vars": q["vars"], "clauses": q["clauses"],
             "conflicts": q["conflicts"], "message": q["message"]}
            for q in conn.execute(
                "SELECT * FROM queries WHERE run_id = ? ORDER BY idx",
                (row["run_id"],))]
        return RunRecord(
            run_id=row["run_id"],
            command=row["command"],
            argv=json.loads(row["argv"]),
            started=row["started"],
            finished=row["finished"],
            config_hash=row["config_hash"],
            options=row["options"],
            workload=json.loads(row["workload"]),
            queries=queries,
            phases=json.loads(row["phases"]),
            metrics=json.loads(row["metrics"]),
            extra=json.loads(row["extra"]))

    def __len__(self) -> int:
        if not os.path.exists(self.path):
            return 0
        conn = self._connect()
        return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]


# ---------------------------------------------------------------------------
# Run-over-run comparison (the `repro history compare` core)
# ---------------------------------------------------------------------------

#: Deterministic per-query count metrics: identical workload + code →
#: identical values, so any growth beyond the threshold is a real
#: regression, not runner noise.  Timing fields are reported but gate
#: only when the caller opts in.
COUNT_FIELDS = ("vars", "clauses", "conflicts")
TIME_FIELDS = ("seconds", "encode_seconds", "solve_seconds")

#: Timing drift below this absolute growth (seconds) is never flagged:
#: a 0.2 ms phase doubling is scheduler noise, not a regression.
TIME_NOISE_FLOOR = 0.005


def compare_runs(old: RunRecord, new: RunRecord,
                 threshold: float = 0.10,
                 time_threshold: float = 0.50,
                 gate_timings: bool = False) -> Dict[str, Any]:
    """Structured run-over-run diff with regression classification.

    ``threshold`` bounds growth of the deterministic count metrics
    (fraction over the old value: 0.10 = +10%); ``time_threshold``
    bounds the timing fields; verdict flips always regress.  Returns::

        {"queries": [...], "phases": [...],
         "regressions": [...], "warnings": [...],
         "missing": [names], "added": [names]}

    where ``regressions`` are gate-failing rows (CI exit code 1) and
    ``warnings`` are advisory (timing drift without ``gate_timings``).
    """
    report: Dict[str, Any] = {
        "old": old.run_id, "new": new.run_id,
        "config_changed": (bool(old.config_hash) and bool(new.config_hash)
                           and old.config_hash != new.config_hash),
        "options_changed": old.options != new.options,
        "queries": [], "phases": [],
        "regressions": [], "warnings": [],
        "missing": [], "added": [],
    }
    old_by_name = {q["name"]: q for q in old.queries}
    new_by_name = {q["name"]: q for q in new.queries}
    report["missing"] = sorted(set(old_by_name) - set(new_by_name))
    report["added"] = sorted(set(new_by_name) - set(old_by_name))

    def _verdict(value) -> str:
        return {True: "HOLDS", False: "VIOLATED", None: "UNKNOWN"}[value]

    for name in [q["name"] for q in old.queries
                 if q["name"] in new_by_name]:
        q_old, q_new = old_by_name[name], new_by_name[name]
        entry: Dict[str, Any] = {"name": name,
                                 "old_holds": q_old["holds"],
                                 "new_holds": q_new["holds"],
                                 "deltas": {}}
        if q_old["holds"] != q_new["holds"]:
            report["regressions"].append(
                f"{name}: verdict {_verdict(q_old['holds'])} -> "
                f"{_verdict(q_new['holds'])}")
        for fields, bound, hard in ((COUNT_FIELDS, threshold, True),
                                    (TIME_FIELDS, time_threshold,
                                     gate_timings)):
            for fld in fields:
                a, b = q_old.get(fld, 0), q_new.get(fld, 0)
                entry["deltas"][fld] = {"old": a, "new": b}
                if not (a and b > a * (1.0 + bound)):
                    continue
                if fld in TIME_FIELDS and b - a < TIME_NOISE_FLOOR:
                    continue
                text = (f"{name}: {fld} {a} -> {b} "
                        f"(+{(b / a - 1) * 100:.0f}%, "
                        f"threshold +{bound * 100:.0f}%)")
                (report["regressions"] if hard
                 else report["warnings"]).append(text)
        report["queries"].append(entry)

    names = sorted(set(old.phases) | set(new.phases))
    for name in names:
        a = old.phases.get(name, {}).get("total_seconds", 0.0)
        b = new.phases.get(name, {}).get("total_seconds", 0.0)
        report["phases"].append({"name": name, "old": a, "new": b})
        if (a > 0 and b > a * (1.0 + time_threshold)
                and b - a >= TIME_NOISE_FLOOR):
            text = (f"phase {name}: {a * 1e3:.1f}ms -> {b * 1e3:.1f}ms "
                    f"(+{(b / a - 1) * 100:.0f}%, threshold "
                    f"+{time_threshold * 100:.0f}%)")
            (report["regressions"] if gate_timings
             else report["warnings"]).append(text)
    return report
