"""Pipeline observability: hierarchical spans, metrics, trace exporters.

The paper's evaluation (§8) is a study of where time and formula size go
— encode vs. solve, variables and clauses per optimization.  This
package is the instrumentation layer that makes those quantities visible
in this reproduction: every pipeline stage (parse → device build →
encode → bit-blast → Tseitin → CDCL search) opens :class:`Span`\\ s and
bumps metrics, and exporters turn one run into a phase-breakdown table,
JSONL metrics, or a Chrome trace-event file for Perfetto.

Typical use::

    from repro import obs

    tracer = obs.enable()            # process-wide; off by default
    verifier.verify_batch(queries)
    print(obs.export.phase_table(tracer))
    obs.export.write_trace(tracer, "run.trace.json")
    obs.disable()

With no tracer installed every instrumentation point degrades to a
shared no-op object — no allocation, no clock reads — so the pipeline
pays nothing for the hooks it does not use.
"""

from . import export
from . import ledger
from . import log
from . import promexport
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active,
    disable,
    enable,
    metrics,
    span,
    use,
)

__all__ = [
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "active", "enable", "disable", "span", "use", "metrics",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NullRegistry", "NULL_REGISTRY", "DEFAULT_BUCKETS",
    "export", "ledger", "log", "promexport",
]
