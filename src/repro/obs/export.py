"""Trace and metrics exporters.

Three output shapes, all fed from :class:`~repro.obs.spans.Tracer`:

* :func:`phase_table` — a human-readable phase breakdown (per span name:
  call count, total and self time, share of wall clock), the table the
  ``--stats``/``--profile`` CLI flags and ``repro stats`` print;
* :func:`to_jsonl` — one JSON object per line (meta, spans, metrics),
  the machine-readable form the benchmark harness diffs across runs;
* :func:`to_chrome_trace` — Chrome trace-event JSON loadable in
  Perfetto / ``chrome://tracing``; lanes (one ``tid`` per worker lane)
  make batch group parallelism visible side by side.

:func:`read_trace` loads either serialized form back into the common
``{"spans": [...], "metrics": {...}}`` shape for ``repro stats``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["phase_table", "to_jsonl", "to_chrome_trace", "write_trace",
           "read_trace", "metrics_table"]


def _spans_of(source) -> List[Dict[str, Any]]:
    if isinstance(source, dict):
        return source.get("spans", [])
    if hasattr(source, "spans"):
        return source.spans
    return list(source)


# ---------------------------------------------------------------------------
# Phase breakdown table
# ---------------------------------------------------------------------------

def phase_table(source, title: str = "phase breakdown") -> str:
    """Aggregate spans by name into a fixed-width profile table.

    ``self`` time is a span's duration minus its direct children's, so a
    parent phase does not double-count the phases it contains; the
    percentage column is self time over wall clock (first span entry to
    last span exit), which exceeds 100% in total only when lanes
    genuinely ran in parallel.
    """
    spans = _spans_of(source)
    if not spans:
        return f"== {title} ==\n(no spans recorded)"
    child_time: Dict[int, float] = {}
    for s in spans:
        if s["parent_id"]:
            child_time[s["parent_id"]] = (
                child_time.get(s["parent_id"], 0.0) + s["duration"])
    wall = (max(s["start"] + s["duration"] for s in spans)
            - min(s["start"] for s in spans))
    rows: Dict[str, List[float]] = {}  # name -> [count, total, self, max]
    for s in spans:
        row = rows.setdefault(s["name"], [0, 0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += s["duration"]
        row[2] += max(0.0, s["duration"]
                      - child_time.get(s["span_id"], 0.0))
        row[3] = max(row[3], s["duration"])
    name_width = max(len(name) for name in rows)
    name_width = max(name_width, len("phase"))
    lines = [f"== {title} (wall {wall * 1e3:.1f} ms) =="]
    header = (f"{'phase':<{name_width}}  {'count':>5}  {'total ms':>9}  "
              f"{'self ms':>9}  {'max ms':>8}  {'% wall':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    ordered = sorted(rows.items(), key=lambda kv: -kv[1][2])
    for name, (count, total, self_s, max_s) in ordered:
        share = 100.0 * self_s / wall if wall > 0 else 0.0
        lines.append(
            f"{name:<{name_width}}  {count:>5}  {total * 1e3:>9.1f}  "
            f"{self_s * 1e3:>9.1f}  {max_s * 1e3:>8.1f}  {share:>5.1f}%")
    return "\n".join(lines)


def metrics_table(source, title: str = "metrics") -> str:
    """Render metrics from a tracer, registry, or snapshot dict."""
    if hasattr(source, "metrics") and not isinstance(source, dict):
        source = source.metrics
    metrics = source.snapshot() if hasattr(source, "snapshot") else source
    if not metrics:
        return f"== {title} ==\n(no metrics recorded)"
    lines = [f"== {title} =="]
    for key in sorted(metrics):
        entry = metrics[key]
        kind = entry.get("kind")
        if kind == "histogram":
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            mean = total / count if count else 0.0
            detail = (f"count={count} sum={total:.4f} mean={mean:.4f}")
            if count:
                detail += (f" min={entry.get('min', 0.0):.4f}"
                           f" max={entry.get('max', 0.0):.4f}")
                quantiles = _snapshot_quantiles(entry, (0.5, 0.95))
                if quantiles:
                    detail += (f" p50={quantiles[0]:.4f}"
                               f" p95={quantiles[1]:.4f}")
        else:
            detail = f"{entry.get('value', 0)}"
        lines.append(f"{key:<44}  {detail}")
    return "\n".join(lines)


def _snapshot_quantiles(entry, qs):
    """Quantile estimates from a histogram *snapshot* dict (bucketed
    snapshots only — moment-only snapshots return no estimates)."""
    from .metrics import Histogram

    bounds = entry.get("bounds")
    buckets = entry.get("buckets")
    if not bounds or not buckets or len(buckets) != len(bounds) + 1:
        return None
    hist = Histogram(bounds=bounds)
    hist.merge(entry)
    return [hist.quantile(q) for q in qs]


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def to_jsonl(tracer) -> str:
    """Serialize a tracer as JSON lines: meta, then spans, then metrics."""
    payload = tracer.export()
    lines = [json.dumps({"type": "meta", "lane": payload.get("lane"),
                         "pid": payload.get("pid"),
                         "wall_t0": payload.get("wall_t0")})]
    for s in payload["spans"]:
        lines.append(json.dumps({"type": "span", **s}))
    for key, entry in payload.get("metrics", {}).items():
        lines.append(json.dumps({"type": "metric", "key": key, **entry}))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace events (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

def to_chrome_trace(source) -> Dict[str, Any]:
    """Spans → Chrome trace-event JSON (complete ``"X"`` events).

    Each distinct lane becomes one ``tid`` with a ``thread_name``
    metadata record, so a parallel batch run renders as side-by-side
    lanes; span attrs ride along in ``args``.
    """
    spans = _spans_of(source)
    lanes: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for s in spans:
        lane = s.get("lane") or "main"
        tid = lanes.get(lane)
        if tid is None:
            tid = len(lanes) + 1
            lanes[lane] = tid
        events.append({
            "name": s["name"],
            "cat": s["name"].split(".", 1)[0],
            "ph": "X",
            "ts": round(s["start"] * 1e6, 1),
            "dur": round(s["duration"] * 1e6, 1),
            "pid": 1,
            "tid": tid,
            "args": {"span_id": s["span_id"],
                     "parent_id": s["parent_id"], **s["attrs"]},
        })
    meta = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": lane}} for lane, tid in lanes.items()]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_trace(tracer, path: str) -> None:
    """Write a tracer to ``path``: ``.jsonl`` → JSONL, else Chrome JSON."""
    if str(path).endswith(".jsonl"):
        text = to_jsonl(tracer)
    else:
        text = json.dumps(to_chrome_trace(tracer), indent=1)
    with open(path, "w") as handle:
        handle.write(text)


# ---------------------------------------------------------------------------
# Loading (the `repro stats` report command)
# ---------------------------------------------------------------------------

def read_trace(path: str) -> Dict[str, Any]:
    """Load a trace file (either serialized form) back into
    ``{"spans": [...], "metrics": {...}}``."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _from_chrome(json.loads(stripped))
    spans: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if entry.get("type") == "span":
            spans.append({
                "name": entry["name"], "span_id": entry["span_id"],
                "parent_id": entry["parent_id"],
                "lane": entry.get("lane", "main"),
                "start": entry["start"], "duration": entry["duration"],
                "attrs": entry.get("attrs", {})})
        elif entry.get("type") == "metric":
            key = entry.pop("key")
            entry.pop("type", None)
            metrics[key] = entry
    return {"spans": spans, "metrics": metrics}


def _from_chrome(doc: Dict[str, Any]) -> Dict[str, Any]:
    lanes: Dict[int, str] = {}
    spans: List[Dict[str, Any]] = []
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[event["tid"]] = event["args"]["name"]
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        spans.append({
            "name": event["name"],
            "span_id": args.pop("span_id", 0),
            "parent_id": args.pop("parent_id", 0),
            "lane": lanes.get(event.get("tid"), "main"),
            "start": event["ts"] / 1e6,
            "duration": event.get("dur", 0) / 1e6,
            "attrs": args})
    return {"spans": spans, "metrics": {}}
