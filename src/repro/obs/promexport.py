"""Prometheus / OpenMetrics text exposition for the metrics registry.

Turns a :class:`~repro.obs.metrics.MetricsRegistry` (or a snapshot dict
from :meth:`MetricsRegistry.snapshot`) into the Prometheus text format
(version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one sample line per
instrument, label sets rendered as ``{k="v"}``, histograms expanded
into cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  Counters get the conventional ``_total`` suffix.

The format is what a future ``repro serve`` daemon will mount at
``/metrics``; today the ``--metrics-out FILE`` CLI flag writes one
snapshot per run so existing Prometheus tooling (promtool, Grafana
Agent's textfile collector, node_exporter's textfile module) can scrape
batch-verification runs without any bespoke glue.

:func:`parse_exposition` is a minimal reader for the same format, used
by the test suite and the obs smoke to prove round-trip validity — it
is deliberately strict about the grammar it accepts.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

__all__ = ["to_prometheus", "write_prometheus", "parse_exposition"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _sanitize_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar.

    Registry names use dots as namespace separators (``sat.conflicts``);
    Prometheus wants ``[a-zA-Z_:][a-zA-Z0-9_:]*``, conventionally with
    underscores.  Anything else degrades to ``_``.
    """
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name.replace(".", "_"))
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _sanitize_label(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not out or not _LABEL_OK.match(out):
        out = "_" + out
    return out


def _escape_label_value(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _label_text(labels: Dict[str, Any],
                extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(_sanitize_label(k), _escape_label_value(v))
             for k, v in sorted(labels.items())]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(source) -> str:
    """Render a registry (or its snapshot dict) as Prometheus text.

    Instruments sharing a name (differing only in labels) are grouped
    under one ``# TYPE`` header, as the format requires.
    """
    if hasattr(source, "snapshot"):
        source = source.snapshot()
    # Group entries by exposition name so each family gets exactly one
    # TYPE header no matter how many label sets it carries.
    families: Dict[str, List[Dict[str, Any]]] = {}
    kinds: Dict[str, str] = {}
    for entry in source.values():
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        name = _sanitize_name(entry["name"])
        if kind == "counter" and not name.endswith("_total"):
            name += "_total"
        families.setdefault(name, []).append(entry)
        kinds[name] = kind
    lines: List[str] = []
    for name in sorted(families):
        kind = kinds[name]
        raw = families[name][0]["name"]
        lines.append(f"# HELP {name} repro metric {raw}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in families[name]:
            labels = entry.get("labels", {})
            if kind == "histogram":
                lines.extend(_histogram_lines(name, labels, entry))
            else:
                lines.append(f"{name}{_label_text(labels)} "
                             f"{_format_value(entry.get('value', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_lines(name: str, labels: Dict[str, Any],
                     entry: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    bounds = entry.get("bounds", [])
    buckets = entry.get("buckets", [])
    running = 0
    if bounds and len(buckets) == len(bounds) + 1:
        for bound, n in zip(bounds, buckets):
            running += n
            le = _format_value(float(bound))
            lines.append(
                f"{name}_bucket{_label_text(labels, (('le', le),))} "
                f"{running}")
        running += buckets[-1]
    else:
        running = entry.get("count", 0)
    lines.append(f"{name}_bucket{_label_text(labels, (('le', '+Inf'),))} "
                 f"{running}")
    lines.append(f"{name}_sum{_label_text(labels)} "
                 f"{_format_value(float(entry.get('sum', 0.0)))}")
    lines.append(f"{name}_count{_label_text(labels)} "
                 f"{entry.get('count', 0)}")
    return lines


def write_prometheus(source, path: str) -> None:
    """Write one exposition snapshot to ``path``."""
    text = to_prometheus(source)
    with open(path, "w") as handle:
        handle.write(text)


def parse_exposition(text: str) -> Dict[str, List[dict]]:
    """Strictly parse Prometheus text exposition back into samples.

    Returns ``{family name: [{"labels": {...}, "value": float}, ...]}``
    and raises :class:`ValueError` on any line that is neither a
    comment nor a well-formed sample, on a sample preceding its TYPE
    header, or on a histogram whose ``_count`` disagrees with its
    ``+Inf`` bucket — enough strictness to make "parses as valid
    exposition" a meaningful test assertion.
    """
    samples: Dict[str, List[dict]] = {}
    types: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(label_text):
                labels[pair.group("key")] = pair.group("value")
                consumed = pair.end()
            remainder = label_text[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"line {lineno}: malformed labels: {label_text!r}")
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace(
                "-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {raw!r}")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if family not in types and name not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} precedes its TYPE header")
        samples.setdefault(family, []).append(
            {"name": name, "labels": labels, "value": value})
    for family, rows in samples.items():
        if types.get(family) != "histogram":
            continue
        counts = {tuple(sorted((k, v) for k, v in r["labels"].items()
                               if k != "le")): r["value"]
                  for r in rows if r["name"].endswith("_count")}
        for row in rows:
            if row["name"].endswith("_bucket") \
                    and row["labels"].get("le") == "+Inf":
                key = tuple(sorted((k, v)
                            for k, v in row["labels"].items() if k != "le"))
                if key in counts and counts[key] != row["value"]:
                    raise ValueError(
                        f"{family}: +Inf bucket {row['value']} != "
                        f"_count {counts[key]}")
    return samples
