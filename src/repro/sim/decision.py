"""Route selection: the decision process shared by all protocol instances.

The symbolic encoder mirrors this logic constraint-for-constraint; the
agreement tests in ``tests/integration`` keep the two in sync.

Within a protocol instance the comparison is protocol specific:

* BGP — higher local-pref, then shorter AS path (the ``metric``), then lower
  MED (subject to the configured MED mode), then eBGP over iBGP, then lower
  neighbor router id.
* OSPF — lower path cost, then lower router id.
* static/connected — longest prefix handled upstream; ties broken on
  router id for determinism.

Across protocol instances the route with the lowest administrative distance
wins (paper §3 step 5: ``bestoverall``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.net.route import Route

__all__ = ["bgp_prefers", "protocol_key", "select_best", "overall_best"]


def bgp_prefers(a: Route, b: Route, med_mode: str = "always") -> bool:
    """Does BGP strictly prefer ``a`` over ``b``?"""
    if a.local_pref != b.local_pref:
        return a.local_pref > b.local_pref
    if a.metric != b.metric:
        return a.metric < b.metric
    if med_mode == "always" and a.med != b.med:
        return a.med < b.med
    if med_mode == "same-as":
        same_neighbor_as = (a.as_path[:1] == b.as_path[:1])
        if same_neighbor_as and a.med != b.med:
            return a.med < b.med
    if a.bgp_internal != b.bgp_internal:
        return not a.bgp_internal
    return a.router_id < b.router_id


def protocol_key(route: Route, med_mode: str = "always"):
    """A sort key matching the per-protocol preference (smaller = better).

    For the ``same-as`` MED mode, comparison is not expressible as a static
    key; callers needing that mode use :func:`select_best`, which falls back
    to pairwise :func:`bgp_prefers`.
    """
    if route.protocol == "bgp":
        med = route.med if med_mode == "always" else 0
        return (-route.local_pref, route.metric, med,
                1 if route.bgp_internal else 0, route.router_id)
    if route.protocol == "ospf":
        return (route.metric, route.router_id)
    return (route.metric, route.router_id)


def select_best(routes: Sequence[Route], med_mode: str = "always",
                multipath: bool = False) -> List[Route]:
    """Best route(s) of one protocol instance for one prefix.

    Returns a singleton unless ``multipath`` is set, in which case every
    route tied with the winner up to (but excluding) the router-id tie-break
    is included — the paper's §4 multipath relaxation.
    """
    if not routes:
        return []
    protocol = routes[0].protocol
    if protocol == "bgp" and med_mode == "same-as":
        best = routes[0]
        for candidate in routes[1:]:
            if bgp_prefers(candidate, best, med_mode):
                best = candidate
    else:
        best = min(routes, key=lambda r: protocol_key(r, med_mode))
    if not multipath:
        return [best]
    best_key = _multipath_key(best, med_mode)
    ties = [r for r in routes if _multipath_key(r, med_mode) == best_key]
    # Deterministic order for reproducible traces.
    ties.sort(key=lambda r: r.router_id)
    return ties


def _multipath_key(route: Route, med_mode: str):
    key = protocol_key(route, med_mode)
    return key[:-1]  # drop the router-id tie-break


def overall_best(per_protocol: Iterable[List[Route]]) -> List[Route]:
    """Cross-protocol selection: lowest administrative distance wins.

    ``per_protocol`` holds each protocol instance's already-selected best
    set; the sets all target the same prefix.
    """
    groups = [grp for grp in per_protocol if grp]
    if not groups:
        return []
    winner = min(groups, key=lambda grp: (grp[0].ad, grp[0].protocol))
    return winner
