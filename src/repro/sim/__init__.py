"""Concrete control-plane simulator (the Batfish-analogue substrate)."""

from .dataplane import (
    DELIVERED,
    DROPPED_ACL,
    DataPlane,
    EXITED,
    LOOP,
    NO_ROUTE,
    NULL_ROUTED,
    Packet,
    Trace,
)
from .decision import bgp_prefers, overall_best, protocol_key, select_best
from .environment import Environment, ExternalAnnouncement
from .simulator import ControlPlaneSimulator, SimulationResult, simulate

__all__ = [
    "Environment", "ExternalAnnouncement",
    "ControlPlaneSimulator", "SimulationResult", "simulate",
    "DataPlane", "Packet", "Trace",
    "DELIVERED", "EXITED", "NO_ROUTE", "NULL_ROUTED", "DROPPED_ACL", "LOOP",
    "bgp_prefers", "protocol_key", "select_best", "overall_best",
]
