"""Data-plane forwarding over a converged control plane.

Traces concrete packets through the FIBs produced by the simulator,
applying interface ACLs on egress and ingress, branching at ECMP sets,
resolving recursive (iBGP) next hops, and classifying the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net import ip as iplib
from repro.net.route import Route
from repro.net.topology import Network
from .simulator import SimulationResult

__all__ = ["Packet", "Trace", "DataPlane",
           "DELIVERED", "EXITED", "NO_ROUTE", "NULL_ROUTED",
           "DROPPED_ACL", "LOOP"]

DELIVERED = "delivered"
EXITED = "exited"            # handed to an external BGP peer
NO_ROUTE = "no-route"        # black hole: no FIB entry
NULL_ROUTED = "null-routed"  # explicit discard (Null0)
DROPPED_ACL = "dropped-acl"
LOOP = "loop"


@dataclass(frozen=True)
class Packet:
    """A concrete data-plane packet (the fields of Figure 3)."""

    dst_ip: int
    src_ip: int = 0
    protocol: int = 0
    dst_port: int = 0
    src_port: int = 0

    @classmethod
    def to(cls, dst: str, **kwargs) -> "Packet":
        return cls(dst_ip=iplib.parse_ip(dst), **kwargs)


@dataclass(frozen=True)
class Trace:
    """One forwarding branch: the device path and its disposition."""

    path: Tuple[str, ...]
    disposition: str
    exit_peer: Optional[str] = None

    @property
    def delivered(self) -> bool:
        return self.disposition == DELIVERED

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class DataPlane:
    """Forwarding queries against one :class:`SimulationResult`."""

    def __init__(self, state: SimulationResult) -> None:
        self.state = state
        self.network: Network = state.network

    # ------------------------------------------------------------------

    def traces(self, start: str, packet: Packet,
               max_depth: int = 64) -> List[Trace]:
        """All ECMP forwarding branches of ``packet`` injected at ``start``."""
        out: List[Trace] = []
        self._walk(start, packet, (start,), out, max_depth)
        return out

    def reachable(self, start: str, packet: Packet) -> bool:
        """Is the packet delivered along *some* branch?"""
        return any(t.delivered for t in self.traces(start, packet))

    def reachable_all_paths(self, start: str, packet: Packet) -> bool:
        """Is the packet delivered along *every* branch (multipath
        consistency's notion of agreement)?"""
        branches = self.traces(start, packet)
        return bool(branches) and all(t.delivered for t in branches)

    # ------------------------------------------------------------------

    def _walk(self, device: str, packet: Packet, path: Tuple[str, ...],
              out: List[Trace], depth: int) -> None:
        if depth <= 0:
            out.append(Trace(path, LOOP))
            return
        dev = self.network.device(device)
        if dev.owns_address(packet.dst_ip):
            out.append(Trace(path, DELIVERED))
            return
        routes = self.state.fib_lookup(device, packet.dst_ip)
        if not routes:
            out.append(Trace(path, NO_ROUTE))
            return
        for route in routes:
            self._follow(device, route, packet, path, out, depth)

    def _follow(self, device: str, route: Route, packet: Packet,
                path: Tuple[str, ...], out: List[Trace], depth: int) -> None:
        resolved = self._resolve(device, route, packet.dst_ip, depth=8)
        kind = resolved[0]
        if kind == "drop":
            out.append(Trace(path, NULL_ROUTED))
            return
        if kind == "unresolved":
            out.append(Trace(path, NO_ROUTE))
            return
        if kind == "local":
            # Connected subnet delivery: a neighbor device, an external
            # peer, or plain hosts on the subnet.
            owner = self.network.device_owning(packet.dst_ip)
            if owner is not None and owner != device:
                self._hop(device, owner, packet, path, out, depth)
                return
            peer = next((p for p in self.network.externals
                         if p.peer_ip == packet.dst_ip), None)
            if peer is not None and peer.router == device:
                out.append(Trace(path, EXITED, exit_peer=peer.name))
                return
            out.append(Trace(path, DELIVERED))
            return
        target = resolved[1]
        if target in self.network.devices:
            self._hop(device, target, packet, path, out, depth)
        else:
            # External peer: apply the egress ACL, then the packet exits.
            peer = next((p for p in self.network.externals
                         if p.name == target), None)
            if peer is not None and not self._acl_out_permits(
                    device, peer.router_iface, packet):
                out.append(Trace(path, DROPPED_ACL))
                return
            out.append(Trace(path, EXITED, exit_peer=target))

    def _hop(self, device: str, target: str, packet: Packet,
             path: Tuple[str, ...], out: List[Trace], depth: int) -> None:
        if target in path:
            out.append(Trace(path + (target,), LOOP))
            return
        edge = self.network.edge_between(device, target)
        if edge is None or self.state.environment.link_failed(device, target):
            out.append(Trace(path, NO_ROUTE))
            return
        if not self._acl_out_permits(device, edge.source_iface, packet):
            out.append(Trace(path, DROPPED_ACL))
            return
        if not self._acl_in_permits(target, edge.target_iface, packet):
            out.append(Trace(path + (target,), DROPPED_ACL))
            return
        self._walk(target, packet, path + (target,), out, depth - 1)

    # ------------------------------------------------------------------

    def _resolve(self, device: str, route: Route, dst_ip: int,
                 depth: int) -> Tuple[str, Optional[str]]:
        """Resolve a FIB route to an immediate action.

        Returns ``("drop", None)``, ``("local", None)``,
        ``("next", neighbor_name)`` or ``("unresolved", None)``.
        Recursive (iBGP) next hops are resolved through the device's own
        FIB, per the paper's §4 recursive-lookup semantics.
        """
        if depth <= 0:
            return ("unresolved", None)
        if route.drop:
            return ("drop", None)
        if route.next_hop is None:
            return ("local", None)
        target = route.next_hop
        if target not in self.network.devices:
            return ("next", target)  # external peer
        if self.network.edge_between(device, target) is not None:
            return ("next", target)
        # Remote next hop: recursive resolution via the IGP route toward
        # the next-hop address.
        if route.next_hop_ip is None:
            return ("unresolved", None)
        underlying = self.state.fib_lookup(device, route.next_hop_ip)
        for candidate in underlying:
            if candidate is route:
                continue
            resolved = self._resolve(device, candidate, route.next_hop_ip,
                                     depth - 1)
            if resolved[0] == "next":
                return resolved
        return ("unresolved", None)

    def _acl_out_permits(self, device: str, iface_name: str,
                         packet: Packet) -> bool:
        iface = self.network.device(device).interfaces.get(iface_name)
        if iface is None or iface.acl_out is None:
            return True
        acl = self.network.device(device).acls.get(iface.acl_out)
        if acl is None:
            return False
        return acl.permits(packet.dst_ip, packet.src_ip, packet.protocol,
                           packet.dst_port)

    def _acl_in_permits(self, device: str, iface_name: str,
                        packet: Packet) -> bool:
        iface = self.network.device(device).interfaces.get(iface_name)
        if iface is None or iface.acl_in is None:
            return True
        acl = self.network.device(device).acls.get(iface.acl_in)
        if acl is None:
            return False
        return acl.permits(packet.dst_ip, packet.src_ip, packet.protocol,
                           packet.dst_port)
