"""Concrete environments: external announcements and link failures.

The symbolic verifier ranges over *all* environments; the simulator takes a
single concrete :class:`Environment` — exactly the relationship between
Minesweeper and Batfish described in the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.net import ip as iplib

__all__ = ["ExternalAnnouncement", "Environment"]


@dataclass(frozen=True)
class ExternalAnnouncement:
    """A BGP advertisement injected by a named external peer."""

    peer: str                      # ExternalPeer.name
    network: int
    length: int
    med: int = 0
    as_path: Tuple[int, ...] = ()
    communities: FrozenSet[str] = frozenset()

    @classmethod
    def make(cls, peer: str, prefix: str, path_length: int = 1,
             med: int = 0, communities: Tuple[str, ...] = (),
             origin_asn: int = 64512) -> "ExternalAnnouncement":
        """Convenience constructor from ``A.B.C.D/len`` text."""
        network, length = iplib.parse_prefix(prefix)
        as_path = tuple(origin_asn + i for i in range(max(path_length, 1)))
        return cls(peer=peer, network=network, length=length, med=med,
                   as_path=as_path, communities=frozenset(communities))


@dataclass(frozen=True)
class Environment:
    """One concrete control-plane environment."""

    announcements: Tuple[ExternalAnnouncement, ...] = ()
    failed_links: FrozenSet[Tuple[str, str]] = frozenset()

    @classmethod
    def empty(cls) -> "Environment":
        return cls()

    @classmethod
    def of(cls, announcements: List[ExternalAnnouncement] = (),
           failed_links: List[Tuple[str, str]] = ()) -> "Environment":
        normalized = frozenset(tuple(sorted(pair)) for pair in failed_links)
        return cls(announcements=tuple(announcements),
                   failed_links=normalized)

    def link_failed(self, a: str, b: str) -> bool:
        return tuple(sorted((a, b))) in self.failed_links

    def announcements_from(self, peer: str) -> List[ExternalAnnouncement]:
        return [a for a in self.announcements if a.peer == peer]
