"""Concrete control-plane simulation to a routing fixpoint.

Plays the role Batfish plays for the original Minesweeper: given a network
and a single concrete :class:`Environment`, iterate synchronous rounds of
route origination, redistribution, export/import through policies and best
route selection until the routing state stops changing.  The result is a
per-device RIB/FIB from which :mod:`repro.sim.dataplane` answers forwarding
queries.

The fixpoint corresponds to one stable state of the control plane — the one
reached from cold start with simultaneous message delivery.  The symbolic
encoder reasons about *all* stable states; the integration tests exploit the
containment (every simulated state must satisfy properties the verifier
proves for all states).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net import ip as iplib
from repro.net.device import DeviceConfig
from repro.net.route import (
    DEFAULT_AD,
    DEFAULT_LOCAL_PREF,
    IBGP_AD,
    PROTO_BGP,
    PROTO_CONNECTED,
    PROTO_OSPF,
    PROTO_STATIC,
    Route,
)
from repro.net.topology import Edge, Network
from .decision import overall_best, select_best
from .environment import Environment

__all__ = ["ControlPlaneSimulator", "SimulationResult", "simulate"]

Prefix = Tuple[int, int]
Rib = Dict[str, Dict[Prefix, List[Route]]]       # protocol -> prefix -> best


@dataclass
class SimulationResult:
    """Converged routing state."""

    network: Network
    environment: Environment
    ribs: Dict[str, Rib]                         # device -> rib
    fibs: Dict[str, Dict[Prefix, List[Route]]]   # device -> prefix -> best
    converged: bool
    rounds: int

    def fib_lookup(self, device: str, dst_ip: int) -> List[Route]:
        """Longest-prefix-match FIB lookup."""
        table = self.fibs.get(device, {})
        best_len = -1
        best: List[Route] = []
        for (network, length), routes in table.items():
            if length > best_len and iplib.prefix_contains(network, length,
                                                           dst_ip):
                best_len = length
                best = routes
        return best


class ControlPlaneSimulator:
    """Synchronous-round fixpoint computation."""

    def __init__(self, network: Network, environment: Environment,
                 max_rounds: int = 100) -> None:
        self.network = network
        self.env = environment
        self.max_rounds = max_rounds
        self._externals = {p.name: p for p in network.externals}

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        ribs: Dict[str, Rib] = {
            name: {} for name in self.network.devices
        }
        fibs: Dict[str, Dict[Prefix, List[Route]]] = {
            name: {} for name in self.network.devices
        }
        converged = False
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            new_ribs: Dict[str, Rib] = {}
            for name, dev in self.network.devices.items():
                new_ribs[name] = self._device_rib(name, dev, ribs, fibs)
            new_fibs = {
                name: self._device_fib(rib) for name, rib in new_ribs.items()
            }
            if new_ribs == ribs and new_fibs == fibs:
                converged = True
                break
            ribs, fibs = new_ribs, new_fibs
        return SimulationResult(network=self.network, environment=self.env,
                                ribs=ribs, fibs=fibs, converged=converged,
                                rounds=rounds)

    # ------------------------------------------------------------------
    # Per-device computation for one round
    # ------------------------------------------------------------------

    def _device_rib(self, name: str, dev: DeviceConfig,
                    prev_ribs: Dict[str, Rib],
                    prev_fibs: Dict[str, Dict[Prefix, List[Route]]]) -> Rib:
        rib: Rib = {}
        rib[PROTO_CONNECTED] = self._connected_routes(dev)
        rib[PROTO_STATIC] = self._static_routes(name, dev)
        if dev.ospf:
            rib[PROTO_OSPF] = self._ospf_routes(name, dev, prev_ribs)
        if dev.bgp:
            rib[PROTO_BGP] = self._bgp_routes(name, dev, prev_ribs,
                                              prev_fibs)
        return rib

    def _device_fib(self, rib: Rib) -> Dict[Prefix, List[Route]]:
        prefixes: Set[Prefix] = set()
        for table in rib.values():
            prefixes.update(table)
        fib = {}
        for prefix in prefixes:
            groups = []
            for proto, table in rib.items():
                if prefix not in table:
                    continue
                routes = table[prefix]
                if proto in (PROTO_OSPF, PROTO_BGP):
                    # Origins and locally-redistributed routes (no next hop)
                    # are advertise-only: the device itself forwards with the
                    # source protocol's route, never the re-advertisement.
                    routes = [r for r in routes if r.next_hop is not None]
                if routes:
                    groups.append(routes)
            best = overall_best(groups)
            if best:
                fib[prefix] = best
        return fib

    # -- connected / static ---------------------------------------------

    def _connected_routes(self, dev: DeviceConfig) -> Dict[Prefix,
                                                           List[Route]]:
        out: Dict[Prefix, List[Route]] = {}
        for iface in dev.interfaces.values():
            if iface.shutdown or not iface.address:
                continue
            prefix = iface.subnet
            out[prefix] = [Route(network=prefix[0], length=prefix[1],
                                 protocol=PROTO_CONNECTED,
                                 ad=DEFAULT_AD[PROTO_CONNECTED])]
        return out

    def _static_routes(self, name: str,
                       dev: DeviceConfig) -> Dict[Prefix, List[Route]]:
        out: Dict[Prefix, List[Route]] = {}
        for static in dev.static_routes:
            prefix = (static.network, static.length)
            if static.drop:
                route = Route(network=static.network, length=static.length,
                              protocol=PROTO_STATIC, ad=static.ad, drop=True)
            elif static.interface is not None:
                iface = dev.interfaces.get(static.interface)
                if iface is None or iface.shutdown:
                    continue
                route = Route(network=static.network, length=static.length,
                              protocol=PROTO_STATIC, ad=static.ad)
            else:
                # Resolvable only if the next hop sits on a live local subnet.
                target = self._adjacent_target(name, dev, static.next_hop_ip)
                if target is None:
                    continue
                route = Route(network=static.network, length=static.length,
                              protocol=PROTO_STATIC, ad=static.ad,
                              next_hop=target, next_hop_ip=static.next_hop_ip)
            out.setdefault(prefix, [])
            out[prefix] = select_best(out[prefix] + [route])
        return out

    def _adjacent_target(self, name: str, dev: DeviceConfig,
                         next_hop_ip: Optional[int]) -> Optional[str]:
        """Neighbor (device or external peer) owning ``next_hop_ip`` on a
        live shared subnet."""
        if next_hop_ip is None:
            return None
        for edge in self.network.edges_from(name):
            if self.env.link_failed(edge.source, edge.target):
                continue
            peer_addr = self.network.peer_address_on(edge)
            if peer_addr == next_hop_ip:
                return edge.target
        for peer in self.network.externals_at(name):
            if peer.peer_ip == next_hop_ip:
                return peer.name
        return None

    # -- OSPF -------------------------------------------------------------

    def _ospf_enabled_ifaces(self, dev: DeviceConfig):
        assert dev.ospf is not None
        return [iface for iface in dev.interfaces.values()
                if iface.address and not iface.shutdown
                and dev.ospf.covers(iface.address)]

    def _ospf_routes(self, name: str, dev: DeviceConfig,
                     prev_ribs: Dict[str, Rib]) -> Dict[Prefix, List[Route]]:
        candidates: Dict[Prefix, List[Route]] = {}

        def offer(route: Route) -> None:
            candidates.setdefault((route.network, route.length),
                                  []).append(route)

        # Origins: subnets of OSPF-enabled interfaces.
        for iface in self._ospf_enabled_ifaces(dev):
            offer(Route(network=iface.network, length=iface.prefix_length,
                        protocol=PROTO_OSPF, ad=DEFAULT_AD[PROTO_OSPF],
                        metric=0))
        # Redistribution into OSPF from the previous round's other RIBs.
        my_prev = prev_ribs.get(name, {})
        # A Null0 static still redistributes (blackhole origination); only
        # the local forwarding behaviour discards.  Dynamic-protocol
        # sources redistribute their *learned* routes only (the routing
        # table), never their own advertise-only origins — same-router
        # redistribution feedback cannot re-inject routes.
        for proto, metric in dev.ospf.redistribute.items():
            for routes in my_prev.get(proto, {}).values():
                for route in routes:
                    if proto in (PROTO_OSPF, PROTO_BGP) \
                            and route.next_hop is None:
                        continue
                    offer(Route(network=route.network, length=route.length,
                                protocol=PROTO_OSPF,
                                ad=DEFAULT_AD[PROTO_OSPF],
                                metric=metric or 20))
        # Learned from OSPF neighbors over live, OSPF-enabled links.
        for edge in self.network.edges_from(name):
            if self.env.link_failed(edge.source, edge.target):
                continue
            local_iface = dev.interfaces[edge.source_iface]
            if not dev.ospf.covers(local_iface.address):
                continue
            peer_dev = self.network.device(edge.target)
            if peer_dev.ospf is None:
                continue
            remote_iface = peer_dev.interfaces[edge.target_iface]
            if not peer_dev.ospf.covers(remote_iface.address):
                continue
            peer_table = prev_ribs.get(edge.target, {}).get(PROTO_OSPF, {})
            for routes in peer_table.values():
                for route in routes:
                    offer(Route(
                        network=route.network, length=route.length,
                        protocol=PROTO_OSPF, ad=DEFAULT_AD[PROTO_OSPF],
                        metric=route.metric + local_iface.ospf_cost,
                        router_id=peer_dev.router_id,
                        next_hop=edge.target,
                        next_hop_ip=remote_iface.address,
                    ))
        return {
            prefix: select_best(group, multipath=dev.ospf.multipath)
            for prefix, group in candidates.items()
        }

    # -- BGP --------------------------------------------------------------

    def _bgp_routes(self, name: str, dev: DeviceConfig,
                    prev_ribs: Dict[str, Rib],
                    prev_fibs: Dict[str, Dict[Prefix, List[Route]]],
                    ) -> Dict[Prefix, List[Route]]:
        bgp = dev.bgp
        candidates: Dict[Prefix, List[Route]] = {}

        def offer(route: Route) -> None:
            candidates.setdefault((route.network, route.length),
                                  []).append(route)

        # Origins from ``network`` statements.
        for network, length in bgp.networks:
            offer(Route(network=network, length=length, protocol=PROTO_BGP,
                        ad=DEFAULT_AD[PROTO_BGP],
                        local_pref=DEFAULT_LOCAL_PREF, metric=0,
                        originator=name))
        # Redistribution into BGP.
        my_prev = prev_ribs.get(name, {})
        for proto, metric in bgp.redistribute.items():
            for routes in my_prev.get(proto, {}).values():
                for route in routes:
                    if proto in (PROTO_OSPF, PROTO_BGP) \
                            and route.next_hop is None:
                        continue
                    offer(Route(network=route.network, length=route.length,
                                protocol=PROTO_BGP,
                                ad=DEFAULT_AD[PROTO_BGP],
                                local_pref=DEFAULT_LOCAL_PREF,
                                metric=0, med=metric, originator=name))
        # Per-session imports.
        for nbr in bgp.neighbors:
            for route in self._session_imports(name, dev, nbr, prev_ribs,
                                               prev_fibs):
                offer(route)
        selected = {
            prefix: select_best(group, med_mode=bgp.med_mode,
                                multipath=bgp.multipath)
            for prefix, group in candidates.items()
        }
        # Aggregation (§4): a covered, selected route activates the
        # aggregate with a shortened prefix length.
        for agg_net, agg_len in bgp.aggregates:
            covered = [
                prefix for prefix in selected
                if prefix[1] > agg_len
                and iplib.prefix_contains(agg_net, agg_len, prefix[0])
            ]
            if covered:
                selected[(agg_net, agg_len)] = [Route(
                    network=agg_net, length=agg_len, protocol=PROTO_BGP,
                    ad=DEFAULT_AD[PROTO_BGP],
                    local_pref=DEFAULT_LOCAL_PREF, metric=0,
                    originator=name)]
        return selected

    def _session_imports(self, name: str, dev: DeviceConfig, nbr,
                         prev_ribs: Dict[str, Rib],
                         prev_fibs: Dict[str, Dict[Prefix, List[Route]]],
                         ) -> List[Route]:
        peer_device = self.network.device_owning(nbr.peer_ip)
        if peer_device is not None:
            return self._import_from_device(name, dev, nbr, peer_device,
                                            prev_ribs, prev_fibs)
        return self._import_from_external(name, dev, nbr)

    def _import_from_external(self, name: str, dev: DeviceConfig,
                              nbr) -> List[Route]:
        peer = next((p for p in self.network.externals_at(name)
                     if p.peer_ip == nbr.peer_ip), None)
        if peer is None:
            return []
        iface = dev.interfaces[peer.router_iface]
        if iface.shutdown:
            return []
        out = []
        for ann in self.env.announcements_from(peer.name):
            if dev.bgp.asn in ann.as_path:
                continue  # eBGP loop prevention
            route = Route(
                network=ann.network, length=ann.length, protocol=PROTO_BGP,
                ad=DEFAULT_AD[PROTO_BGP], local_pref=DEFAULT_LOCAL_PREF,
                metric=len(ann.as_path), med=ann.med,
                router_id=nbr.peer_ip, bgp_internal=False,
                next_hop=peer.name, next_hop_ip=peer.peer_ip,
                communities=ann.communities, as_path=ann.as_path,
            )
            route = self._apply_route_map(dev, nbr.route_map_in, route)
            if route is not None:
                out.append(route)
        return out

    def _import_from_device(self, name: str, dev: DeviceConfig, nbr,
                            peer_name: str, prev_ribs: Dict[str, Rib],
                            prev_fibs: Dict[str, Dict[Prefix, List[Route]]],
                            ) -> List[Route]:
        peer_dev = self.network.device(peer_name)
        if peer_dev.bgp is None:
            return []
        internal = nbr.remote_as == dev.bgp.asn
        if not self._session_up(name, dev, nbr, peer_name, internal,
                                prev_fibs):
            return []
        # The peer's reverse session config (its export policy toward us).
        my_address = self._address_facing(dev, nbr.peer_ip)
        reverse = peer_dev.bgp.neighbor(my_address) if my_address else None
        out = []
        peer_table = prev_ribs.get(peer_name, {}).get(PROTO_BGP, {})
        for routes in peer_table.values():
            if not routes:
                continue
            route = routes[0]  # BGP exports only the best route
            exported = self._export_transform(peer_dev, reverse, route,
                                              internal, toward=name)
            if exported is None:
                continue
            imported = self._import_transform(dev, nbr, exported, internal,
                                              peer_dev, peer_name)
            if imported is not None:
                out.append(imported)
        return out

    def _session_up(self, name: str, dev: DeviceConfig, nbr, peer_name: str,
                    internal: bool,
                    prev_fibs: Dict[str, Dict[Prefix, List[Route]]]) -> bool:
        edge = self._edge_toward(name, nbr.peer_ip)
        if edge is not None:
            return not self.env.link_failed(edge.source, edge.target)
        if not internal:
            return False  # eBGP requires shared subnet in this model
        # Multihop iBGP: the peer address must be reachable in the previous
        # round's forwarding state (the recursive-lookup dependence of §4).
        return self._fib_reaches(name, nbr.peer_ip, prev_fibs)

    def _edge_toward(self, name: str, peer_ip: int) -> Optional[Edge]:
        for edge in self.network.edges_from(name):
            if self.network.peer_address_on(edge) == peer_ip:
                return edge
        return None

    def _fib_reaches(self, start: str, dst_ip: int,
                     fibs: Dict[str, Dict[Prefix, List[Route]]],
                     max_hops: int = 64) -> bool:
        current = start
        for _ in range(max_hops):
            dev = self.network.device(current)
            if dev.owns_address(dst_ip):
                return True
            table = fibs.get(current, {})
            best_len, best = -1, None
            for (network, length), routes in table.items():
                if length > best_len and iplib.prefix_contains(
                        network, length, dst_ip):
                    best_len, best = length, routes
            if not best or best[0].drop:
                return False
            nxt = best[0].next_hop
            if nxt is None:
                # Connected subnet: delivered iff some neighbor owns it.
                owner = self.network.device_owning(dst_ip)
                return owner is not None
            if nxt not in self.network.devices:
                return False  # exits via an external peer
            edge = self.network.edge_between(current, nxt)
            if edge is not None and self.env.link_failed(current, nxt):
                return False
            current = nxt
        return False

    @staticmethod
    def _address_facing(dev: DeviceConfig, peer_ip: int) -> Optional[int]:
        iface = dev.interface_for_subnet(peer_ip)
        if iface is not None:
            return iface.address
        addresses = [i.address for i in dev.interfaces.values() if i.address]
        return addresses[0] if addresses else None

    def _export_transform(self, peer_dev: DeviceConfig, reverse_nbr,
                          route: Route, internal: bool,
                          toward: str) -> Optional[Route]:
        """Apply the sender's export rules for one route (paper §3 step 6)."""
        from dataclasses import replace

        if route.drop:
            return None
        # iBGP-learned routes are not re-exported to iBGP peers, unless the
        # sender is a route reflector for this session.
        if internal and route.bgp_internal:
            is_reflector = reverse_nbr is not None and \
                reverse_nbr.route_reflector_client
            if not is_reflector:
                return None
            if route.originator == toward:
                return None  # never reflect back to the originator
        exported = route
        if reverse_nbr is not None and reverse_nbr.route_map_out:
            exported = self._apply_route_map(peer_dev,
                                             reverse_nbr.route_map_out,
                                             exported)
            if exported is None:
                return None
        if not internal:
            new_path = (peer_dev.bgp.asn,) + exported.as_path
            if len(new_path) > 255:
                return None  # AS-path overflow (§3 step 6)
            exported = replace(exported, as_path=new_path,
                               local_pref=DEFAULT_LOCAL_PREF,
                               med=0 if reverse_nbr is None
                               or not reverse_nbr.route_map_out
                               else exported.med)
        return exported

    def _import_transform(self, dev: DeviceConfig, nbr, route: Route,
                          internal: bool, peer_dev: DeviceConfig,
                          peer_name: str) -> Optional[Route]:
        from dataclasses import replace

        if not internal and dev.bgp.asn in route.as_path:
            return None  # eBGP loop prevention
        session_ip = nbr.peer_ip
        imported = replace(
            route,
            ad=IBGP_AD if internal else DEFAULT_AD[PROTO_BGP],
            metric=len(route.as_path),
            bgp_internal=internal,
            router_id=peer_dev.router_id,
            next_hop=peer_name,
            next_hop_ip=session_ip,
            originator=route.originator if internal else peer_name,
        )
        if internal and not route.bgp_internal:
            # Entering the iBGP mesh: remember where.
            imported = replace(imported, originator=peer_name)
        if nbr.route_map_in:
            result = self._apply_route_map(dev, nbr.route_map_in, imported)
            return result
        return imported

    @staticmethod
    def _apply_route_map(dev: DeviceConfig, map_name: Optional[str],
                         route: Route) -> Optional[Route]:
        if map_name is None:
            return route
        rmap = dev.route_maps.get(map_name)
        if rmap is None:
            # Referencing a missing map blocks the session (matches the
            # encoder); strict mode raises instead of silently denying.
            from repro.analysis.hazards import dangling_reference

            dangling_reference(device=dev.hostname, kind="route-map",
                               name=map_name, context="BGP session")
            return None
        return rmap.evaluate(route, dev)


def simulate(network: Network,
             environment: Optional[Environment] = None,
             max_rounds: int = 100) -> SimulationResult:
    """Convenience wrapper: simulate ``network`` under ``environment``."""
    env = environment or Environment.empty()
    return ControlPlaneSimulator(network, env, max_rounds=max_rounds).run()
