"""Vendor-independent device model: the output of config parsing.

Plays the role of Batfish's vendor-independent representation in the
original system — both the symbolic encoder and the concrete simulator
consume these objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from . import ip as iplib
from .policy import Acl, CommunityList, PrefixList, RouteMap

__all__ = [
    "Interface",
    "StaticRoute",
    "BgpNeighbor",
    "BgpConfig",
    "OspfConfig",
    "DeviceConfig",
]


@dataclass
class Interface:
    """A layer-3 interface with an address and optional ACLs."""

    name: str
    address: int = 0
    prefix_length: int = 0
    ospf_cost: int = 1
    acl_in: Optional[str] = None      # filters packets arriving here
    acl_out: Optional[str] = None     # filters packets leaving here
    is_management: bool = False
    shutdown: bool = False
    # Source spans (None for programmatically built configs).
    line: Optional[int] = None
    acl_in_line: Optional[int] = None
    acl_out_line: Optional[int] = None

    @property
    def network(self) -> int:
        return iplib.network_of(self.address, self.prefix_length)

    @property
    def subnet(self) -> Tuple[int, int]:
        return self.network, self.prefix_length


@dataclass
class StaticRoute:
    """``ip route NET MASK (NEXTHOP | IFACE | Null0)``."""

    network: int
    length: int
    next_hop_ip: Optional[int] = None
    interface: Optional[str] = None
    drop: bool = False                # Null0: explicit discard
    ad: int = 1
    line: Optional[int] = None


@dataclass
class BgpNeighbor:
    """One configured BGP session."""

    peer_ip: int
    remote_as: int
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None
    route_reflector_client: bool = False
    description: str = ""
    line: Optional[int] = None
    route_map_in_line: Optional[int] = None
    route_map_out_line: Optional[int] = None


@dataclass
class BgpConfig:
    """``router bgp ASN`` stanza."""

    asn: int
    router_id: int = 0
    neighbors: List[BgpNeighbor] = field(default_factory=list)
    networks: List[Tuple[int, int]] = field(default_factory=list)
    redistribute: Dict[str, int] = field(default_factory=dict)  # per proto
    aggregates: List[Tuple[int, int]] = field(default_factory=list)
    multipath: bool = False
    med_mode: str = "always"  # "always" | "same-as" | "ignore" (§4 MED)
    line: Optional[int] = None
    router_id_line: Optional[int] = None

    def neighbor(self, peer_ip: int) -> Optional[BgpNeighbor]:
        for nbr in self.neighbors:
            if nbr.peer_ip == peer_ip:
                return nbr
        return None

    def is_internal(self, nbr: BgpNeighbor) -> bool:
        return nbr.remote_as == self.asn


@dataclass
class OspfConfig:
    """``router ospf PID`` stanza."""

    process_id: int = 1
    router_id: int = 0
    networks: List[Tuple[int, int, int]] = field(default_factory=list)
    redistribute: Dict[str, int] = field(default_factory=dict)  # per proto
    multipath: bool = False
    line: Optional[int] = None
    router_id_line: Optional[int] = None

    def covers(self, address: int) -> bool:
        """Is an interface address activated by a ``network`` statement?"""
        return any(iplib.prefix_contains(net, length, address)
                   for net, length, _area in self.networks)


@dataclass
class DeviceConfig:
    """Everything parsed from one router's configuration file."""

    hostname: str
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    acls: Dict[str, Acl] = field(default_factory=dict)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    community_lists: Dict[str, CommunityList] = field(default_factory=dict)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    bgp: Optional[BgpConfig] = None
    ospf: Optional[OspfConfig] = None
    static_routes: List[StaticRoute] = field(default_factory=list)
    config_lines: int = 0             # size metric used by Figure 7
    source_file: str = ""             # where this config was parsed from
    hostname_line: Optional[int] = None

    @property
    def router_id(self) -> int:
        """Effective router id: configured, else highest interface address."""
        if self.bgp and self.bgp.router_id:
            return self.bgp.router_id
        if self.ospf and self.ospf.router_id:
            return self.ospf.router_id
        addresses = [i.address for i in self.interfaces.values() if i.address]
        return max(addresses, default=0)

    def owns_address(self, address: int) -> bool:
        return any(i.address == address for i in self.interfaces.values())

    def interface_for_subnet(self, address: int) -> Optional[Interface]:
        """The interface whose connected subnet contains ``address``."""
        for iface in self.interfaces.values():
            if iface.shutdown or not iface.address:
                continue
            if iplib.prefix_contains(iface.network, iface.prefix_length,
                                     address):
                return iface
        return None

    def connected_prefixes(self) -> List[Tuple[int, int]]:
        return [iface.subnet for iface in self.interfaces.values()
                if iface.address and not iface.shutdown]

    def protocols(self) -> Set[str]:
        """Routing information sources configured on this device."""
        out = {"connected"}
        if self.bgp:
            out.add("bgp")
        if self.ospf:
            out.add("ospf")
        if self.static_routes:
            out.add("static")
        return out
