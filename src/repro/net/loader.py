"""Load a directory of configuration files into a :class:`Network`."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro import obs
from repro.lang.parser import parse_config
from .topology import Network

__all__ = ["load_network", "network_from_texts"]

_CONFIG_SUFFIXES = (".cfg", ".conf", ".txt")


def load_network(directory: Union[str, Path]) -> Network:
    """Parse every config file in ``directory`` and derive the topology.

    Files are recognized by suffix (``.cfg``, ``.conf``, ``.txt``); the
    hostname comes from the ``hostname`` directive, not the file name.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    texts = {}
    for entry in sorted(directory.iterdir()):
        if entry.suffix.lower() in _CONFIG_SUFFIXES and entry.is_file():
            texts[entry.name] = entry.read_text()
    if not texts:
        raise FileNotFoundError(
            f"no config files ({'/'.join(_CONFIG_SUFFIXES)}) in {directory}")
    return network_from_texts(texts)


def network_from_texts(texts: Dict[str, str]) -> Network:
    """Build a network from a mapping of file name → config text."""
    devices = []
    with obs.span("parse", files=len(texts)):
        for filename, text in texts.items():
            with obs.span("parse.file", file=filename):
                try:
                    devices.append(parse_config(text, source=filename))
                except Exception as exc:
                    raise ValueError(f"{filename}: {exc}") from exc
    with obs.span("net.build", devices=len(devices)):
        return Network(devices)
