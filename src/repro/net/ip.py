"""IPv4 address arithmetic.

Addresses and prefixes are plain unsigned 32-bit integers throughout the
code base; this module owns all conversions to and from dotted-quad text,
netmasks, wildcard masks and CIDR notation.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "parse_ip",
    "format_ip",
    "parse_prefix",
    "format_prefix",
    "mask_to_length",
    "length_to_mask",
    "wildcard_to_length",
    "network_of",
    "prefix_contains",
    "prefix_overlaps",
    "host_in_subnet",
    "broadcast_of",
]

MAX_IP = (1 << 32) - 1


def parse_ip(text: str) -> int:
    """Parse dotted-quad text into a 32-bit integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as dotted-quad text."""
    if not 0 <= value <= MAX_IP:
        raise ValueError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``A.B.C.D/len`` into ``(network, length)``.

    The address is normalized to its network (host bits cleared).
    """
    addr_text, _, len_text = text.partition("/")
    if not len_text:
        raise ValueError(f"missing prefix length in {text!r}")
    length = int(len_text)
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range in {text!r}")
    return network_of(parse_ip(addr_text), length), length


def format_prefix(network: int, length: int) -> str:
    return f"{format_ip(network)}/{length}"


def mask_to_length(mask: int) -> int:
    """Convert a contiguous netmask (e.g. 255.255.255.0) to its length."""
    length = 0
    seen_zero = False
    for shift in range(31, -1, -1):
        bit = (mask >> shift) & 1
        if bit:
            if seen_zero:
                raise ValueError(f"non-contiguous netmask: {format_ip(mask)}")
            length += 1
        else:
            seen_zero = True
    return length


def length_to_mask(length: int) -> int:
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (MAX_IP << (32 - length)) & MAX_IP


def wildcard_to_length(wildcard: int) -> int:
    """Convert a Cisco wildcard mask (e.g. 0.0.0.255) to a prefix length."""
    return mask_to_length(wildcard ^ MAX_IP)


def network_of(address: int, length: int) -> int:
    """Clear host bits: the network containing ``address`` at ``length``."""
    return address & length_to_mask(length)


def broadcast_of(network: int, length: int) -> int:
    """Highest address inside the prefix."""
    return network | (length_to_mask(length) ^ MAX_IP)


def prefix_contains(network: int, length: int, address: int) -> bool:
    """Does ``address`` fall inside ``network/length``?"""
    return network_of(address, length) == network_of(network, length)


def prefix_overlaps(net_a: int, len_a: int, net_b: int, len_b: int) -> bool:
    """Do two prefixes share any address?"""
    short = min(len_a, len_b)
    return network_of(net_a, short) == network_of(net_b, short)


def host_in_subnet(network: int, length: int, offset: int = 1) -> int:
    """A usable host address inside the prefix (offset from the network)."""
    return network_of(network, length) + offset
