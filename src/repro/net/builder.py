"""Programmatic network construction.

The synthetic generators and most tests build networks through this API
instead of writing config text; :mod:`repro.lang.writer` can serialize the
result back to config files (and the parser re-reads them), so both input
paths produce identical :class:`~repro.net.topology.Network` objects.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from . import ip as iplib
from .device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    OspfConfig,
    StaticRoute,
)
from .policy import (
    Acl,
    AclRule,
    CommunityList,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from .topology import Network

__all__ = ["NetworkBuilder", "DeviceBuilder"]


class DeviceBuilder:
    """Mutating wrapper around one :class:`DeviceConfig`."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config
        self._iface_counter = itertools.count()

    # -- interfaces ----------------------------------------------------

    def interface(self, name: str, address: str,
                  ospf_cost: int = 1,
                  acl_in: Optional[str] = None,
                  acl_out: Optional[str] = None,
                  management: bool = False) -> Interface:
        """Add an interface; ``address`` is ``A.B.C.D/len`` (host address)."""
        addr_text, _, len_text = address.partition("/")
        iface = Interface(
            name=name,
            address=iplib.parse_ip(addr_text),
            prefix_length=int(len_text),
            ospf_cost=ospf_cost,
            acl_in=acl_in,
            acl_out=acl_out,
            is_management=management,
        )
        self.config.interfaces[name] = iface
        return iface

    def next_interface_name(self) -> str:
        return f"eth{next(self._iface_counter)}"

    # -- protocols -----------------------------------------------------

    def enable_ospf(self, process_id: int = 1,
                    multipath: bool = False) -> OspfConfig:
        if self.config.ospf is None:
            self.config.ospf = OspfConfig(process_id=process_id,
                                          multipath=multipath)
        return self.config.ospf

    def ospf_network(self, prefix: str, area: int = 0) -> None:
        net, length = iplib.parse_prefix(prefix)
        self.enable_ospf().networks.append((net, length, area))

    def enable_bgp(self, asn: int, multipath: bool = False) -> BgpConfig:
        if self.config.bgp is None:
            self.config.bgp = BgpConfig(asn=asn, multipath=multipath)
        return self.config.bgp

    def bgp_neighbor(self, peer_ip: str, remote_as: int,
                     route_map_in: Optional[str] = None,
                     route_map_out: Optional[str] = None,
                     route_reflector_client: bool = False,
                     description: str = "") -> BgpNeighbor:
        if self.config.bgp is None:
            raise ValueError("enable_bgp() before adding neighbors")
        nbr = BgpNeighbor(
            peer_ip=iplib.parse_ip(peer_ip),
            remote_as=remote_as,
            route_map_in=route_map_in,
            route_map_out=route_map_out,
            route_reflector_client=route_reflector_client,
            description=description,
        )
        self.config.bgp.neighbors.append(nbr)
        return nbr

    def bgp_network(self, prefix: str) -> None:
        if self.config.bgp is None:
            raise ValueError("enable_bgp() before announcing networks")
        self.config.bgp.networks.append(iplib.parse_prefix(prefix))

    def redistribute(self, into: str, source: str, metric: int = 0) -> None:
        """Redistribute ``source`` routes into protocol ``into``."""
        if into == "bgp":
            if self.config.bgp is None:
                raise ValueError("enable_bgp() first")
            self.config.bgp.redistribute[source] = metric
        elif into == "ospf":
            if self.config.ospf is None:
                raise ValueError("enable_ospf() first")
            self.config.ospf.redistribute[source] = metric
        else:
            raise ValueError(f"cannot redistribute into {into!r}")

    def static_route(self, prefix: str, next_hop: Optional[str] = None,
                     interface: Optional[str] = None,
                     drop: bool = False) -> StaticRoute:
        net, length = iplib.parse_prefix(prefix)
        route = StaticRoute(
            network=net,
            length=length,
            next_hop_ip=iplib.parse_ip(next_hop) if next_hop else None,
            interface=interface,
            drop=drop,
        )
        self.config.static_routes.append(route)
        return route

    # -- policy objects --------------------------------------------------

    def acl(self, name: str, rules: Sequence[AclRule]) -> Acl:
        acl = Acl(name=name, rules=tuple(rules))
        self.config.acls[name] = acl
        return acl

    def prefix_list(self, name: str,
                    entries: Sequence[PrefixListEntry]) -> PrefixList:
        plist = PrefixList(name=name, entries=tuple(entries))
        self.config.prefix_lists[name] = plist
        return plist

    def community_list(self, name: str, communities: Sequence[str],
                       action: str = "permit") -> CommunityList:
        clist = CommunityList(name=name, action=action,
                              communities=tuple(communities))
        self.config.community_lists[name] = clist
        return clist

    def route_map(self, name: str,
                  clauses: Sequence[RouteMapClause]) -> RouteMap:
        rmap = RouteMap(name=name, clauses=tuple(clauses))
        self.config.route_maps[name] = rmap
        return rmap


class NetworkBuilder:
    """Builds a whole network: devices, links and external peers."""

    def __init__(self) -> None:
        self._devices: Dict[str, DeviceBuilder] = {}
        self._link_subnets = itertools.count(0)

    def device(self, hostname: str) -> DeviceBuilder:
        if hostname not in self._devices:
            self._devices[hostname] = DeviceBuilder(
                DeviceConfig(hostname=hostname))
        return self._devices[hostname]

    def link(self, a: str, b: str, subnet: Optional[str] = None,
             ospf_cost: int = 1,
             acl_in_a: Optional[str] = None,
             acl_in_b: Optional[str] = None) -> Tuple[Interface, Interface]:
        """Connect two devices with a point-to-point /30 subnet.

        Interfaces are auto-named; a fresh ``10.128.x.y/30`` subnet is
        allocated when none is given.
        """
        if subnet is None:
            subnet = self._fresh_subnet()
        net, length = iplib.parse_prefix(subnet)
        dev_a = self.device(a)
        dev_b = self.device(b)
        if_a = dev_a.interface(dev_a.next_interface_name(),
                               f"{iplib.format_ip(net + 1)}/{length}",
                               ospf_cost=ospf_cost, acl_in=acl_in_a)
        if_b = dev_b.interface(dev_b.next_interface_name(),
                               f"{iplib.format_ip(net + 2)}/{length}",
                               ospf_cost=ospf_cost, acl_in=acl_in_b)
        return if_a, if_b

    def external_peer(self, router: str, asn: int,
                      name: str = "",
                      subnet: Optional[str] = None,
                      route_map_in: Optional[str] = None,
                      route_map_out: Optional[str] = None) -> str:
        """Attach an eBGP peer outside the network to ``router``.

        Returns the peer's name (used to refer to it in properties).
        """
        if subnet is None:
            subnet = self._fresh_subnet()
        net, length = iplib.parse_prefix(subnet)
        dev = self.device(router)
        dev.interface(dev.next_interface_name(),
                      f"{iplib.format_ip(net + 1)}/{length}")
        peer_ip = iplib.format_ip(net + 2)
        peer_name = name or f"ext-{router}-{peer_ip}"
        dev.bgp_neighbor(peer_ip, remote_as=asn,
                         route_map_in=route_map_in,
                         route_map_out=route_map_out,
                         description=peer_name)
        return peer_name

    def ibgp_session(self, a: str, b: str) -> None:
        """Configure an iBGP session between two devices (loopback-less:
        peers address each other's nearest interface)."""
        dev_a = self.device(a).config
        dev_b = self.device(b).config
        if dev_a.bgp is None or dev_b.bgp is None:
            raise ValueError("enable_bgp() on both devices first")
        addr_a = self._session_address(dev_a, dev_b)
        addr_b = self._session_address(dev_b, dev_a)
        self.device(a).bgp_neighbor(iplib.format_ip(addr_b),
                                    remote_as=dev_b.bgp.asn)
        self.device(b).bgp_neighbor(iplib.format_ip(addr_a),
                                    remote_as=dev_a.bgp.asn)

    def build(self) -> Network:
        for builder in self._devices.values():
            cfg = builder.config
            if cfg.config_lines == 0:
                cfg.config_lines = _estimate_config_lines(cfg)
        return Network(builder.config for builder in self._devices.values())

    # ------------------------------------------------------------------

    def _fresh_subnet(self) -> str:
        index = next(self._link_subnets)
        base = iplib.parse_ip("10.128.0.0") + index * 4
        return f"{iplib.format_ip(base)}/30"

    @staticmethod
    def _session_address(of: DeviceConfig, seen_from: DeviceConfig) -> int:
        """Pick the address of ``of`` on a subnet shared with ``seen_from``;
        falls back to any interface address."""
        for iface in of.interfaces.values():
            if not iface.address:
                continue
            if seen_from.interface_for_subnet(iface.address):
                return iface.address
        for iface in of.interfaces.values():
            if iface.address:
                return iface.address
        raise ValueError(f"{of.hostname} has no usable addresses")


def _estimate_config_lines(config: DeviceConfig) -> int:
    """Meaningful-line count of the serialized config, matching the
    parser's metric (comments/separators excluded).  Import deferred:
    the writer imports this module's data classes."""
    from repro.lang.writer import write_config

    return sum(1 for line in write_config(config).splitlines()
               if line.strip() and not line.strip().startswith("!"))
