"""Routing-policy objects: ACLs, prefix lists, community lists, route maps.

Each object carries both its *declarative* content (used by the symbolic
encoder in :mod:`repro.core.encoder`) and a *concrete* evaluation method
(used by the simulator in :mod:`repro.sim`); agreement between the two
paths is checked by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, List, Optional, Tuple

from . import ip as iplib
from .route import Route

__all__ = [
    "PERMIT",
    "DENY",
    "AclRule",
    "Acl",
    "PrefixListEntry",
    "PrefixList",
    "CommunityList",
    "RouteMapClause",
    "RouteMap",
]

PERMIT = "permit"
DENY = "deny"


@dataclass(frozen=True)
class AclRule:
    """One line of a data-plane access list.

    Matches on the packet's destination prefix and optionally the source
    prefix, IP protocol and destination-port range.  A ``None`` field is a
    wildcard.
    """

    action: str
    dst_network: int = 0
    dst_length: int = 0
    src_network: Optional[int] = None
    src_length: int = 0
    protocol: Optional[int] = None
    dst_port_low: Optional[int] = None
    dst_port_high: Optional[int] = None
    # Source span; provenance only, excluded from equality/hashing.
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def matches(self, dst_ip: int, src_ip: int = 0, protocol: int = 0,
                dst_port: int = 0) -> bool:
        if not iplib.prefix_contains(self.dst_network, self.dst_length,
                                     dst_ip):
            return False
        if self.src_network is not None and not iplib.prefix_contains(
                self.src_network, self.src_length, src_ip):
            return False
        if self.protocol is not None and protocol != self.protocol:
            return False
        if self.dst_port_low is not None:
            if not self.dst_port_low <= dst_port <= (
                    self.dst_port_high
                    if self.dst_port_high is not None else self.dst_port_low):
                return False
        return True


@dataclass(frozen=True)
class Acl:
    """A named access list; Cisco semantics (implicit deny at the end)."""

    name: str
    rules: Tuple[AclRule, ...] = ()
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def permits(self, dst_ip: int, src_ip: int = 0, protocol: int = 0,
                dst_port: int = 0) -> bool:
        for rule in self.rules:
            if rule.matches(dst_ip, src_ip, protocol, dst_port):
                return rule.action == PERMIT
        return False


@dataclass(frozen=True)
class PrefixListEntry:
    """``ip prefix-list NAME permit|deny P/A [ge B] [le C]``.

    Matches a route whose prefix agrees with ``network`` on the first
    ``length`` bits and whose own length lies in ``[ge, le]`` (defaults:
    exactly ``length``).
    """

    action: str
    network: int
    length: int
    ge: Optional[int] = None
    le: Optional[int] = None
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def bounds(self) -> Tuple[int, int]:
        low = self.ge if self.ge is not None else self.length
        high = self.le if self.le is not None else low
        return low, high

    def matches(self, network: int, length: int) -> bool:
        low, high = self.bounds()
        if not low <= length <= high:
            return False
        return iplib.network_of(network, self.length) == iplib.network_of(
            self.network, self.length)


@dataclass(frozen=True)
class PrefixList:
    """Ordered prefix-list entries; first match wins, default deny."""

    name: str
    entries: Tuple[PrefixListEntry, ...] = ()
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def permits(self, network: int, length: int) -> bool:
        for entry in self.entries:
            if entry.matches(network, length):
                return entry.action == PERMIT
        return False


@dataclass(frozen=True)
class CommunityList:
    """A standard community list: permits routes carrying any listed value."""

    name: str
    action: str = PERMIT
    communities: Tuple[str, ...] = ()
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def permits(self, carried: FrozenSet[str]) -> bool:
        hit = any(c in carried for c in self.communities)
        return hit if self.action == PERMIT else not hit


@dataclass(frozen=True)
class RouteMapClause:
    """One ``route-map NAME permit|deny SEQ`` clause."""

    seq: int
    action: str
    match_prefix_list: Optional[str] = None
    match_community_list: Optional[str] = None
    set_local_pref: Optional[int] = None
    set_metric: Optional[int] = None
    set_med: Optional[int] = None
    add_communities: Tuple[str, ...] = ()
    delete_communities: Tuple[str, ...] = ()
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def has_match(self) -> bool:
        return (self.match_prefix_list is not None
                or self.match_community_list is not None)


@dataclass(frozen=True)
class RouteMap:
    """Ordered clauses; first matching clause decides, default deny."""

    name: str
    clauses: Tuple[RouteMapClause, ...] = ()
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def evaluate(self, route: Route, device) -> Optional[Route]:
        """Concrete semantics: transformed route, or None if denied.

        ``device`` provides the prefix-list / community-list definitions the
        match conditions refer to.
        """
        for clause in sorted(self.clauses, key=lambda c: c.seq):
            if not _clause_matches(clause, route, device):
                continue
            if clause.action == DENY:
                return None
            updated = route
            if clause.set_local_pref is not None:
                updated = replace(updated, local_pref=clause.set_local_pref)
            if clause.set_metric is not None:
                updated = replace(updated, metric=clause.set_metric)
            if clause.set_med is not None:
                updated = replace(updated, med=clause.set_med)
            if clause.add_communities or clause.delete_communities:
                comms = set(updated.communities)
                comms |= set(clause.add_communities)
                comms -= set(clause.delete_communities)
                updated = replace(updated, communities=frozenset(comms))
            return updated
        return None


def _clause_matches(clause: RouteMapClause, route: Route, device) -> bool:
    if clause.match_prefix_list is not None:
        plist = device.prefix_lists.get(clause.match_prefix_list)
        if plist is None:
            _dangling(device, "prefix-list", clause.match_prefix_list,
                      clause)
            return False
        if not plist.permits(route.network, route.length):
            return False
    if clause.match_community_list is not None:
        clist = device.community_lists.get(clause.match_community_list)
        if clist is None:
            _dangling(device, "community-list",
                      clause.match_community_list, clause)
            return False
        if not clist.permits(route.communities):
            return False
    return True


def _dangling(device, kind: str, name: str, clause: RouteMapClause) -> None:
    """Report an undefined prefix-list/community-list reference.

    The agreed semantics (a dangling match never matches) are unchanged;
    strict mode — :func:`repro.analysis.hazards.strict_references` —
    raises instead of silently treating the clause as a no-match."""
    from repro.analysis.hazards import dangling_reference

    dangling_reference(
        device=getattr(device, "hostname", ""), kind=kind, name=name,
        context=f"route-map clause seq {clause.seq}", line=clause.line)
