"""Network topology: devices, internal links and external BGP peers.

Adjacency is derived the way Batfish does it: two interfaces that share an
IP subnet are connected.  A configured BGP neighbor address owned by no
internal device becomes a symbolic *external peer* — the environment whose
announcements the verifier ranges over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .device import DeviceConfig, Interface

__all__ = ["Edge", "ExternalPeer", "Network"]


@dataclass(frozen=True)
class Edge:
    """A directed internal adjacency (every link yields two edges)."""

    source: str
    source_iface: str
    target: str
    target_iface: str

    @property
    def link_key(self) -> Tuple[str, str]:
        """Undirected identity of the underlying link."""
        a = (self.source, self.source_iface)
        b = (self.target, self.target_iface)
        return (a, b) if a <= b else (b, a)

    def reversed(self) -> "Edge":
        return Edge(self.target, self.target_iface,
                    self.source, self.source_iface)


@dataclass(frozen=True)
class ExternalPeer:
    """An eBGP neighbor outside the configured network."""

    name: str
    router: str                # internal device terminating the session
    router_iface: str
    peer_ip: int
    asn: int


class Network:
    """A parsed network: device configs plus derived topology."""

    def __init__(self, devices: Iterable[DeviceConfig]) -> None:
        self.devices: Dict[str, DeviceConfig] = {}
        for dev in devices:
            if dev.hostname in self.devices:
                raise ValueError(f"duplicate hostname {dev.hostname!r}")
            self.devices[dev.hostname] = dev
        self.edges: List[Edge] = []
        self.externals: List[ExternalPeer] = []
        self._neighbors: Dict[str, List[Edge]] = {}
        self._build_edges()
        self._build_externals()

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def _build_edges(self) -> None:
        subnet_members: Dict[Tuple[int, int], List[Tuple[str, Interface]]]
        subnet_members = {}
        for name, dev in self.devices.items():
            for iface in dev.interfaces.values():
                if iface.shutdown or not iface.address:
                    continue
                subnet_members.setdefault(iface.subnet, []).append(
                    (name, iface))
        seen = set()
        for members in subnet_members.values():
            for i, (dev_a, if_a) in enumerate(members):
                for dev_b, if_b in members[i + 1:]:
                    if dev_a == dev_b:
                        continue
                    edge = Edge(dev_a, if_a.name, dev_b, if_b.name)
                    if edge.link_key in seen:
                        continue
                    seen.add(edge.link_key)
                    self._add_edge(edge)
                    self._add_edge(edge.reversed())

    def _add_edge(self, edge: Edge) -> None:
        self.edges.append(edge)
        self._neighbors.setdefault(edge.source, []).append(edge)

    def _build_externals(self) -> None:
        owned = {
            iface.address
            for dev in self.devices.values()
            for iface in dev.interfaces.values()
            if iface.address
        }
        counter = 0
        for name, dev in self.devices.items():
            if not dev.bgp:
                continue
            for nbr in dev.bgp.neighbors:
                if nbr.peer_ip in owned:
                    continue
                iface = dev.interface_for_subnet(nbr.peer_ip)
                if iface is None:
                    # Session can never come up; ignore (like a down peer).
                    continue
                counter += 1
                peer_name = nbr.description or f"ext-{name}-{counter}"
                self.externals.append(ExternalPeer(
                    name=peer_name,
                    router=name,
                    router_iface=iface.name,
                    peer_ip=nbr.peer_ip,
                    asn=nbr.remote_as,
                ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def device(self, name: str) -> DeviceConfig:
        return self.devices[name]

    def router_names(self) -> List[str]:
        return sorted(self.devices)

    def edges_from(self, router: str) -> List[Edge]:
        return list(self._neighbors.get(router, []))

    def edge_between(self, a: str, b: str) -> Optional[Edge]:
        for edge in self._neighbors.get(a, []):
            if edge.target == b:
                return edge
        return None

    def externals_at(self, router: str) -> List[ExternalPeer]:
        return [p for p in self.externals if p.router == router]

    def internal_links(self) -> List[Edge]:
        """One representative edge per undirected internal link."""
        seen = set()
        out = []
        for edge in self.edges:
            if edge.link_key in seen:
                continue
            seen.add(edge.link_key)
            out.append(edge)
        return out

    def peer_address_on(self, edge: Edge) -> Optional[int]:
        """The target-side interface address of an internal edge."""
        iface = self.devices[edge.target].interfaces.get(edge.target_iface)
        return iface.address if iface else None

    def device_owning(self, address: int) -> Optional[str]:
        for name, dev in self.devices.items():
            if dev.owns_address(address):
                return name
        return None

    def total_config_lines(self) -> int:
        return sum(dev.config_lines for dev in self.devices.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Network {len(self.devices)} devices, "
                f"{len(self.internal_links())} links, "
                f"{len(self.externals)} external peers>")
