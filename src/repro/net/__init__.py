"""Network model: devices, interfaces, policies, topology, IP utilities."""

from .builder import DeviceBuilder, NetworkBuilder
from .device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    OspfConfig,
    StaticRoute,
)
from .loader import load_network, network_from_texts
from .policy import (
    Acl,
    AclRule,
    CommunityList,
    DENY,
    PERMIT,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from .route import Route
from .topology import Edge, ExternalPeer, Network

__all__ = [
    "NetworkBuilder", "DeviceBuilder",
    "DeviceConfig", "Interface", "StaticRoute",
    "BgpConfig", "BgpNeighbor", "OspfConfig",
    "Acl", "AclRule", "PrefixList", "PrefixListEntry",
    "CommunityList", "RouteMap", "RouteMapClause", "PERMIT", "DENY",
    "Route", "Network", "Edge", "ExternalPeer",
    "load_network", "network_from_texts",
]
