"""Concrete route advertisements, shared by the simulator and policy code.

This is the concrete counterpart of the paper's symbolic control-plane
record (Figure 3): destination prefix, administrative distance, BGP local
preference, protocol metric, MED, neighbor router id, iBGP flag, plus
communities and the AS-path/cluster bookkeeping needed for loop prevention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from . import ip as iplib

__all__ = ["Route", "PROTO_CONNECTED", "PROTO_STATIC", "PROTO_OSPF",
           "PROTO_BGP", "DEFAULT_AD", "DEFAULT_LOCAL_PREF"]

PROTO_CONNECTED = "connected"
PROTO_STATIC = "static"
PROTO_OSPF = "ospf"
PROTO_BGP = "bgp"

# Cisco default administrative distances.
DEFAULT_AD = {
    PROTO_CONNECTED: 0,
    PROTO_STATIC: 1,
    PROTO_BGP: 20,       # eBGP
    PROTO_OSPF: 110,
}
IBGP_AD = 200
DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True)
class Route:
    """A concrete route to ``network/length``."""

    network: int
    length: int
    protocol: str = PROTO_CONNECTED
    ad: int = 0
    local_pref: int = DEFAULT_LOCAL_PREF
    metric: int = 0
    med: int = 0
    router_id: int = 0
    bgp_internal: bool = False
    next_hop: Optional[str] = None        # neighbor device/peer name
    next_hop_ip: Optional[int] = None
    communities: FrozenSet[str] = frozenset()
    as_path: Tuple[int, ...] = ()
    originator: Optional[str] = None      # route-reflector originator
    drop: bool = False                    # Null0 static: explicit discard

    @property
    def prefix_text(self) -> str:
        return iplib.format_prefix(self.network, self.length)

    def covers(self, address: int) -> bool:
        """Longest-prefix-match containment test."""
        return iplib.prefix_contains(self.network, self.length, address)

    def preference_key(self) -> tuple:
        """Total order used by the route selection process (smaller wins).

        Mirrors the symbolic ordering in the encoder: lower administrative
        distance, then higher local preference, then lower metric, then
        lower MED, then eBGP over iBGP, then lower neighbor router id.
        """
        return (
            self.ad,
            -self.local_pref,
            self.metric,
            self.med,
            1 if self.bgp_internal else 0,
            self.router_id,
        )
